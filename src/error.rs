//! The unified error hierarchy of the pipeline.
//!
//! Every failure mode of the constituent crates — parsing ([`ParseError`]),
//! program validation ([`ProgramError`]), static checking
//! ([`cma_check::CheckReport`] with errors), constraint derivation and LP
//! solving ([`AnalysisError`]), simulation ([`InterpError`]) — converges into one
//! [`CmaError`] so that callers of the [`Analysis`](crate::Analysis) facade
//! and the `cma` CLI handle a single error type with `?`.  The
//! [`ResultExt::context`] adapter attaches human-readable context ("while
//! analyzing examples/fig2.appl") without losing the source chain.

use std::fmt;

use cma_appl::{ParseError, ProgramError};
use cma_inference::AnalysisError;
use cma_sim::InterpError;

/// Any failure of the analysis pipeline or the `cma` CLI.
#[derive(Debug)]
pub enum CmaError {
    /// The Appl source text did not parse.
    Parse(ParseError),
    /// The program failed validation (duplicate/unknown functions, …).
    Program(ProgramError),
    /// Constraint derivation failed or the LP backend found no solution.
    Analysis(AnalysisError),
    /// The Monte-Carlo interpreter failed.
    Simulation(InterpError),
    /// The static checker found error-severity diagnostics (the full report,
    /// including warnings, rides along for callers that render diagnostics).
    Check(Box<cma_check::CheckReport>),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Invalid command-line usage or option values.
    Usage(String),
    /// The engine panicked; the panic was contained (`catch_unwind` at the
    /// CLI boundary) and converted into this structured error instead of
    /// tearing the process down — essential for `cma corpus`, where one
    /// defective program must not sink a whole campaign.
    Internal {
        /// Path of the program being processed when the panic fired.
        path: Option<String>,
        /// The panic message.
        message: String,
    },
    /// An error wrapped with additional context.
    Context {
        /// What the pipeline was doing when the error occurred.
        context: String,
        /// The underlying error.
        source: Box<CmaError>,
    },
}

impl fmt::Display for CmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmaError::Parse(e) => write!(f, "parse error: {e}"),
            CmaError::Program(e) => write!(f, "invalid program: {e}"),
            CmaError::Analysis(e) => write!(f, "analysis failed: {e}"),
            CmaError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CmaError::Check(report) => write!(f, "static checks failed: {}", report.summary()),
            CmaError::Io { path, source } => write!(f, "cannot access `{path}`: {source}"),
            CmaError::Usage(msg) => write!(f, "{msg}"),
            CmaError::Internal {
                path: Some(path),
                message,
            } => write!(f, "internal error while processing `{path}`: {message}"),
            CmaError::Internal {
                path: None,
                message,
            } => write!(f, "internal error: {message}"),
            CmaError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CmaError::Parse(e) => Some(e),
            CmaError::Program(e) => Some(e),
            CmaError::Analysis(e) => Some(e),
            CmaError::Simulation(e) => Some(e),
            CmaError::Check(_) => None,
            CmaError::Io { source, .. } => Some(source),
            CmaError::Usage(_) => None,
            CmaError::Internal { .. } => None,
            CmaError::Context { source, .. } => Some(source),
        }
    }
}

impl From<ParseError> for CmaError {
    fn from(e: ParseError) -> Self {
        CmaError::Parse(e)
    }
}

impl From<ProgramError> for CmaError {
    fn from(e: ProgramError) -> Self {
        CmaError::Program(e)
    }
}

impl From<AnalysisError> for CmaError {
    fn from(e: AnalysisError) -> Self {
        CmaError::Analysis(e)
    }
}

impl From<InterpError> for CmaError {
    fn from(e: InterpError) -> Self {
        CmaError::Simulation(e)
    }
}

impl CmaError {
    /// Wraps the error with a context message.
    pub fn with_context(self, context: impl Into<String>) -> CmaError {
        CmaError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// An I/O failure at `path`.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> CmaError {
        CmaError::Io {
            path: path.into(),
            source,
        }
    }

    /// A contained engine panic that fired while processing `path`.
    pub fn internal(path: impl Into<String>, message: impl Into<String>) -> CmaError {
        CmaError::Internal {
            path: Some(path.into()),
            message: message.into(),
        }
    }

    /// Whether the root cause is an analysis (LP/derivation) failure.
    pub fn is_analysis_failure(&self) -> bool {
        match self {
            CmaError::Analysis(_) => true,
            CmaError::Context { source, .. } => source.is_analysis_failure(),
            _ => false,
        }
    }

    /// Whether the root cause is a usage error (CLI exit code 2).
    pub fn is_usage(&self) -> bool {
        match self {
            CmaError::Usage(_) => true,
            CmaError::Context { source, .. } => source.is_usage(),
            _ => false,
        }
    }

    /// When the root cause is a failed static check, the checker report with
    /// the individual diagnostics (the `Display` of the error shows only the
    /// one-line summary).
    pub fn check_report(&self) -> Option<&cma_check::CheckReport> {
        match self {
            CmaError::Check(report) => Some(report),
            CmaError::Context { source, .. } => source.check_report(),
            _ => None,
        }
    }

    /// When the root cause is an *infeasible* LP, the `(degree, poly_degree)`
    /// it failed at — the signal that the templates are too weak and a
    /// `--max-poly-degree` retry may succeed.
    pub fn infeasible_at(&self) -> Option<(usize, u32)> {
        match self {
            CmaError::Analysis(e) => e.infeasible_at(),
            CmaError::Context { source, .. } => source.infeasible_at(),
            _ => None,
        }
    }

    /// Whether the root cause is an exhausted solve budget (deadline or
    /// iteration cap) — a resource statement, never a verdict.  Callers like
    /// the corpus runner use this to classify a failed child as *timed out*
    /// rather than *wrong*.
    pub fn budget_exhausted(&self) -> bool {
        match self {
            CmaError::Analysis(e) => e.budget_exhausted(),
            CmaError::Context { source, .. } => source.budget_exhausted(),
            _ => false,
        }
    }
}

/// Adds [`context`](ResultExt::context) to any `Result` convertible into
/// [`CmaError`].
pub trait ResultExt<T> {
    /// Converts the error into [`CmaError`] and wraps it with context.
    fn context(self, context: impl Into<String>) -> Result<T, CmaError>;
}

impl<T, E: Into<CmaError>> ResultExt<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> Result<T, CmaError> {
        self.map_err(|e| e.into().with_context(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::parse_program;

    #[test]
    fn parse_errors_convert_and_chain_context() {
        let err: CmaError = parse_program("func main(").unwrap_err().into();
        assert!(matches!(err, CmaError::Parse(_)));
        let wrapped = err.with_context("while reading prog.appl");
        let msg = wrapped.to_string();
        assert!(
            msg.starts_with("while reading prog.appl: parse error:"),
            "{msg}"
        );
        assert!(std::error::Error::source(&wrapped).is_some());
    }

    #[test]
    fn result_ext_attaches_context() {
        let result: Result<(), ParseError> = Err(parse_program("od").unwrap_err());
        let err = result.context("loading benchmark").unwrap_err();
        assert!(err.to_string().contains("loading benchmark"));
        assert!(!err.is_analysis_failure());
    }

    #[test]
    fn usage_errors_have_no_source() {
        let err = CmaError::Usage("unknown flag --frobnicate".into());
        assert!(std::error::Error::source(&err).is_none());
        assert_eq!(err.to_string(), "unknown flag --frobnicate");
    }

    #[test]
    fn internal_errors_carry_the_program_path() {
        let err = CmaError::internal("bad.appl", "index out of bounds");
        assert_eq!(
            err.to_string(),
            "internal error while processing `bad.appl`: index out of bounds"
        );
        assert!(std::error::Error::source(&err).is_none());
        assert!(!err.is_analysis_failure());
        assert!(!err.budget_exhausted());
        let pathless = CmaError::Internal {
            path: None,
            message: "boom".into(),
        };
        assert_eq!(pathless.to_string(), "internal error: boom");
    }
}
