//! The fluent pipeline facade: [`Analysis`].
//!
//! One entry point wires together everything the constituent crates provide —
//! parsing, template-based moment inference over a pluggable
//! [`LpBackend`], central-moment derivation, tail bounds, and the soundness
//! side conditions — and returns a single [`AnalysisReport`]:
//!
//! ```
//! use central_moment_analysis::{Analysis, SolveMode};
//!
//! let report = Analysis::parse(r#"
//!     func main() begin
//!       if prob(0.5) then tick(2) else tick(4) fi
//!     end
//! "#)
//! .unwrap()
//! .degree(2)
//! .mode(SolveMode::Global)
//! .run()
//! .unwrap();
//! // E[C] = 3 and E[C^2] = 10 exactly; the report brackets both.
//! assert!(report.mean().lo() <= 3.0 + 1e-6 && report.mean().hi() >= 3.0 - 1e-6);
//! assert!(report.raw_moment(2).hi() >= 10.0 - 1e-6);
//! ```
//!
//! Solver choice is a type parameter, not a hard dependency: swap the LP
//! engine with [`Analysis::backend`] and everything downstream — engine,
//! soundness instrumentation, report statistics — uses it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cma_appl::{parse_program, Program};
use cma_check::CheckConfig;
use cma_inference::{
    analyze_session, analyze_session_resilient, soundness_report_in_session, tail_curve,
    AnalysisOptions, CentralMoments, DegradationStep, SolveMode,
};
use cma_lp::{LpBackend, SimplexBackend};
use cma_semiring::poly::Var;
use cma_suite::Benchmark;

use crate::error::CmaError;
use crate::report::{AnalysisReport, CheckStats, LpStats, PhaseTimings};

/// Fluent builder for one end-to-end analysis run.
///
/// Construct with [`Analysis::of`] (from an AST), [`Analysis::parse`] (from
/// Appl source), or [`Analysis::benchmark`] (from a suite benchmark, adopting
/// its valuation and degree), chain configuration, then call
/// [`run`](Analysis::run).
#[derive(Debug, Clone)]
pub struct Analysis<B: LpBackend = SimplexBackend> {
    program: Program,
    label: Option<String>,
    options: AnalysisOptions,
    backend: B,
    tail_thresholds: Option<Vec<f64>>,
    check_soundness: bool,
    escalate_from: Option<usize>,
    parse_elapsed: Option<Duration>,
    run_checks: bool,
    check_pruning: bool,
    check_nonneg_cost: bool,
    /// The original source text (kept by [`Analysis::parse`]) so the checker
    /// can resolve diagnostic spans to line:column and key branch facts.
    source: Option<String>,
}

impl Analysis<SimplexBackend> {
    /// A pipeline over an already-constructed program, with default options
    /// (degree 2, global mode, simplex backend).
    pub fn of(program: &Program) -> Self {
        Analysis {
            program: program.clone(),
            label: None,
            options: AnalysisOptions::degree(2),
            backend: SimplexBackend,
            tail_thresholds: None,
            check_soundness: true,
            escalate_from: None,
            parse_elapsed: None,
            run_checks: true,
            check_pruning: true,
            check_nonneg_cost: false,
            source: None,
        }
    }

    /// Parses Appl source text and builds a pipeline over it.
    ///
    /// # Errors
    ///
    /// Returns [`CmaError::Parse`] when the source does not parse.
    pub fn parse(source: &str) -> Result<Self, CmaError> {
        let start = Instant::now();
        let program = parse_program(source)?;
        let parse_elapsed = start.elapsed();
        let mut analysis = Analysis::of(&program);
        analysis.parse_elapsed = Some(parse_elapsed);
        analysis.source = Some(source.to_string());
        Ok(analysis)
    }

    /// A pipeline over a suite [`Benchmark`], adopting its program, name
    /// (namespaced when the benchmark belongs to a suite, e.g.
    /// `running/rdwalk`), target degree, valuation, and template variables.
    pub fn benchmark(benchmark: &Benchmark) -> Self {
        let mut analysis = Analysis::of(&benchmark.program)
            .degree(benchmark.degree)
            .valuation(benchmark.valuation.clone())
            .label(benchmark.qualified_name());
        if let Some(vars) = &benchmark.template_vars {
            analysis = analysis.template_vars(vars.clone());
        }
        analysis
    }
}

impl<B: LpBackend> Analysis<B> {
    /// Sets the target moment degree `m` (2 for variance, 4 for kurtosis).
    pub fn degree(mut self, m: usize) -> Self {
        self.options.degree = m;
        self
    }

    /// Sets the base polynomial degree of the templates.
    pub fn poly_degree(mut self, d: u32) -> Self {
        self.options.poly_degree = d;
        self
    }

    /// Enables automatic poly-degree escalation: when the LP is infeasible
    /// (templates too weak), retry `d → d+1` up to `max`, re-instantiating
    /// the recorded derivation plan instead of re-walking the program.
    pub fn max_poly_degree(mut self, max: u32) -> Self {
        self.options.max_poly_degree = Some(max);
        self
    }

    /// Reaches the target degree by **in-session escalation**: the analysis
    /// first solves at degree `from`, then escalates the live warm session
    /// degree by appending only the new moment components (see
    /// [`AnalysisSession::escalate_degree`](cma_inference::AnalysisSession::escalate_degree)).
    /// The report's `escalation` section carries the reuse statistics.
    pub fn escalate_from(mut self, from: usize) -> Self {
        self.escalate_from = Some(from);
        self
    }

    /// Sets the solving strategy (global or compositional).
    pub fn mode(mut self, mode: SolveMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Sets the valuation at which bounds are evaluated and the LP objective
    /// minimizes imprecision.
    pub fn valuation(mut self, valuation: Vec<(Var, f64)>) -> Self {
        self.options.valuation = valuation;
        self
    }

    /// Adds one variable binding to the valuation.
    pub fn at(mut self, var: impl AsRef<str>, value: f64) -> Self {
        self.options.valuation.push((Var::new(var.as_ref()), value));
        self
    }

    /// Restricts templates to the given variables.
    pub fn template_vars(mut self, vars: Vec<Var>) -> Self {
        self.options.template_vars = Some(vars);
        self
    }

    /// Sets the number of worker threads used to solve independent
    /// compositional SCC groups concurrently (default 1; only
    /// [`SolveMode::Compositional`] has independent groups).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads.max(1);
        self
    }

    /// Sets the LP pricing rule (devex by default; dantzig restores the
    /// pre-devex behavior, partial prices wide systems in sections).
    pub fn pricing(mut self, pricing: cma_lp::PricingRule) -> Self {
        self.options.pricing = pricing;
        self
    }

    /// Enables or disables the LP presolve pass (enabled by default).
    pub fn presolve(mut self, presolve: bool) -> Self {
        self.options.presolve = presolve;
        self
    }

    /// Sets the LP basis factorization (dense `B⁻¹` by default; `lu` solves
    /// with a Markowitz LU plus eta-file updates).
    pub fn factor(mut self, factor: cma_lp::FactorKind) -> Self {
        self.options.factor = factor;
        self
    }

    /// Sets the warm re-solve strategy for incremental LP rows (dual-simplex
    /// pivots by default; `phase1` restores the legacy restart).
    pub fn warm_resolve(mut self, warm: cma_lp::WarmStrategy) -> Self {
        self.options.warm_resolve = warm;
        self
    }

    /// Sets the dual leaving-row pricing (devex by default; `steepest` buys
    /// exact edge norms at one extra solve per pivot).
    pub fn dual_pricing(mut self, pricing: cma_lp::DualPricing) -> Self {
        self.options.dual_pricing = pricing;
        self
    }

    /// Sets the dual ratio test (long-step bound-flipping by default;
    /// `harris` restores the classic min-ratio test).
    pub fn dual_ratio(mut self, ratio: cma_lp::DualRatio) -> Self {
        self.options.dual_ratio = ratio;
        self
    }

    /// Bounds the whole analysis by a wall-clock deadline.  When the budget
    /// runs out the pipeline does not fail outright: it descends the
    /// graceful-degradation ladder (compositional mode, lower degree,
    /// presolve) and labels the result in the report's `degradation`
    /// section.  Only a ladder that runs completely dry surfaces the
    /// budget-exhaustion error.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.options.timeout = Some(timeout);
        self
    }

    /// Bounds each LP group solve by its own wall-clock deadline, on top of
    /// (and capped by) any whole-analysis [`timeout`](Self::timeout).
    pub fn group_timeout(mut self, timeout: Duration) -> Self {
        self.options.group_timeout = Some(timeout);
        self
    }

    /// Labels the report (shown by the CLI and in `to_json`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Requests tail bounds `P[C ≥ d]` at the given thresholds.  Without this
    /// call, thresholds default to 2×/4×/8× the derived mean upper bound.
    pub fn tail_at(mut self, thresholds: impl IntoIterator<Item = f64>) -> Self {
        self.tail_thresholds = Some(thresholds.into_iter().collect());
        self
    }

    /// Enables or disables the soundness side-condition checks (enabled by
    /// default; disabling skips the step-counting re-analysis).
    pub fn soundness(mut self, check: bool) -> Self {
        self.check_soundness = check;
        self
    }

    /// Enables or disables the pre-analysis static checks (enabled by
    /// default).  When enabled, error-severity diagnostics abort the run
    /// with [`CmaError::Check`]; warnings ride along in
    /// [`AnalysisReport::check`].
    pub fn check(mut self, check: bool) -> Self {
        self.run_checks = check;
        self
    }

    /// Enables or disables LP pruning from the checker's exported range
    /// facts (enabled by default; a no-op when the checks themselves are
    /// disabled).  Disabling isolates the checker's effect on LP size.
    pub fn check_pruning(mut self, prune: bool) -> Self {
        self.check_pruning = prune;
        self
    }

    /// Declares that the program's costs are meant to be nonnegative
    /// (disabled by default).  The checker then reports any statically
    /// negative `tick` as an error (CMA007), which aborts the run.
    pub fn check_nonneg_cost(mut self, nonneg: bool) -> Self {
        self.check_nonneg_cost = nonneg;
        self
    }

    /// Swaps the LP backend; all later phases (inference and the soundness
    /// re-analysis) solve with it.
    pub fn backend<B2: LpBackend>(self, backend: B2) -> Analysis<B2> {
        Analysis {
            program: self.program,
            label: self.label,
            options: self.options,
            backend,
            tail_thresholds: self.tail_thresholds,
            check_soundness: self.check_soundness,
            escalate_from: self.escalate_from,
            parse_elapsed: self.parse_elapsed,
            run_checks: self.run_checks,
            check_pruning: self.check_pruning,
            check_nonneg_cost: self.check_nonneg_cost,
            source: self.source,
        }
    }

    /// The program this pipeline will analyze.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The engine options this pipeline will run with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Runs the pipeline: inference, central moments, tail bounds, and (when
    /// enabled) the soundness checks, all against the configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`CmaError::Analysis`] when constraint generation fails or the
    /// LP backend reports the program unsolvable at the configured degrees.
    /// A failing *soundness check* is not an error: it is reported in
    /// [`AnalysisReport::soundness`].
    pub fn run(&self) -> Result<AnalysisReport, CmaError> {
        if self.options.degree == 0 {
            return Err(CmaError::Usage(
                "analysis degree must be at least 1 (use 2 for variance bounds)".into(),
            ));
        }
        if let Some(from) = self.escalate_from {
            if from == 0 || from >= self.options.degree {
                return Err(CmaError::Usage(format!(
                    "escalation must start at a degree in 1..{} (got {from})",
                    self.options.degree
                )));
            }
        }
        let total_start = Instant::now();

        // The static checks run first: error diagnostics abort (the derived
        // bounds would be over a defective program), warnings ride along in
        // the report, and the exported range facts prune statically-refuted
        // branches and dead template variables from the derivation.
        let (check_report, check_elapsed) = if self.run_checks {
            let start = Instant::now();
            let config = CheckConfig {
                nonneg_cost: self.check_nonneg_cost,
                assume_init: self
                    .options
                    .valuation
                    .iter()
                    .map(|(v, _)| v.clone())
                    .collect(),
            };
            let report = match &self.source {
                // `Analysis::parse` already parsed this very text.
                Some(source) => cma_check::check_source(source, &config)
                    .expect("source parsed by Analysis::parse"),
                None => cma_check::check_program(&self.program, &config),
            };
            if report.has_errors() {
                return Err(CmaError::Check(Box::new(report)));
            }
            (Some(report), Some(start.elapsed()))
        } else {
            (None, None)
        };

        let mut options = self.options.clone();
        if self.check_pruning {
            if let Some(report) = &check_report {
                if !report.facts().is_empty() {
                    options.range_facts = Some(Arc::new(report.facts().clone()));
                }
            }
        }

        let analysis_start = Instant::now();
        // With escalation enabled, solve at the starting degree first, then
        // escalate the live session to the target — the warm basis absorbs
        // the new moment components instead of a cold re-derive.  The plain
        // path runs the resilient driver, which degrades (and labels the
        // degradation) instead of failing when a budget runs out.
        let (result, mut engine_session) = match self.escalate_from {
            Some(from) => {
                let mut start_options = options.clone();
                start_options.degree = from;
                let (_low, mut session) =
                    analyze_session(&self.program, &start_options, &self.backend)?;
                let result = session.escalate_degree(options.degree)?;
                (result, session)
            }
            None => analyze_session_resilient(&self.program, &options, &self.backend)?,
        };
        let analysis_elapsed = analysis_start.elapsed();
        // Degradation may have landed below the requested degree or switched
        // the mode; everything downstream — soundness, report header, the
        // raw-moment listing — must describe the run that actually happened.
        let degree_used = result.degree();
        let mode_used = if result
            .degradation
            .steps
            .contains(&DegradationStep::CompositionalMode)
        {
            SolveMode::Compositional
        } else {
            self.options.mode
        };

        let tail_start = Instant::now();
        let raw_intervals = result.raw_intervals_at(&self.options.valuation);
        let central = CentralMoments::from_raw_intervals(&raw_intervals);
        let thresholds = match &self.tail_thresholds {
            Some(t) => t.clone(),
            None => default_thresholds(&central),
        };
        let tail = tail_curve(&central, thresholds);
        let tail_elapsed = tail_start.elapsed();

        // The soundness side conditions reuse the engine's live constraint
        // store: the step-counting system is layered onto the main group's
        // open session and re-minimized — no re-derivation, no extra solve.
        let (soundness, soundness_elapsed) = if self.check_soundness {
            let start = Instant::now();
            let report =
                soundness_report_in_session(&mut engine_session, &self.program, degree_used);
            (Some(report), Some(start.elapsed()))
        } else {
            (None, None)
        };
        drop(engine_session);

        let lp = LpStats::from_groups(
            result.lp_variables,
            result.lp_constraints,
            result.lp_solves,
            result.groups.clone(),
        );
        let check = check_report.map(|r| CheckStats {
            diagnostics: r.diagnostics().iter().map(|d| d.to_string()).collect(),
            warnings: r.warning_count(),
            pruning: result.pruning,
        });
        Ok(AnalysisReport {
            label: self.label.clone(),
            degree: degree_used,
            mode: mode_used,
            backend: self.backend.name().to_string(),
            pricing: self.options.pricing.name().to_string(),
            factor: self.options.factor.name().to_string(),
            parallelism: self.options.threads,
            poly_degree: result.poly_degree,
            poly_retries: result.poly_retries,
            escalation: result.escalation,
            degradation: result.degradation.clone(),
            plan: result.plan,
            valuation: self.options.valuation.clone(),
            result,
            raw_intervals,
            central,
            tail,
            soundness,
            check,
            timings: PhaseTimings {
                parse: self.parse_elapsed,
                check: check_elapsed,
                analysis: analysis_elapsed,
                soundness: soundness_elapsed,
                tail: tail_elapsed,
                total: total_start.elapsed(),
            },
            lp,
        })
    }
}

/// Default tail thresholds: 2×, 4×, and 8× the mean upper bound (the paper's
/// Fig. 1(c) evaluates `P[C ≥ 4d]`-style multiples).  Empty when the mean
/// bound is non-positive or infinite.
fn default_thresholds(central: &CentralMoments) -> Vec<f64> {
    let mean_ub = central.mean().hi();
    if mean_ub.is_finite() && mean_ub > 0.0 {
        vec![2.0 * mean_ub, 4.0 * mean_ub, 8.0 * mean_ub]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_lp::{LpProblem, LpSolution};
    use cma_suite::running;

    #[test]
    fn fluent_pipeline_matches_paper_bounds() {
        let report = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .run()
            .expect("rdwalk is analyzable");
        // Fig. 1(b) at d = 10: E[tick] <= 24, V[tick] <= 248.
        assert!(report.mean().hi() <= 24.0 + 1e-3);
        assert!(report.variance_upper().unwrap() <= 248.0 + 1e-2);
        assert_eq!(report.backend, "dense-simplex");
        assert_eq!(report.degree, 2);
        assert!(report.lp.variables > 0 && report.lp.constraints > 0);
        assert_eq!(report.lp.solves, 1);
        // Default thresholds are multiples of the mean upper bound.
        assert_eq!(report.tail.len(), 3);
        assert!(report.tail[0].probability >= report.tail[2].probability);
    }

    #[test]
    fn parse_entry_point_records_parse_time_and_runs_soundness() {
        let report =
            Analysis::parse("func main() begin if prob(0.5) then tick(2) else tick(4) fi end")
                .unwrap()
                .degree(2)
                .label("coinflip")
                .run()
                .unwrap();
        assert!(report.timings.parse.is_some());
        assert_eq!(report.is_sound(), Some(true));
        assert_eq!(report.label.as_deref(), Some("coinflip"));
        assert!((report.mean().mid() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn parse_errors_become_cma_errors() {
        let err = Analysis::parse("func main( begin end").unwrap_err();
        assert!(matches!(err, CmaError::Parse(_)));
    }

    #[test]
    fn explicit_tail_thresholds_are_respected() {
        let report = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .tail_at([40.0, 80.0])
            .run()
            .unwrap();
        assert_eq!(report.tail.len(), 2);
        assert_eq!(report.tail[0].threshold, 40.0);
        assert!(report.tail[1].probability <= report.tail[0].probability);
    }

    /// A third-party backend wrapping the dense reference in sessions that
    /// count their `minimize` calls — the pluggable seam exercised end to
    /// end, including the required-`open` contract.  Backends must be
    /// `Sync`, hence the atomic.
    struct CountingBackend(std::sync::atomic::AtomicUsize);

    struct CountingSession<'a> {
        inner: Box<dyn cma_lp::LpSession + 'a>,
        minimizes: &'a std::sync::atomic::AtomicUsize,
    }

    impl cma_lp::LpSession for CountingSession<'_> {
        fn add_var(&mut self, name: &str, free: bool) -> cma_lp::LpVarId {
            self.inner.add_var(name, free)
        }

        fn add_constraint(&mut self, terms: &[(cma_lp::LpVarId, f64)], cmp: cma_lp::Cmp, rhs: f64) {
            self.inner.add_constraint(terms, cmp, rhs);
        }

        fn minimize(&mut self, objective: &[(cma_lp::LpVarId, f64)]) -> LpSolution {
            self.minimizes
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.minimize(objective)
        }

        fn num_vars(&self) -> usize {
            self.inner.num_vars()
        }

        fn num_constraints(&self) -> usize {
            self.inner.num_constraints()
        }

        // Wrapper sessions must forward the capability, or they silently
        // disable the dual-flush path for their inner session.
        fn warm_resolves_in_place(&self) -> bool {
            self.inner.warm_resolves_in_place()
        }
    }

    impl LpBackend for CountingBackend {
        fn name(&self) -> &str {
            "counting-simplex"
        }

        fn open<'a>(&'a self, problem: &LpProblem) -> Box<dyn cma_lp::LpSession + 'a> {
            Box::new(CountingSession {
                inner: SimplexBackend.open(problem),
                minimizes: &self.0,
            })
        }
    }

    #[test]
    fn custom_backends_are_threaded_through_every_phase() {
        let backend = CountingBackend(std::sync::atomic::AtomicUsize::new(0));
        let report = Analysis::benchmark(&running::rdwalk())
            .backend(&backend)
            .run()
            .unwrap();
        assert_eq!(report.backend, "counting-simplex");
        // Inference minimized once; the soundness extension re-minimizes —
        // in place when the inner session warm-resolves, or through a
        // standalone subproblem session (this dense wrapper's case) — so a
        // counted `minimize` happens at least twice either way.
        assert!(report.soundness.is_some());
        assert_eq!(report.lp.solves, 1);
        let uses = backend.0.load(std::sync::atomic::Ordering::SeqCst);
        assert!(uses >= 2, "backend used {uses} times");
    }

    #[test]
    fn sparse_backend_matches_dense_through_the_pipeline() {
        let dense = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .run()
            .unwrap();
        let sparse = Analysis::benchmark(&running::rdwalk())
            .backend(cma_lp::SparseBackend)
            .soundness(false)
            .run()
            .unwrap();
        assert_eq!(sparse.backend, "sparse-revised-simplex");
        assert!((dense.mean().hi() - sparse.mean().hi()).abs() < 1e-4);
        assert!((dense.variance_upper().unwrap() - sparse.variance_upper().unwrap()).abs() < 1e-2);
    }

    #[test]
    fn soundness_reuses_the_constraint_store_under_both_backends() {
        use cma_appl::build::*;

        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let dense = Analysis::of(&program).run().unwrap();
        let sparse = Analysis::of(&program)
            .backend(cma_lp::SparseBackend)
            .run()
            .unwrap();
        for report in [&dense, &sparse] {
            let s = report.soundness.as_ref().unwrap();
            assert!(s.reused_constraint_store);
            assert!(s.extension_constraints > 0);
            assert_eq!(report.is_sound(), Some(true));
            // The extension rides the main store — no extra group solve.
            assert_eq!(report.lp.solves, 1);
        }
    }

    #[test]
    fn threads_flow_into_the_report_and_keep_bounds_identical() {
        let base = Analysis::benchmark(&cma_suite::synthetic::coupon_chain(4))
            .degree(2)
            .mode(SolveMode::Compositional)
            .soundness(false);
        let sequential = base.clone().run().unwrap();
        let parallel = base.threads(4).run().unwrap();
        assert_eq!(sequential.parallelism, 1);
        assert_eq!(parallel.parallelism, 4);
        assert_eq!(sequential.lp.solves, parallel.lp.solves);
        assert_eq!(sequential.lp.groups, parallel.lp.groups);
        assert_eq!(sequential.raw_intervals, parallel.raw_intervals);
    }

    #[test]
    fn per_group_lp_stats_cover_the_whole_system() {
        let report = Analysis::benchmark(&cma_suite::synthetic::coupon_chain(3))
            .degree(2)
            .mode(SolveMode::Compositional)
            .soundness(false)
            .run()
            .unwrap();
        assert_eq!(report.lp.groups.len(), report.lp.solves);
        let vars: usize = report.lp.groups.iter().map(|g| g.variables).sum();
        let cons: usize = report.lp.groups.iter().map(|g| g.constraints).sum();
        assert_eq!(vars, report.lp.variables);
        assert_eq!(cons, report.lp.constraints);
        assert_eq!(report.lp.groups.last().unwrap().name, "main");
    }

    #[test]
    fn compositional_mode_reports_multiple_solves() {
        let report = Analysis::benchmark(&cma_suite::synthetic::coupon_chain(3))
            .degree(2)
            .mode(SolveMode::Compositional)
            .soundness(false)
            .run()
            .unwrap();
        assert!(report.lp.solves > 1, "got {} solves", report.lp.solves);
    }

    /// The canonical triangular-loop fixture (quadratic cost, infeasible at
    /// poly degree 1) — shared with the CLI tests and the inference-level
    /// escalation tests, which parse the same file.
    const TRIANGLE: &str = include_str!("../examples/triangle.appl");

    #[test]
    fn escalated_pipeline_matches_the_direct_run_and_reports_reuse() {
        let direct = Analysis::benchmark(&running::rdwalk())
            .backend(cma_lp::SparseBackend)
            .soundness(false)
            .run()
            .unwrap();
        let escalated = Analysis::benchmark(&running::rdwalk())
            .backend(cma_lp::SparseBackend)
            .escalate_from(1)
            .soundness(false)
            .run()
            .unwrap();
        assert!((escalated.mean().hi() - direct.mean().hi()).abs() < 1e-3);
        assert!(
            (escalated.variance_upper().unwrap() - direct.variance_upper().unwrap()).abs() < 1e-1
        );
        let stats = escalated.escalation.expect("escalation stats in report");
        assert_eq!((stats.from_degree, stats.to_degree), (1, 2));
        assert_eq!(stats.cold_restarts, 0);
        assert!(stats.reused_columns > 0);
        assert!(stats.dual_pivots > 0, "warm dual re-solve expected");
        // Still one LP solve: the escalation re-minimized the live session.
        assert_eq!(escalated.lp.solves, 1);
        assert!(escalated.plan.slots_reused > 0);
    }

    #[test]
    fn escalated_run_keeps_soundness_and_json_fields_consistent() {
        let report =
            Analysis::parse("func main() begin if prob(0.5) then tick(2) else tick(4) fi end")
                .unwrap()
                .backend(cma_lp::SparseBackend)
                .escalate_from(1)
                .run()
                .unwrap();
        assert_eq!(report.is_sound(), Some(true));
        let json = report.to_json();
        assert!(
            json.contains("\"escalation\":{\"from_degree\":1,\"to_degree\":2"),
            "{json}"
        );
        assert!(json.contains("\"plan\":{\"slots_created\":"), "{json}");
        assert!(json.contains("\"shared_templates\":"), "{json}");
        assert!(json.contains("\"poly_degree\":1"), "{json}");
    }

    #[test]
    fn invalid_escalation_start_is_a_usage_error() {
        for from in [0usize, 2, 3] {
            let err = Analysis::benchmark(&running::rdwalk())
                .escalate_from(from)
                .soundness(false)
                .run()
                .unwrap_err();
            assert!(matches!(err, CmaError::Usage(_)), "from={from}: {err}");
        }
    }

    #[test]
    fn max_poly_degree_retries_infeasible_templates() {
        let failing = Analysis::parse(TRIANGLE)
            .unwrap()
            .degree(1)
            .soundness(false);
        let err = failing.clone().run().unwrap_err();
        assert_eq!(err.infeasible_at(), Some((1, 1)), "{err}");

        let report = failing.max_poly_degree(2).at("n", 4.0).run().unwrap();
        assert_eq!(report.poly_retries, 1);
        assert_eq!(report.poly_degree, 2);
        // Triangular cost n(n+1)/2 = 10 at n = 4, bracketed by the bounds.
        assert!(report.mean().hi() >= 10.0 - 1e-5);
        assert!(report.mean().lo() <= 10.0 + 1e-5);
        let json = report.to_json();
        assert!(json.contains("\"poly_degree\":2"), "{json}");
        assert!(json.contains("\"poly_retries\":1"), "{json}");
    }

    /// A program the checker can prune: one statically-refuted branch, one
    /// never-entered loop, one dead template variable.
    const PRUNABLE: &str = "func main() begin\n  x := 1;\n  waste := 7;\n  if x < 0 then tick(9) else tick(1) fi;\n  while x < 0 do tick(5) od\nend\n";

    #[test]
    fn checker_errors_abort_the_run_with_the_report() {
        // Malformed distributions and calls never reach the checker through
        // `Analysis::parse` — the parse-time validator rejects them first,
        // with a span of its own.
        let err = Analysis::parse("func main() begin\n  x ~ uniform(2, 1);\n  tick(1)\nend\n")
            .unwrap_err();
        assert!(matches!(err, CmaError::Parse(_)), "{err}");

        // The checker's own error path on a *valid* program: a negative tick
        // under the declared nonnegative-cost mode (CMA007).
        let src = "func main() begin\n  tick(-2)\nend\n";
        let err = Analysis::parse(src)
            .unwrap()
            .check_nonneg_cost(true)
            .run()
            .unwrap_err();
        assert!(matches!(err, CmaError::Check(_)), "{err}");
        let report = err.check_report().expect("report rides on the error");
        assert!(report.has_errors());
        assert!(err.to_string().contains("static checks failed"), "{err}");

        // Without the mode (or with the checks disabled) the same program
        // analyzes fine — the engine handles nonmonotone costs.
        let ran = Analysis::parse(src)
            .unwrap()
            .check(false)
            .soundness(false)
            .run();
        assert!(ran.is_ok(), "{:?}", ran.err().map(|e| e.to_string()));
        assert!(ran.unwrap().check.is_none());
    }

    #[test]
    fn checker_warnings_ride_in_the_report() {
        let report = Analysis::parse(PRUNABLE)
            .unwrap()
            .soundness(false)
            .run()
            .unwrap();
        let check = report.check.as_ref().expect("checks ran");
        // CMA002 (refuted branch), CMA002/CMA004 (dead loop), CMA005 (waste).
        assert!(check.warnings >= 3, "{:?}", check.diagnostics);
        assert!(
            check.diagnostics.iter().any(|d| d.contains("CMA005")),
            "{:?}",
            check.diagnostics
        );
        let rendered = report.to_string();
        assert!(rendered.contains("checks: "), "{rendered}");
    }

    #[test]
    fn check_pruning_shrinks_the_lp_and_keeps_the_exact_bound() {
        let base = Analysis::parse(PRUNABLE)
            .unwrap()
            .check_pruning(false)
            .soundness(false)
            .run()
            .unwrap();
        let pruned = Analysis::parse(PRUNABLE)
            .unwrap()
            .soundness(false)
            .run()
            .unwrap();
        // Unpruned run still reports the checker outcome, with zero savings.
        assert!(!base.check.as_ref().unwrap().pruning.any());
        let stats = pruned.check.as_ref().unwrap().pruning;
        assert_eq!(stats.refuted_branches, 1);
        assert_eq!(stats.skipped_loops, 1);
        assert_eq!(stats.dropped_template_vars, 1);
        assert!(
            pruned.lp.constraints < base.lp.constraints,
            "pruned {} vs {}",
            pruned.lp.constraints,
            base.lp.constraints
        );
        assert!(pruned.lp.variables < base.lp.variables);
        // The only live path ticks exactly 1.
        for report in [&base, &pruned] {
            assert!((report.mean().lo() - 1.0).abs() < 1e-6, "{}", report.mean());
            assert!((report.mean().hi() - 1.0).abs() < 1e-6, "{}", report.mean());
        }
    }

    #[test]
    fn json_report_is_well_formed_and_complete() {
        let report = Analysis::benchmark(&running::rdwalk())
            .tail_at([40.0])
            .run()
            .unwrap();
        let json = report.to_json();
        for key in [
            "\"label\":\"rdwalk\"",
            "\"degree\":2",
            "\"mode\":\"global\"",
            "\"backend\":\"dense-simplex\"",
            "\"parallelism\":1",
            "\"poly_degree\":1",
            "\"poly_retries\":0",
            "\"raw_moments\":[",
            "\"central_moments\":",
            "\"tail_bounds\":[{\"threshold\":40",
            "\"soundness\":{",
            "\"reused_constraint_store\":true",
            "\"extension_constraints\":",
            "\"shared_templates\":",
            "\"lp\":{",
            "\"groups\":[{\"name\":\"global\"",
            "\"plan\":{\"slots_created\":",
            "\"escalation\":null",
            "\"degradation\":{\"degraded\":false,\"steps\":[]}",
            "\"check\":{\"warnings\":0",
            "\"pruning\":{\"refuted_branches\":0",
            "\"timings\":{",
            "\"check_ms\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn expired_timeout_surfaces_as_budget_exhaustion_not_infeasibility() {
        // A zero budget exhausts every ladder rung before any solve can
        // finish; the error must say "out of budget", never "infeasible".
        let err = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .timeout(Duration::ZERO)
            .run()
            .unwrap_err();
        assert!(err.budget_exhausted(), "{err}");
        assert!(err.is_analysis_failure());
        assert_eq!(err.infeasible_at(), None);
        assert!(err.to_string().contains("budget exhausted"), "{err}");
    }

    #[test]
    fn generous_timeout_changes_nothing_and_stays_unlabeled() {
        let plain = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .run()
            .unwrap();
        let budgeted = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .timeout(Duration::from_secs(600))
            .group_timeout(Duration::from_secs(60))
            .run()
            .unwrap();
        assert!(!budgeted.result.degradation.degraded());
        assert_eq!(budgeted.degree, plain.degree);
        assert_eq!(budgeted.raw_intervals, plain.raw_intervals);
    }

    #[test]
    fn degraded_reports_are_always_labeled_in_text_and_json() {
        let mut report = Analysis::benchmark(&running::rdwalk())
            .soundness(false)
            .run()
            .unwrap();
        report.degradation = cma_inference::DegradationStats {
            steps: vec![
                DegradationStep::CompositionalMode,
                DegradationStep::ReduceDegree { from: 2, to: 1 },
            ],
        };
        let rendered = report.to_string();
        assert!(
            rendered.contains("degraded: global->compositional, degree:2->1"),
            "{rendered}"
        );
        let json = report.to_json();
        assert!(
            json.contains(
                "\"degradation\":{\"degraded\":true,\
                 \"steps\":[\"global->compositional\",\"degree:2->1\"]}"
            ),
            "{json}"
        );
    }
}
