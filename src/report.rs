//! The structured, self-describing result of an [`Analysis`](crate::Analysis)
//! run.
//!
//! [`AnalysisReport`] bundles everything one invocation of the pipeline
//! produces — raw and central moment intervals, tail bounds, the soundness
//! report, per-phase timings, and LP statistics — and renders itself either
//! human-readable (via [`Display`](std::fmt::Display), what `cma analyze`
//! prints) or as JSON (via [`AnalysisReport::to_json`], what `--json` emits).
//! The JSON encoder is hand-rolled: the grammar is tiny and the build
//! environment is dependency-free by design.

use std::fmt;
use std::time::Duration;

use cma_inference::{
    AnalysisResult, CentralMoments, GroupLpStats, SolveMode, SoundnessReport, TailBound,
};
use cma_semiring::poly::Var;
use cma_semiring::Interval;

/// Wall-clock time spent in each phase of the pipeline.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Parsing the source text (absent when the program was given as an AST).
    pub parse: Option<Duration>,
    /// Constraint derivation plus LP solving.
    pub analysis: Duration,
    /// The soundness side-condition checks (absent when disabled).
    pub soundness: Option<Duration>,
    /// Central-moment and tail-bound evaluation.
    pub tail: Duration,
    /// End-to-end time of `run()`.
    pub total: Duration,
}

/// Size and solver-effort statistics of the linear programs handed to the
/// backend.
#[derive(Debug, Clone, Default)]
pub struct LpStats {
    /// Total LP variables generated.
    pub variables: usize,
    /// Total LP constraints generated.
    pub constraints: usize,
    /// Number of LP solves (one per solved group; the soundness phase adds
    /// none — it extends the main group's session, see
    /// [`SoundnessReport::reused_constraint_store`]).
    pub solves: usize,
    /// Total simplex iterations across all group solves (the degeneracy
    /// observable: iteration blow-up at fixed size is a pricing regression).
    pub iterations: usize,
    /// Total basis refactorizations across all group solves.
    pub refactorizations: usize,
    /// Total constraint rows removed by LP presolve.
    pub presolve_rows: usize,
    /// Total LP columns removed by presolve (fixed or unreferenced).
    pub presolve_cols: usize,
    /// Total product-form eta updates appended by the LU factorization
    /// (0 under the dense inverse).
    pub etas: usize,
    /// Total dual-simplex pivots spent on warm incremental-row re-solves.
    pub dual_pivots: usize,
    /// Per-group sizes and solver counters, in solve order.
    pub groups: Vec<GroupLpStats>,
}

impl LpStats {
    /// Assembles the totals from per-group stats and the engine-wide counts.
    pub(crate) fn from_groups(
        variables: usize,
        constraints: usize,
        solves: usize,
        groups: Vec<GroupLpStats>,
    ) -> LpStats {
        LpStats {
            variables,
            constraints,
            solves,
            iterations: groups.iter().map(|g| g.iterations).sum(),
            refactorizations: groups.iter().map(|g| g.refactorizations).sum(),
            presolve_rows: groups.iter().map(|g| g.presolve_rows).sum(),
            presolve_cols: groups.iter().map(|g| g.presolve_cols).sum(),
            etas: groups.iter().map(|g| g.etas).sum(),
            dual_pivots: groups.iter().map(|g| g.dual_pivots).sum(),
            groups,
        }
    }
}

/// The complete, self-describing outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Optional label of the analyzed program (benchmark name or file name).
    pub label: Option<String>,
    /// Target moment degree `m`.
    pub degree: usize,
    /// Solving strategy used.
    pub mode: SolveMode,
    /// Name of the LP backend that solved the programs.
    pub backend: String,
    /// Pricing rule the backend solved with (`dantzig`, `devex`, `partial`).
    pub pricing: String,
    /// Basis factorization the backend solved with (`dense`, `lu`).
    pub factor: String,
    /// Worker threads used for independent group solves (1 = sequential).
    pub parallelism: usize,
    /// The initial-state valuation at which intervals below are evaluated.
    pub valuation: Vec<(Var, f64)>,
    /// The raw engine result (symbolic bounds, resolved specs, elapsed time).
    pub result: AnalysisResult,
    /// Interval bounds on `E[C^k]`, `k = 0..=m`, at [`valuation`](Self::valuation).
    pub raw_intervals: Vec<Interval>,
    /// Central moments derived from the raw intervals.
    pub central: CentralMoments,
    /// Best tail bounds `P[C ≥ d]` at the requested thresholds.
    pub tail: Vec<TailBound>,
    /// Soundness side conditions of Theorem 4.4 (absent when disabled).
    pub soundness: Option<SoundnessReport>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// LP size statistics.
    pub lp: LpStats,
}

impl AnalysisReport {
    /// The interval bracketing the expected cost `E[C]`.
    pub fn mean(&self) -> Interval {
        self.central.mean()
    }

    /// The interval bound on the `k`-th raw moment at the report valuation.
    pub fn raw_moment(&self, k: usize) -> Interval {
        self.raw_intervals[k]
    }

    /// Upper bound on the variance of the cost (needs degree ≥ 2).
    pub fn variance_upper(&self) -> Option<f64> {
        (self.central.degree() >= 2).then(|| self.central.variance_upper())
    }

    /// Lower bound on the variance of the cost (needs degree ≥ 2).
    pub fn variance_lower(&self) -> Option<f64> {
        (self.central.degree() >= 2).then(|| self.central.variance_lower())
    }

    /// Whether both soundness side conditions were checked and hold.
    pub fn is_sound(&self) -> Option<bool> {
        self.soundness.as_ref().map(|s| s.is_sound())
    }

    /// Serializes the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        match &self.label {
            Some(label) => push_field(&mut out, "label", &json_string(label)),
            None => push_field(&mut out, "label", "null"),
        }
        push_field(&mut out, "degree", &self.degree.to_string());
        let mode = match self.mode {
            SolveMode::Global => "global",
            SolveMode::Compositional => "compositional",
        };
        push_field(&mut out, "mode", &json_string(mode));
        push_field(&mut out, "backend", &json_string(&self.backend));
        push_field(&mut out, "pricing", &json_string(&self.pricing));
        push_field(&mut out, "factor", &json_string(&self.factor));
        push_field(&mut out, "parallelism", &self.parallelism.to_string());

        let valuation = self
            .valuation
            .iter()
            .map(|(v, x)| format!("{}:{}", json_string(v.name()), json_f64(*x)))
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "valuation", &format!("{{{valuation}}}"));

        let raw = self
            .raw_intervals
            .iter()
            .enumerate()
            .map(|(k, i)| {
                format!(
                    "{{\"k\":{k},\"lower\":{},\"upper\":{},\"symbolic_lower\":{},\"symbolic_upper\":{}}}",
                    json_f64(i.lo()),
                    json_f64(i.hi()),
                    json_string(&self.result.bounds[k].lower.to_string()),
                    json_string(&self.result.bounds[k].upper.to_string()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "raw_moments", &format!("[{raw}]"));

        let central_list = (0..=self.central.degree())
            .map(|k| {
                let i = self.central.central(k);
                format!(
                    "{{\"k\":{k},\"lower\":{},\"upper\":{}}}",
                    json_f64(i.lo()),
                    json_f64(i.hi())
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let central = format!(
            "{{\"moments\":[{central_list}],\"variance_lower\":{},\"variance_upper\":{},\"skewness_upper\":{},\"kurtosis_upper\":{}}}",
            json_opt_f64(self.variance_lower()),
            json_opt_f64(self.variance_upper()),
            json_opt_f64(self.central.skewness_upper()),
            json_opt_f64(self.central.kurtosis_upper()),
        );
        push_field(&mut out, "central_moments", &central);

        let tail = self
            .tail
            .iter()
            .map(|t| {
                format!(
                    "{{\"threshold\":{},\"probability\":{}}}",
                    json_f64(t.threshold),
                    json_f64(t.probability)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "tail_bounds", &format!("[{tail}]"));

        let soundness = match &self.soundness {
            Some(s) => {
                let violations = s
                    .violations
                    .iter()
                    .map(|v| json_string(v))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"bounded_updates\":{},\"violations\":[{violations}],\"termination_moment\":{},\"is_sound\":{},\"reused_constraint_store\":{},\"extension_variables\":{},\"extension_constraints\":{},\"extension_dual_pivots\":{}}}",
                    s.bounded_updates,
                    s.termination_moment
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| "null".into()),
                    s.is_sound(),
                    s.reused_constraint_store,
                    s.extension_variables,
                    s.extension_constraints,
                    s.extension_dual_pivots,
                )
            }
            None => "null".to_string(),
        };
        push_field(&mut out, "soundness", &soundness);

        let groups = self
            .lp
            .groups
            .iter()
            .map(|g| {
                format!(
                    "{{\"name\":{},\"variables\":{},\"constraints\":{},\"iterations\":{},\"refactorizations\":{},\"presolve_rows\":{},\"presolve_cols\":{},\"etas\":{},\"dual_pivots\":{}}}",
                    json_string(&g.name),
                    g.variables,
                    g.constraints,
                    g.iterations,
                    g.refactorizations,
                    g.presolve_rows,
                    g.presolve_cols,
                    g.etas,
                    g.dual_pivots,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let lp = format!(
            "{{\"variables\":{},\"constraints\":{},\"solves\":{},\"iterations\":{},\"refactorizations\":{},\"presolve_rows\":{},\"presolve_cols\":{},\"etas\":{},\"dual_pivots\":{},\"groups\":[{groups}]}}",
            self.lp.variables,
            self.lp.constraints,
            self.lp.solves,
            self.lp.iterations,
            self.lp.refactorizations,
            self.lp.presolve_rows,
            self.lp.presolve_cols,
            self.lp.etas,
            self.lp.dual_pivots,
        );
        push_field(&mut out, "lp", &lp);

        // Timings go last so consumers comparing reports can cheaply strip the
        // single volatile section.
        let timings = format!(
            "{{\"parse_ms\":{},\"analysis_ms\":{},\"soundness_ms\":{},\"tail_ms\":{},\"total_ms\":{}}}",
            json_opt_f64(self.timings.parse.map(|d| d.as_secs_f64() * 1e3)),
            json_f64(self.timings.analysis.as_secs_f64() * 1e3),
            json_opt_f64(self.timings.soundness.map(|d| d.as_secs_f64() * 1e3)),
            json_f64(self.timings.tail.as_secs_f64() * 1e3),
            json_f64(self.timings.total.as_secs_f64() * 1e3),
        );
        push_last_field(&mut out, "timings", &timings);
        out.push('}');
        out
    }
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("{}:{value},", json_string(key)));
}

fn push_last_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("{}:{value}", json_string(key)));
}

/// JSON string literal with escaping for the characters Appl text can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats render as shortest-round-trip decimals; infinities and NaN
/// (which JSON cannot represent) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            writeln!(f, "program:  {label}")?;
        }
        let mode = match self.mode {
            SolveMode::Global => "global",
            SolveMode::Compositional => "compositional",
        };
        write!(
            f,
            "analysis: degree {} · {mode} mode · backend {} · {} pricing · {} factorization",
            self.degree, self.backend, self.pricing, self.factor
        )?;
        if self.parallelism > 1 {
            write!(f, " · {} threads", self.parallelism)?;
        }
        writeln!(f)?;
        if !self.valuation.is_empty() {
            let at = self
                .valuation
                .iter()
                .map(|(v, x)| format!("{v} = {x}"))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(f, "at:       {at}")?;
        }
        writeln!(f)?;

        writeln!(f, "raw moments of the accumulated cost C:")?;
        for k in 1..=self.degree {
            let i = self.raw_intervals[k];
            writeln!(
                f,
                "  E[C^{k}]  in [{:.6}, {:.6}]   (symbolic: [{}, {}])",
                i.lo(),
                i.hi(),
                self.result.bounds[k].lower,
                self.result.bounds[k].upper
            )?;
        }
        if let (Some(lo), Some(hi)) = (self.variance_lower(), self.variance_upper()) {
            writeln!(f)?;
            writeln!(f, "central moments:")?;
            writeln!(f, "  V[C]    in [{lo:.6}, {hi:.6}]")?;
            if let Some(s) = self.central.skewness_upper() {
                writeln!(f, "  skewness upper bound: {s:.6}")?;
            }
            if let Some(k) = self.central.kurtosis_upper() {
                writeln!(f, "  kurtosis upper bound: {k:.6}")?;
            }
        }

        if !self.tail.is_empty() {
            writeln!(f)?;
            writeln!(f, "tail bounds (best of Markov/Cantelli/Chebyshev):")?;
            for t in &self.tail {
                writeln!(f, "  P[C >= {:.4}] <= {:.6}", t.threshold, t.probability)?;
            }
        }

        if let Some(s) = &self.soundness {
            writeln!(f)?;
            writeln!(
                f,
                "soundness (Thm 4.4): bounded updates: {}; finite E[T^k]: {}",
                if s.bounded_updates { "yes" } else { "NO" },
                match s.termination_moment {
                    Some(k) => format!("yes (k = {k})"),
                    None => "not established".to_string(),
                }
            )?;
            for v in &s.violations {
                writeln!(f, "  unbounded update: {v}")?;
            }
            if s.reused_constraint_store && s.extension_constraints > 0 {
                write!(
                    f,
                    "  (side conditions layered onto the main LP session: +{} rows, +{} vars",
                    s.extension_constraints, s.extension_variables
                )?;
                if s.extension_dual_pivots > 0 {
                    write!(f, ", {} dual pivots", s.extension_dual_pivots)?;
                }
                writeln!(f, ")")?;
            }
        }

        writeln!(f)?;
        write!(
            f,
            "lp: {} variables, {} constraints, {} solve(s)",
            self.lp.variables, self.lp.constraints, self.lp.solves,
        )?;
        if self.lp.groups.len() > 1 {
            write!(f, " across {} groups", self.lp.groups.len())?;
        }
        write!(
            f,
            " · {} iterations, {} refactorizations",
            self.lp.iterations, self.lp.refactorizations
        )?;
        if self.lp.etas > 0 || self.lp.dual_pivots > 0 {
            write!(
                f,
                " · {} etas, {} dual pivots",
                self.lp.etas, self.lp.dual_pivots
            )?;
        }
        if self.lp.presolve_rows > 0 || self.lp.presolve_cols > 0 {
            write!(
                f,
                " · presolve −{} rows −{} cols",
                self.lp.presolve_rows, self.lp.presolve_cols
            )?;
        }
        writeln!(
            f,
            " · analysis {:.1} ms · total {:.1} ms",
            self.timings.analysis.as_secs_f64() * 1e3,
            self.timings.total.as_secs_f64() * 1e3,
        )
    }
}
