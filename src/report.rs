//! The structured, self-describing result of an [`Analysis`](crate::Analysis)
//! run.
//!
//! [`AnalysisReport`] bundles everything one invocation of the pipeline
//! produces — raw and central moment intervals, tail bounds, the soundness
//! report, per-phase timings, and LP statistics — and renders itself either
//! human-readable (via [`Display`](std::fmt::Display), what `cma analyze`
//! prints) or as JSON (via [`AnalysisReport::to_json`], what `--json` emits).
//! The JSON encoder is hand-rolled: the grammar is tiny and the build
//! environment is dependency-free by design.

use std::fmt;
use std::time::Duration;

use cma_inference::{
    AnalysisResult, CentralMoments, DegradationStats, EscalationStats, GroupLpStats, PlanStats,
    PruningStats, SolveMode, SoundnessReport, TailBound,
};
use cma_semiring::poly::Var;
use cma_semiring::Interval;

/// Minimal JSON building blocks shared by every `--json` emitter (this
/// report, the CLI's `suite list`/`suite run` rows, the simulator output).
/// The grammar is tiny and the build environment is dependency-free by
/// design, so the encoder is hand-rolled — but hand-rolled *once*, here.
pub mod json {
    /// JSON string literal with escaping for everything Appl text can carry.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Finite floats render as shortest-round-trip decimals; infinities and
    /// NaN (which JSON cannot represent) become `null`.
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// [`num`] lifted over `Option` (`None` → `null`).
    pub fn opt_num(v: Option<f64>) -> String {
        v.map(num).unwrap_or_else(|| "null".to_string())
    }

    /// A JSON object from `(key, already-encoded value)` pairs.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
        let body = fields
            .into_iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }

    /// A JSON array from already-encoded values.
    pub fn array(items: impl IntoIterator<Item = String>) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }
}

/// Wall-clock time spent in each phase of the pipeline.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Parsing the source text (absent when the program was given as an AST).
    pub parse: Option<Duration>,
    /// The pre-analysis static checks (absent when disabled).
    pub check: Option<Duration>,
    /// Constraint derivation plus LP solving.
    pub analysis: Duration,
    /// The soundness side-condition checks (absent when disabled).
    pub soundness: Option<Duration>,
    /// Central-moment and tail-bound evaluation.
    pub tail: Duration,
    /// End-to-end time of `run()`.
    pub total: Duration,
}

/// Outcome of the pre-analysis static checks: the (warning-severity)
/// diagnostics the run surfaced and the derivation work the checker's
/// exported range facts saved.  Error-severity diagnostics never reach a
/// report — they abort the run with [`CmaError::Check`](crate::CmaError).
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Rendered diagnostics, in source order.
    pub diagnostics: Vec<String>,
    /// Number of warnings raised.
    pub warnings: usize,
    /// Branches/loops/template variables the checker's facts pruned from the
    /// derivation (all zero when pruning was disabled or nothing was refuted).
    pub pruning: PruningStats,
}

/// Size and solver-effort statistics of the linear programs handed to the
/// backend.
#[derive(Debug, Clone, Default)]
pub struct LpStats {
    /// Total LP variables generated.
    pub variables: usize,
    /// Total LP constraints generated.
    pub constraints: usize,
    /// Number of LP solves (one per solved group; the soundness phase adds
    /// none — it extends the main group's session, see
    /// [`SoundnessReport::reused_constraint_store`]).
    pub solves: usize,
    /// Total simplex iterations across all group solves (the degeneracy
    /// observable: iteration blow-up at fixed size is a pricing regression).
    pub iterations: usize,
    /// Total basis refactorizations across all group solves.
    pub refactorizations: usize,
    /// Total constraint rows removed by LP presolve.
    pub presolve_rows: usize,
    /// Total LP columns removed by presolve (fixed or unreferenced).
    pub presolve_cols: usize,
    /// Total product-form eta updates appended by the LU factorization
    /// (0 under the dense inverse).
    pub etas: usize,
    /// Total dual-simplex pivots spent on warm incremental-row re-solves.
    pub dual_pivots: usize,
    /// Total nonbasic bound flips performed by the long-step dual ratio test.
    pub bound_flips: usize,
    /// Total Forrest–Tomlin eta-file compactions performed by the LU updates.
    pub eta_compactions: usize,
    /// Peak eta-file length observed between refactorizations (max over
    /// groups).
    pub eta_len: usize,
    /// Total nanoseconds spent in forward solves (`ftran`).
    pub ftran_ns: u64,
    /// Total nanoseconds spent in backward solves (`btran`).
    pub btran_ns: u64,
    /// Total nanoseconds spent pricing entering columns / leaving rows.
    pub pricing_ns: u64,
    /// Total nanoseconds spent in primal/dual ratio tests.
    pub ratio_ns: u64,
    /// Total LU forward solves that completed on the hyper-sparse path.
    pub hyper_sparse_ftrans: u64,
    /// Total LU backward solves that completed on the hyper-sparse path.
    pub hyper_sparse_btrans: u64,
    /// Total kernel solves that ran (or fell back to) the dense scan.
    pub dense_fallbacks: u64,
    /// Total kernel-workspace reallocations after first sizing (0 in a
    /// steady-state solve: the hot loop is allocation-free).
    pub kernel_allocs: u64,
    /// Per-group sizes and solver counters, in solve order.
    pub groups: Vec<GroupLpStats>,
}

impl LpStats {
    /// Assembles the totals from per-group stats and the engine-wide counts.
    pub(crate) fn from_groups(
        variables: usize,
        constraints: usize,
        solves: usize,
        groups: Vec<GroupLpStats>,
    ) -> LpStats {
        LpStats {
            variables,
            constraints,
            solves,
            iterations: groups.iter().map(|g| g.iterations).sum(),
            refactorizations: groups.iter().map(|g| g.refactorizations).sum(),
            presolve_rows: groups.iter().map(|g| g.presolve_rows).sum(),
            presolve_cols: groups.iter().map(|g| g.presolve_cols).sum(),
            etas: groups.iter().map(|g| g.etas).sum(),
            dual_pivots: groups.iter().map(|g| g.dual_pivots).sum(),
            bound_flips: groups.iter().map(|g| g.bound_flips).sum(),
            eta_compactions: groups.iter().map(|g| g.eta_compactions).sum(),
            eta_len: groups.iter().map(|g| g.eta_len).max().unwrap_or(0),
            ftran_ns: groups.iter().map(|g| g.ftran_ns).sum(),
            btran_ns: groups.iter().map(|g| g.btran_ns).sum(),
            pricing_ns: groups.iter().map(|g| g.pricing_ns).sum(),
            ratio_ns: groups.iter().map(|g| g.ratio_ns).sum(),
            hyper_sparse_ftrans: groups.iter().map(|g| g.hyper_sparse_ftrans).sum(),
            hyper_sparse_btrans: groups.iter().map(|g| g.hyper_sparse_btrans).sum(),
            dense_fallbacks: groups.iter().map(|g| g.dense_fallbacks).sum(),
            kernel_allocs: groups.iter().map(|g| g.kernel_allocs).sum(),
            groups,
        }
    }
}

/// The complete, self-describing outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Optional label of the analyzed program (benchmark name or file name).
    pub label: Option<String>,
    /// Target moment degree `m`.
    pub degree: usize,
    /// Solving strategy used.
    pub mode: SolveMode,
    /// Name of the LP backend that solved the programs.
    pub backend: String,
    /// Pricing rule the backend solved with (`dantzig`, `devex`, `partial`).
    pub pricing: String,
    /// Basis factorization the backend solved with (`dense`, `lu`).
    pub factor: String,
    /// Worker threads used for independent group solves (1 = sequential).
    pub parallelism: usize,
    /// Base polynomial degree the successful instantiation solved with
    /// (larger than requested when automatic poly-degree escalation kicked
    /// in — see [`poly_retries`](Self::poly_retries)).
    pub poly_degree: u32,
    /// Automatic `d → d+1` template retries spent before feasibility.
    pub poly_retries: usize,
    /// In-session degree escalation statistics (present when the analysis
    /// reached its target degree by escalating a lower-degree session).
    pub escalation: Option<EscalationStats>,
    /// Degradation-ladder rungs the analysis descended after budget
    /// exhaustion (empty for a full-precision run).  A nonempty value means
    /// every bound below is **degraded**: still sound, but produced under
    /// weaker options than requested — and this field is the label that
    /// keeps that fact from ever being silent.
    pub degradation: DegradationStats,
    /// Derivation-plan reuse counters (slots/columns/recipes reused vs
    /// created across instantiations and extensions).
    pub plan: PlanStats,
    /// The initial-state valuation at which intervals below are evaluated.
    pub valuation: Vec<(Var, f64)>,
    /// The raw engine result (symbolic bounds, resolved specs, elapsed time).
    pub result: AnalysisResult,
    /// Interval bounds on `E[C^k]`, `k = 0..=m`, at [`valuation`](Self::valuation).
    pub raw_intervals: Vec<Interval>,
    /// Central moments derived from the raw intervals.
    pub central: CentralMoments,
    /// Best tail bounds `P[C ≥ d]` at the requested thresholds.
    pub tail: Vec<TailBound>,
    /// Soundness side conditions of Theorem 4.4 (absent when disabled).
    pub soundness: Option<SoundnessReport>,
    /// Static-check diagnostics and fact-pruning statistics (absent when the
    /// checks were disabled).
    pub check: Option<CheckStats>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// LP size statistics.
    pub lp: LpStats,
}

impl AnalysisReport {
    /// The interval bracketing the expected cost `E[C]`.
    pub fn mean(&self) -> Interval {
        self.central.mean()
    }

    /// The interval bound on the `k`-th raw moment at the report valuation.
    pub fn raw_moment(&self, k: usize) -> Interval {
        self.raw_intervals[k]
    }

    /// Upper bound on the variance of the cost (needs degree ≥ 2).
    pub fn variance_upper(&self) -> Option<f64> {
        (self.central.degree() >= 2).then(|| self.central.variance_upper())
    }

    /// Lower bound on the variance of the cost (needs degree ≥ 2).
    pub fn variance_lower(&self) -> Option<f64> {
        (self.central.degree() >= 2).then(|| self.central.variance_lower())
    }

    /// Whether both soundness side conditions were checked and hold.
    pub fn is_sound(&self) -> Option<bool> {
        self.soundness.as_ref().map(|s| s.is_sound())
    }

    /// Serializes the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        match &self.label {
            Some(label) => push_field(&mut out, "label", &json::string(label)),
            None => push_field(&mut out, "label", "null"),
        }
        push_field(&mut out, "degree", &self.degree.to_string());
        let mode = match self.mode {
            SolveMode::Global => "global",
            SolveMode::Compositional => "compositional",
        };
        push_field(&mut out, "mode", &json::string(mode));
        push_field(&mut out, "backend", &json::string(&self.backend));
        push_field(&mut out, "pricing", &json::string(&self.pricing));
        push_field(&mut out, "factor", &json::string(&self.factor));
        push_field(&mut out, "parallelism", &self.parallelism.to_string());
        push_field(&mut out, "poly_degree", &self.poly_degree.to_string());
        push_field(&mut out, "poly_retries", &self.poly_retries.to_string());

        let valuation = self
            .valuation
            .iter()
            .map(|(v, x)| format!("{}:{}", json::string(v.name()), json::num(*x)))
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "valuation", &format!("{{{valuation}}}"));

        let raw = self
            .raw_intervals
            .iter()
            .enumerate()
            .map(|(k, i)| {
                format!(
                    "{{\"k\":{k},\"lower\":{},\"upper\":{},\"symbolic_lower\":{},\"symbolic_upper\":{}}}",
                    json::num(i.lo()),
                    json::num(i.hi()),
                    json::string(&self.result.bounds[k].lower.to_string()),
                    json::string(&self.result.bounds[k].upper.to_string()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "raw_moments", &format!("[{raw}]"));

        let central_list = (0..=self.central.degree())
            .map(|k| {
                let i = self.central.central(k);
                format!(
                    "{{\"k\":{k},\"lower\":{},\"upper\":{}}}",
                    json::num(i.lo()),
                    json::num(i.hi())
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let central = format!(
            "{{\"moments\":[{central_list}],\"variance_lower\":{},\"variance_upper\":{},\"skewness_upper\":{},\"kurtosis_upper\":{}}}",
            json::opt_num(self.variance_lower()),
            json::opt_num(self.variance_upper()),
            json::opt_num(self.central.skewness_upper()),
            json::opt_num(self.central.kurtosis_upper()),
        );
        push_field(&mut out, "central_moments", &central);

        let tail = self
            .tail
            .iter()
            .map(|t| {
                format!(
                    "{{\"threshold\":{},\"probability\":{}}}",
                    json::num(t.threshold),
                    json::num(t.probability)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        push_field(&mut out, "tail_bounds", &format!("[{tail}]"));

        let soundness = match &self.soundness {
            Some(s) => {
                let violations = s
                    .violations
                    .iter()
                    .map(|v| json::string(v))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"bounded_updates\":{},\"violations\":[{violations}],\"termination_moment\":{},\"is_sound\":{},\"reused_constraint_store\":{},\"extension_variables\":{},\"extension_constraints\":{},\"extension_dual_pivots\":{},\"shared_templates\":{},\"shared_template_columns\":{}}}",
                    s.bounded_updates,
                    s.termination_moment
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| "null".into()),
                    s.is_sound(),
                    s.reused_constraint_store,
                    s.extension_variables,
                    s.extension_constraints,
                    s.extension_dual_pivots,
                    s.shared_templates,
                    s.shared_template_columns,
                )
            }
            None => "null".to_string(),
        };
        push_field(&mut out, "soundness", &soundness);

        let groups = self
            .lp
            .groups
            .iter()
            .map(|g| {
                format!(
                    "{{\"name\":{},\"variables\":{},\"constraints\":{},\"iterations\":{},\"refactorizations\":{},\"presolve_rows\":{},\"presolve_cols\":{},\"etas\":{},\"dual_pivots\":{},\"bound_flips\":{},\"eta_compactions\":{},\"eta_len\":{},\"ftran_ns\":{},\"btran_ns\":{},\"pricing_ns\":{},\"ratio_ns\":{},\"hyper_sparse_ftrans\":{},\"hyper_sparse_btrans\":{},\"dense_fallbacks\":{},\"kernel_allocs\":{}}}",
                    json::string(&g.name),
                    g.variables,
                    g.constraints,
                    g.iterations,
                    g.refactorizations,
                    g.presolve_rows,
                    g.presolve_cols,
                    g.etas,
                    g.dual_pivots,
                    g.bound_flips,
                    g.eta_compactions,
                    g.eta_len,
                    g.ftran_ns,
                    g.btran_ns,
                    g.pricing_ns,
                    g.ratio_ns,
                    g.hyper_sparse_ftrans,
                    g.hyper_sparse_btrans,
                    g.dense_fallbacks,
                    g.kernel_allocs,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let lp = format!(
            "{{\"variables\":{},\"constraints\":{},\"solves\":{},\"iterations\":{},\"refactorizations\":{},\"presolve_rows\":{},\"presolve_cols\":{},\"etas\":{},\"dual_pivots\":{},\"bound_flips\":{},\"eta_compactions\":{},\"eta_len\":{},\"ftran_ns\":{},\"btran_ns\":{},\"pricing_ns\":{},\"ratio_ns\":{},\"hyper_sparse_ftrans\":{},\"hyper_sparse_btrans\":{},\"dense_fallbacks\":{},\"kernel_allocs\":{},\"groups\":[{groups}]}}",
            self.lp.variables,
            self.lp.constraints,
            self.lp.solves,
            self.lp.iterations,
            self.lp.refactorizations,
            self.lp.presolve_rows,
            self.lp.presolve_cols,
            self.lp.etas,
            self.lp.dual_pivots,
            self.lp.bound_flips,
            self.lp.eta_compactions,
            self.lp.eta_len,
            self.lp.ftran_ns,
            self.lp.btran_ns,
            self.lp.pricing_ns,
            self.lp.ratio_ns,
            self.lp.hyper_sparse_ftrans,
            self.lp.hyper_sparse_btrans,
            self.lp.dense_fallbacks,
            self.lp.kernel_allocs,
        );
        push_field(&mut out, "lp", &lp);

        let plan = json::object([
            ("slots_created", self.plan.slots_created.to_string()),
            ("slots_reused", self.plan.slots_reused.to_string()),
            ("columns_created", self.plan.columns_created.to_string()),
            ("columns_reused", self.plan.columns_reused.to_string()),
            ("recipes_recorded", self.plan.recipes_recorded.to_string()),
            ("recipes_replayed", self.plan.recipes_replayed.to_string()),
            (
                "components_skipped",
                self.plan.components_skipped.to_string(),
            ),
            ("loop_heads_reused", self.plan.loop_heads_reused.to_string()),
        ]);
        push_field(&mut out, "plan", &plan);

        let escalation = match &self.escalation {
            Some(e) => json::object([
                ("from_degree", e.from_degree.to_string()),
                ("to_degree", e.to_degree.to_string()),
                ("appended_variables", e.appended_variables.to_string()),
                ("appended_constraints", e.appended_constraints.to_string()),
                ("reused_slots", e.reused_slots.to_string()),
                ("reused_columns", e.reused_columns.to_string()),
                ("dual_pivots", e.dual_pivots.to_string()),
                ("iterations", e.iterations.to_string()),
                ("cold_restarts", e.cold_restarts.to_string()),
                ("poly_retries", e.poly_retries.to_string()),
            ]),
            None => "null".to_string(),
        };
        push_field(&mut out, "escalation", &escalation);

        let degradation = format!(
            "{{\"degraded\":{},\"steps\":[{}]}}",
            self.degradation.degraded(),
            self.degradation
                .steps
                .iter()
                .map(|s| json::string(&s.to_string()))
                .collect::<Vec<_>>()
                .join(","),
        );
        push_field(&mut out, "degradation", &degradation);

        let check = match &self.check {
            Some(c) => {
                let diags = c
                    .diagnostics
                    .iter()
                    .map(|d| json::string(d))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"warnings\":{},\"diagnostics\":[{diags}],\"pruning\":{{\"refuted_branches\":{},\"skipped_loops\":{},\"dropped_template_vars\":{}}}}}",
                    c.warnings,
                    c.pruning.refuted_branches,
                    c.pruning.skipped_loops,
                    c.pruning.dropped_template_vars,
                )
            }
            None => "null".to_string(),
        };
        push_field(&mut out, "check", &check);

        // Timings go last so consumers comparing reports can cheaply strip the
        // single volatile section.
        let timings = format!(
            "{{\"parse_ms\":{},\"check_ms\":{},\"analysis_ms\":{},\"soundness_ms\":{},\"tail_ms\":{},\"total_ms\":{}}}",
            json::opt_num(self.timings.parse.map(|d| d.as_secs_f64() * 1e3)),
            json::opt_num(self.timings.check.map(|d| d.as_secs_f64() * 1e3)),
            json::num(self.timings.analysis.as_secs_f64() * 1e3),
            json::opt_num(self.timings.soundness.map(|d| d.as_secs_f64() * 1e3)),
            json::num(self.timings.tail.as_secs_f64() * 1e3),
            json::num(self.timings.total.as_secs_f64() * 1e3),
        );
        push_last_field(&mut out, "timings", &timings);
        out.push('}');
        out
    }
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("{}:{value},", json::string(key)));
}

fn push_last_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("{}:{value}", json::string(key)));
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            writeln!(f, "program:  {label}")?;
        }
        let mode = match self.mode {
            SolveMode::Global => "global",
            SolveMode::Compositional => "compositional",
        };
        write!(
            f,
            "analysis: degree {} · {mode} mode · backend {} · {} pricing · {} factorization",
            self.degree, self.backend, self.pricing, self.factor
        )?;
        if self.parallelism > 1 {
            write!(f, " · {} threads", self.parallelism)?;
        }
        if self.poly_degree > 1 || self.poly_retries > 0 {
            write!(f, " · poly degree {}", self.poly_degree)?;
            if self.poly_retries > 0 {
                let plural = if self.poly_retries == 1 {
                    "retry"
                } else {
                    "retries"
                };
                write!(f, " (after {} automatic {plural})", self.poly_retries)?;
            }
        }
        writeln!(f)?;
        if let Some(e) = &self.escalation {
            if e.cold_restarts == 0 {
                writeln!(
                    f,
                    "escalated: degree {} -> {} in session (+{} vars, +{} rows, \
                     {} reused columns, {} dual pivots)",
                    e.from_degree,
                    e.to_degree,
                    e.appended_variables,
                    e.appended_constraints,
                    e.reused_columns,
                    e.dual_pivots
                )?;
            } else {
                writeln!(
                    f,
                    "escalated: degree {} -> {} via cold re-derive \
                     ({} plan slots replayed)",
                    e.from_degree, e.to_degree, e.reused_slots
                )?;
            }
        }
        if self.degradation.degraded() {
            writeln!(
                f,
                "degraded: {} (budget ran out; bounds are sound but below \
                 the requested precision)",
                self.degradation
            )?;
        }
        if !self.valuation.is_empty() {
            let at = self
                .valuation
                .iter()
                .map(|(v, x)| format!("{v} = {x}"))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(f, "at:       {at}")?;
        }
        writeln!(f)?;

        writeln!(f, "raw moments of the accumulated cost C:")?;
        for k in 1..=self.degree {
            let i = self.raw_intervals[k];
            writeln!(
                f,
                "  E[C^{k}]  in [{:.6}, {:.6}]   (symbolic: [{}, {}])",
                i.lo(),
                i.hi(),
                self.result.bounds[k].lower,
                self.result.bounds[k].upper
            )?;
        }
        if let (Some(lo), Some(hi)) = (self.variance_lower(), self.variance_upper()) {
            writeln!(f)?;
            writeln!(f, "central moments:")?;
            writeln!(f, "  V[C]    in [{lo:.6}, {hi:.6}]")?;
            if let Some(s) = self.central.skewness_upper() {
                writeln!(f, "  skewness upper bound: {s:.6}")?;
            }
            if let Some(k) = self.central.kurtosis_upper() {
                writeln!(f, "  kurtosis upper bound: {k:.6}")?;
            }
        }

        if !self.tail.is_empty() {
            writeln!(f)?;
            writeln!(f, "tail bounds (best of Markov/Cantelli/Chebyshev):")?;
            for t in &self.tail {
                writeln!(f, "  P[C >= {:.4}] <= {:.6}", t.threshold, t.probability)?;
            }
        }

        if let Some(s) = &self.soundness {
            writeln!(f)?;
            writeln!(
                f,
                "soundness (Thm 4.4): bounded updates: {}; finite E[T^k]: {}",
                if s.bounded_updates { "yes" } else { "NO" },
                match s.termination_moment {
                    Some(k) => format!("yes (k = {k})"),
                    None => "not established".to_string(),
                }
            )?;
            for v in &s.violations {
                writeln!(f, "  unbounded update: {v}")?;
            }
            if s.reused_constraint_store && s.extension_constraints > 0 {
                write!(
                    f,
                    "  (side conditions layered onto the main LP session: +{} rows, +{} vars",
                    s.extension_constraints, s.extension_variables
                )?;
                if s.extension_dual_pivots > 0 {
                    write!(f, ", {} dual pivots", s.extension_dual_pivots)?;
                }
                if s.shared_templates {
                    write!(
                        f,
                        ", {} template columns shared with the main derivation",
                        s.shared_template_columns
                    )?;
                }
                writeln!(f, ")")?;
            }
        }

        if let Some(c) = &self.check {
            writeln!(f)?;
            if c.warnings == 0 {
                write!(f, "checks: clean")?;
            } else {
                let plural = if c.warnings == 1 { "" } else { "s" };
                write!(f, "checks: {} warning{plural}", c.warnings)?;
            }
            let p = &c.pruning;
            if p.any() {
                write!(
                    f,
                    " · pruned {} refuted branch(es), {} dead loop(s), \
                     {} dead template var(s)",
                    p.refuted_branches, p.skipped_loops, p.dropped_template_vars
                )?;
            }
            writeln!(f)?;
        }

        writeln!(f)?;
        write!(
            f,
            "lp: {} variables, {} constraints, {} solve(s)",
            self.lp.variables, self.lp.constraints, self.lp.solves,
        )?;
        if self.lp.groups.len() > 1 {
            write!(f, " across {} groups", self.lp.groups.len())?;
        }
        write!(
            f,
            " · {} iterations, {} refactorizations",
            self.lp.iterations, self.lp.refactorizations
        )?;
        if self.lp.etas > 0 || self.lp.dual_pivots > 0 {
            write!(
                f,
                " · {} etas, {} dual pivots",
                self.lp.etas, self.lp.dual_pivots
            )?;
        }
        if self.lp.bound_flips > 0 || self.lp.eta_compactions > 0 {
            write!(
                f,
                " · {} bound flips, {} eta compactions (peak eta {})",
                self.lp.bound_flips, self.lp.eta_compactions, self.lp.eta_len
            )?;
        }
        if self.lp.hyper_sparse_ftrans > 0 || self.lp.hyper_sparse_btrans > 0 {
            write!(
                f,
                " · hyper-sparse {} ftran / {} btran ({} dense fallbacks, {} kernel allocs)",
                self.lp.hyper_sparse_ftrans,
                self.lp.hyper_sparse_btrans,
                self.lp.dense_fallbacks,
                self.lp.kernel_allocs
            )?;
        }
        if self.lp.presolve_rows > 0 || self.lp.presolve_cols > 0 {
            write!(
                f,
                " · presolve −{} rows −{} cols",
                self.lp.presolve_rows, self.lp.presolve_cols
            )?;
        }
        writeln!(
            f,
            " · analysis {:.1} ms · total {:.1} ms",
            self.timings.analysis.as_secs_f64() * 1e3,
            self.timings.total.as_secs_f64() * 1e3,
        )
    }
}
