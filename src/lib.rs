//! Umbrella crate for the central-moment-analysis reproduction.
//!
//! Re-exports every workspace crate under a short module name so examples and
//! downstream users can depend on a single package:
//!
//! * [`semiring`] — moment semirings, intervals, polynomials;
//! * [`appl`] — the Appl probabilistic language (AST, parser, builder DSL);
//! * [`sim`] — Monte-Carlo operational semantics;
//! * [`lp`] — the simplex LP solver;
//! * [`logic`] — logical contexts and certificates;
//! * [`inference`] — the central-moment analysis itself;
//! * [`suite`] — the benchmark programs of the paper's evaluation.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

pub use cma_appl as appl;
pub use cma_inference as inference;
pub use cma_logic as logic;
pub use cma_lp as lp;
pub use cma_semiring as semiring;
pub use cma_sim as sim;
pub use cma_suite as suite;
