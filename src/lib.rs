//! Umbrella crate for the central-moment-analysis reproduction.
//!
//! The primary entry point is the fluent [`Analysis`] pipeline, which wires
//! parsing, template-based moment inference over a pluggable LP backend,
//! central-moment derivation, tail bounds, and soundness checking into one
//! call returning a structured [`AnalysisReport`]:
//!
//! ```
//! use central_moment_analysis::Analysis;
//!
//! let report = Analysis::parse(
//!     "func main() begin if prob(0.5) then tick(2) else tick(4) fi end",
//! )
//! .unwrap()
//! .degree(2)
//! .run()
//! .unwrap();
//! assert!(report.mean().hi() >= 3.0 - 1e-6);
//! assert!(report.variance_upper().unwrap() >= 1.0 - 1e-6);
//! ```
//!
//! The constituent crates remain available under short module names for
//! callers that need lower-level control:
//!
//! * [`semiring`] — moment semirings, intervals, polynomials;
//! * [`appl`] — the Appl probabilistic language (AST, parser, builder DSL);
//! * [`check`] — the pre-analysis static checker (diagnostics CMA001–CMA007
//!   and the range facts that prune the derivation);
//! * [`sim`] — Monte-Carlo operational semantics;
//! * [`lp`] — the LP solver abstraction ([`LpBackend`]) and the default
//!   simplex implementation;
//! * [`logic`] — logical contexts and certificates;
//! * [`inference`] — the central-moment analysis itself;
//! * [`suite`] — the benchmark programs of the paper's evaluation.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture, the
//! [`LpBackend`] contract, and the [`CmaError`] hierarchy.

pub use cma_appl as appl;
pub use cma_check as check;
pub use cma_inference as inference;
pub use cma_logic as logic;
pub use cma_lp as lp;
pub use cma_semiring as semiring;
pub use cma_sim as sim;
pub use cma_suite as suite;

mod error;
mod pipeline;
mod report;

pub use error::{CmaError, ResultExt};
pub use pipeline::Analysis;
pub use report::{json, AnalysisReport, CheckStats, LpStats, PhaseTimings};

// The vocabulary of the pipeline, re-exported flat so `use
// central_moment_analysis::{Analysis, SolveMode, Var}` just works.
pub use cma_appl::{parse_program, Program, Var};
pub use cma_check::{CheckConfig, CheckReport};
pub use cma_inference::{
    AnalysisOptions, CentralMoments, DegradationStats, DegradationStep, EscalationStats,
    GroupLpStats, PlanStats, PruningStats, SolveMode, SoundnessReport, TailBound,
};
pub use cma_lp::{
    DualPricing, DualRatio, FactorKind, LpBackend, LpSession, PricingRule, SimplexBackend,
    SolveStats, SolverTuning, SparseBackend, TunedBackend, WarmStrategy,
};
pub use cma_semiring::Interval;
