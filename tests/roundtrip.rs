//! Parser/pretty-printer round-trip tests over the whole benchmark suite.
//!
//! The pretty printer emits the paper's concrete syntax and the parser reads
//! it back; `parse(pretty(p))` must reproduce a program whose pretty form is
//! *identical* (pretty-printing is a normal form, so one round trip reaches
//! the fixpoint).  This is what keeps `.appl` files, the `cma` CLI, and the
//! Rust builder DSL interchangeable.

use central_moment_analysis::parse_program;
use central_moment_analysis::suite::{self, Benchmark};

fn assert_roundtrips(b: &Benchmark) {
    let printed = b.program.to_string();
    let reparsed = parse_program(&printed).unwrap_or_else(|e| {
        panic!(
            "{}: pretty output does not re-parse: {e}\n{printed}",
            b.name
        )
    });
    let reprinted = reparsed.to_string();
    assert_eq!(
        printed, reprinted,
        "{}: pretty → parse → pretty is not a fixpoint",
        b.name
    );
    // Structure survives, not just text: same functions, same size.
    assert_eq!(
        b.program.functions().count(),
        reparsed.functions().count(),
        "{}: function count changed",
        b.name
    );
    assert_eq!(
        b.program.size(),
        reparsed.size(),
        "{}: AST size changed",
        b.name
    );
}

#[test]
fn kura_suite_roundtrips() {
    for b in suite::kura_suite() {
        assert_roundtrips(&b);
    }
}

#[test]
fn absynth_suite_roundtrips() {
    for b in suite::absynth_suite() {
        assert_roundtrips(&b);
    }
}

#[test]
fn nonmonotone_suite_roundtrips() {
    for b in suite::nonmonotone_suite() {
        assert_roundtrips(&b);
    }
}

#[test]
fn running_examples_and_case_studies_roundtrip() {
    for b in [
        suite::running::rdwalk(),
        suite::running::rdwalk_variant_1(),
        suite::running::rdwalk_variant_2(),
        suite::timing::password_checker(8),
        suite::synthetic::coupon_chain(5),
        suite::synthetic::random_walk_chain(5),
    ] {
        assert_roundtrips(&b);
    }
}

#[test]
fn fig2_fixture_matches_the_builder_program() {
    // The checked-in .appl fixture used by the CLI golden test must stay in
    // sync with the builder-constructed running example.
    let source =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig2.appl"))
            .expect("fixture exists");
    let from_file = parse_program(&source).expect("fixture parses");
    let from_builder = suite::running::rdwalk_program();
    assert_eq!(from_file.to_string(), from_builder.to_string());
}
