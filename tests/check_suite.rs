//! Every shipped program — the benchmark suite and the `examples/`
//! directory (minus the deliberately defective `examples/lints/`
//! fixtures) — must pass the static checks without a single diagnostic.
//!
//! This is the `--deny warnings` bar: a new benchmark or example that
//! trips a lint fails here before it ever reaches a user.

use std::path::PathBuf;

use central_moment_analysis::check::{check_program, check_source};
use central_moment_analysis::{suite, CheckConfig};

#[test]
fn every_suite_benchmark_is_check_clean() {
    let mut dirty = Vec::new();
    for b in suite::all_benchmarks() {
        // A benchmark's valuation names the symbolic parameters callers
        // initialize; the checker must not flag reads of them.
        let config = CheckConfig {
            nonneg_cost: false,
            assume_init: b.valuation.iter().map(|(v, _)| v.clone()).collect(),
        };
        let report = check_program(&b.program, &config);
        if !report.is_clean() {
            dirty.push(format!("{}:\n{report}", b.qualified_name()));
        }
    }
    assert!(
        dirty.is_empty(),
        "{} benchmark(s) tripped the static checks:\n{}",
        dirty.len(),
        dirty.join("\n")
    );
}

#[test]
fn every_shipped_example_is_check_clean() {
    let examples = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut checked = 0;
    for entry in std::fs::read_dir(&examples).unwrap() {
        let path = entry.unwrap().path();
        // `examples/lints/` is the negative corpus — skipped by design.
        if path.extension().and_then(|e| e.to_str()) != Some("appl") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let report = check_source(&source, &CheckConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(report.is_clean(), "{}:\n{report}", path.display());
        checked += 1;
    }
    assert!(checked >= 2, "expected to sweep the shipped examples");
}
