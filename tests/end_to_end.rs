//! Cross-crate integration tests: every analytic bound is checked against the
//! Monte-Carlo semantics, and the whole `Analysis` pipeline (parse → analyze →
//! central moments → tail bounds → soundness) is exercised end to end.

use central_moment_analysis::sim::{simulate, SimConfig};
use central_moment_analysis::suite::{self, Benchmark};
use central_moment_analysis::{Analysis, CmaError};

/// Analyzes a benchmark through the pipeline facade and checks every derived
/// bound against simulation.  Returns `false` when the analysis itself fails
/// (some loop-heavy benchmarks exceed what the linear certificates can
/// express — the callers require a minimum success count rather than
/// perfection).
fn check_bounds_against_simulation(benchmark: &Benchmark, degree: usize) -> bool {
    let outcome = Analysis::benchmark(benchmark)
        .degree(degree)
        .soundness(false)
        .run();
    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            assert!(
                e.is_analysis_failure(),
                "{}: unexpected failure class: {e}",
                benchmark.name
            );
            eprintln!("note: {} not analyzable at degree {degree}", benchmark.name);
            return false;
        }
    };
    let stats = simulate(
        &benchmark.program,
        &SimConfig {
            trials: 20_000,
            seed: 7,
            initial: benchmark.initial_state(),
            ..Default::default()
        },
    );
    // Tolerances account for Monte-Carlo noise (higher moments are noisier).
    for k in 1..=degree.min(2) {
        let simulated = stats.raw_moment(k as u32);
        let tolerance = 0.02 * simulated.abs() + 0.5;
        assert!(
            simulated <= report.raw_moment(k).hi() + tolerance,
            "{}: E[C^{k}] = {simulated} exceeds derived upper bound {}",
            benchmark.name,
            report.raw_moment(k).hi()
        );
        assert!(
            simulated >= report.raw_moment(k).lo() - tolerance,
            "{}: E[C^{k}] = {simulated} is below derived lower bound {}",
            benchmark.name,
            report.raw_moment(k).lo()
        );
    }
    true
}

#[test]
fn running_example_bounds_are_sound_and_tight() {
    let b = suite::running::rdwalk();
    assert!(check_bounds_against_simulation(&b, 2));
    // Tightness: the first-moment upper bound at d = 10 matches the paper.
    let report = Analysis::benchmark(&b).soundness(false).run().unwrap();
    assert!(report.mean().hi() <= 24.0 + 1e-3);
}

#[test]
fn kura_suite_first_and_second_moments_are_sound() {
    let suite = [
        suite::kura::coupon_two(),
        suite::kura::coupon_four(),
        suite::kura::random_walk_int(),
        suite::kura::random_walk_real(),
    ];
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 2))
        .count();
    assert!(
        analyzed >= 3,
        "only {analyzed} of {} benchmarks analyzable",
        suite.len()
    );
}

#[test]
fn absynth_suite_expected_costs_are_sound() {
    let suite = suite::absynth_suite();
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 1))
        .count();
    assert!(
        analyzed * 10 >= suite.len() * 7,
        "only {analyzed} of {} Absynth benchmarks analyzable",
        suite.len()
    );
}

#[test]
fn nonmonotone_suite_interval_bounds_are_sound() {
    let suite = suite::nonmonotone_suite();
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 1))
        .count();
    assert!(
        analyzed >= suite.len() - 2,
        "only {analyzed} of {} non-monotone benchmarks analyzable",
        suite.len()
    );
}

#[test]
fn central_moment_tail_bounds_dominate_empirical_tails() {
    let b = suite::kura::coupon_four();
    let stats = simulate(
        &b.program,
        &SimConfig {
            trials: 30_000,
            seed: 11,
            initial: b.initial_state(),
            ..Default::default()
        },
    );
    let thresholds: Vec<f64> = [2.0, 3.0, 5.0]
        .iter()
        .map(|factor| stats.mean() * factor)
        .collect();
    let report = Analysis::benchmark(&b)
        .degree(2)
        .soundness(false)
        .tail_at(thresholds.iter().copied())
        .run()
        .unwrap();
    for tail in &report.tail {
        assert!(
            stats.tail_probability(tail.threshold) <= tail.probability + 0.01,
            "empirical tail at {} exceeds derived bound {}",
            tail.threshold,
            tail.probability
        );
    }
}

#[test]
fn parsed_programs_flow_through_the_whole_pipeline() {
    let source = r#"
        pre n >= 0
        func main() begin
          while n > 0 do
            if prob(0.5) then n := n - 1 fi;
            tick(1)
          od
        end
        "#;
    let program = central_moment_analysis::parse_program(source).unwrap();
    let report = Analysis::of(&program).degree(2).at("n", 8.0).run().unwrap();
    // True expectation is 2n = 16.
    let e1 = report.raw_moment(1);
    assert!(e1.hi() >= 16.0 - 1e-6);
    assert!(e1.hi() <= 18.5);
    // The full pipeline ran soundness checks and recorded phase timings.
    assert!(report.soundness.is_some());
    assert!(report.timings.soundness.is_some());
    let stats = simulate(
        &program,
        &SimConfig {
            trials: 20_000,
            seed: 3,
            initial: vec![(central_moment_analysis::Var::new("n"), 8.0)],
            ..Default::default()
        },
    );
    assert!(stats.mean() <= e1.hi() + 0.3);
}

#[test]
fn soundness_checks_run_on_suite_programs() {
    use central_moment_analysis::inference::check_bounded_update;
    for b in suite::kura_suite() {
        assert!(
            check_bounded_update(&b.program).is_empty(),
            "{} should have bounded updates",
            b.name
        );
    }
}

#[test]
fn engine_entry_point_agrees_with_the_facade() {
    // The engine-level `analyze_with` (which replaced the retired
    // `analyze()` shim) must produce the same bounds as the pipeline, so
    // low-level callers and facade users never diverge.
    fn direct(b: &Benchmark) -> central_moment_analysis::Interval {
        use central_moment_analysis::inference::{analyze_with, AnalysisOptions};
        use central_moment_analysis::SimplexBackend;
        let options = AnalysisOptions::degree(2).with_valuation(b.valuation.clone());
        analyze_with(&b.program, &options, &SimplexBackend)
            .unwrap()
            .raw_moment_at(1, &b.valuation)
    }
    let b = suite::running::rdwalk();
    let report = Analysis::benchmark(&b).soundness(false).run().unwrap();
    let old = direct(&b);
    let new = report.raw_moment(1);
    assert!((old.hi() - new.hi()).abs() < 1e-9);
    assert!((old.lo() - new.lo()).abs() < 1e-9);
}

#[test]
fn analysis_failures_carry_context() {
    // An unanalyzable program (unbounded multiplicative growth) surfaces as a
    // unified CmaError with the analysis failure as root cause.
    let result = Analysis::parse("func main() begin while x > 0 do x := 2 * x; tick(1) od end")
        .unwrap()
        .degree(1)
        .run();
    match result {
        Err(e @ CmaError::Analysis(_)) => assert!(e.is_analysis_failure()),
        Err(other) => panic!("unexpected error class: {other}"),
        Ok(report) => {
            // If the LP happens to find a bound, it must at least be infinite
            // or the soundness check must flag the unbounded update.
            let sound = report.soundness.expect("soundness checks enabled");
            assert!(!sound.bounded_updates);
        }
    }
}
