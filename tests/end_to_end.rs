//! Cross-crate integration tests: every analytic bound is checked against the
//! Monte-Carlo semantics, and the whole pipeline (parse → analyze → central
//! moments → tail bounds) is exercised end to end.

use central_moment_analysis::appl::parse_program;
use central_moment_analysis::inference::{analyze, AnalysisOptions, CentralMoments};
use central_moment_analysis::sim::{simulate, SimConfig};
use central_moment_analysis::suite::{self, Benchmark};

/// Analyzes a benchmark and checks every derived bound against simulation.
/// Returns `false` when the analysis itself fails (some loop-heavy benchmarks
/// exceed what the linear certificates can express — the callers require a
/// minimum success count rather than perfection).
fn check_bounds_against_simulation(benchmark: &Benchmark, degree: usize) -> bool {
    let options = AnalysisOptions::degree(degree).with_valuation(benchmark.valuation.clone());
    let Ok(result) = analyze(&benchmark.program, &options) else {
        eprintln!("note: {} not analyzable at degree {degree}", benchmark.name);
        return false;
    };
    let intervals = result.raw_intervals_at(&benchmark.valuation);
    let stats = simulate(
        &benchmark.program,
        &SimConfig {
            trials: 20_000,
            seed: 7,
            initial: benchmark.initial_state(),
            ..Default::default()
        },
    );
    // Tolerances account for Monte-Carlo noise (higher moments are noisier).
    for k in 1..=degree.min(2) {
        let simulated = stats.raw_moment(k as u32);
        let tolerance = 0.02 * simulated.abs() + 0.5;
        assert!(
            simulated <= intervals[k].hi() + tolerance,
            "{}: E[C^{k}] = {simulated} exceeds derived upper bound {}",
            benchmark.name,
            intervals[k].hi()
        );
        assert!(
            simulated >= intervals[k].lo() - tolerance,
            "{}: E[C^{k}] = {simulated} is below derived lower bound {}",
            benchmark.name,
            intervals[k].lo()
        );
    }
    true
}

#[test]
fn running_example_bounds_are_sound_and_tight() {
    let b = suite::running::rdwalk();
    assert!(check_bounds_against_simulation(&b, 2));
    // Tightness: the first-moment upper bound at d = 10 matches the paper.
    let options = AnalysisOptions::degree(2).with_valuation(b.valuation.clone());
    let result = analyze(&b.program, &options).unwrap();
    let e1 = result.raw_moment_at(1, &b.valuation);
    assert!(e1.hi() <= 24.0 + 1e-3);
}

#[test]
fn kura_suite_first_and_second_moments_are_sound() {
    let suite = [
        suite::kura::coupon_two(),
        suite::kura::coupon_four(),
        suite::kura::random_walk_int(),
        suite::kura::random_walk_real(),
    ];
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 2))
        .count();
    assert!(analyzed >= 3, "only {analyzed} of {} benchmarks analyzable", suite.len());
}

#[test]
fn absynth_suite_expected_costs_are_sound() {
    let suite = suite::absynth_suite();
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 1))
        .count();
    assert!(
        analyzed * 10 >= suite.len() * 7,
        "only {analyzed} of {} Absynth benchmarks analyzable",
        suite.len()
    );
}

#[test]
fn nonmonotone_suite_interval_bounds_are_sound() {
    let suite = suite::nonmonotone_suite();
    let analyzed = suite
        .iter()
        .filter(|b| check_bounds_against_simulation(b, 1))
        .count();
    assert!(
        analyzed >= suite.len() - 2,
        "only {analyzed} of {} non-monotone benchmarks analyzable",
        suite.len()
    );
}

#[test]
fn central_moment_tail_bounds_dominate_empirical_tails() {
    let b = suite::kura::coupon_four();
    let options = AnalysisOptions::degree(2).with_valuation(b.valuation.clone());
    let result = analyze(&b.program, &options).unwrap();
    let central = CentralMoments::from_raw_intervals(&result.raw_intervals_at(&b.valuation));
    let stats = simulate(
        &b.program,
        &SimConfig {
            trials: 30_000,
            seed: 11,
            initial: b.initial_state(),
            ..Default::default()
        },
    );
    for factor in [2.0, 3.0, 5.0] {
        let d = stats.mean() * factor;
        let bound = central_moment_analysis::inference::cantelli_upper_tail(
            central.variance_upper(),
            central.mean(),
            d,
        );
        assert!(
            stats.tail_probability(d) <= bound + 0.01,
            "empirical tail at {d} exceeds Cantelli bound {bound}"
        );
    }
}

#[test]
fn parsed_programs_flow_through_the_whole_pipeline() {
    let program = parse_program(
        r#"
        pre n >= 0
        func main() begin
          while n > 0 do
            if prob(0.5) then n := n - 1 fi;
            tick(1)
          od
        end
        "#,
    )
    .unwrap();
    let n = central_moment_analysis::appl::Var::new("n");
    let options = AnalysisOptions::degree(2).with_valuation(vec![(n.clone(), 8.0)]);
    let result = analyze(&program, &options).unwrap();
    let at = vec![(n.clone(), 8.0)];
    // True expectation is 2n = 16.
    let e1 = result.raw_moment_at(1, &at);
    assert!(e1.hi() >= 16.0 - 1e-6);
    assert!(e1.hi() <= 18.5);
    let stats = simulate(
        &program,
        &SimConfig {
            trials: 20_000,
            seed: 3,
            initial: vec![(n, 8.0)],
            ..Default::default()
        },
    );
    assert!(stats.mean() <= e1.hi() + 0.3);
}

#[test]
fn soundness_checks_run_on_suite_programs() {
    use central_moment_analysis::inference::check_bounded_update;
    for b in suite::kura_suite() {
        assert!(
            check_bounded_update(&b.program).is_empty(),
            "{} should have bounded updates",
            b.name
        );
    }
}
