//! Dense-vs-sparse agreement over the entire benchmark suite: for every
//! benchmark of the paper's evaluation, the [`SparseBackend`] must reach the
//! same verdict as the dense reference — same analyzability, and bounds that
//! agree within numerical tolerance.  This is the end-to-end counterpart of
//! the random-LP property test in `crates/lp/tests/dense_sparse_agreement.rs`.

use central_moment_analysis::{suite, Analysis, SimplexBackend, SparseBackend};

/// Relative tolerance for bound agreement: both solvers are f64 simplex
/// variants with different pivot orders, so optima can differ in the last
/// few digits on ill-conditioned instances.
const REL_TOL: f64 = 1e-4;

fn close(a: f64, b: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return a == b || (a.is_nan() && b.is_nan());
    }
    (a - b).abs() <= REL_TOL * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn sparse_backend_agrees_with_dense_on_every_suite_benchmark() {
    let mut analyzed = 0usize;
    let mut skipped = Vec::new();
    for benchmark in suite::all_benchmarks() {
        let id = benchmark.qualified_name();
        let dense = Analysis::benchmark(&benchmark).soundness(false).run();
        let sparse = Analysis::benchmark(&benchmark)
            .soundness(false)
            .backend(SparseBackend)
            .run();
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                analyzed += 1;
                for k in 0..=benchmark.degree {
                    let (di, si) = (d.raw_moment(k), s.raw_moment(k));
                    assert!(
                        close(di.lo(), si.lo()) && close(di.hi(), si.hi()),
                        "{id}: E[C^{k}] bounds diverged: dense [{}, {}] vs sparse [{}, {}]",
                        di.lo(),
                        di.hi(),
                        si.lo(),
                        si.hi()
                    );
                }
            }
            (Err(_), Err(_)) => skipped.push(id), // both agree: not analyzable
            (Ok(_), Err(e)) => panic!("{id}: dense analyzable but sparse failed: {e}"),
            (Err(e), Ok(_)) => panic!("{id}: sparse analyzable but dense failed: {e}"),
        }
    }
    assert!(
        analyzed >= 15,
        "expected most of the suite to be analyzable, got {analyzed} (skipped: {skipped:?})"
    );
}

/// The one-shot `solve` of both backends also agrees behind `&dyn` — the
/// form the engine actually uses.
#[test]
fn dyn_backends_agree_on_the_running_example() {
    use central_moment_analysis::LpBackend;

    let benchmark = suite::running::rdwalk();
    let backends: [&dyn LpBackend; 2] = [&SimplexBackend, &SparseBackend];
    let bounds: Vec<f64> = backends
        .iter()
        .map(|b| {
            Analysis::benchmark(&benchmark)
                .soundness(false)
                .backend(*b)
                .run()
                .expect("rdwalk is analyzable")
                .mean()
                .hi()
        })
        .collect();
    assert!(
        close(bounds[0], bounds[1]),
        "mean upper bounds diverged: {bounds:?}"
    );
    // Fig. 1(b) at d = 10: E[tick] <= 2d + 4 = 24.
    assert!((bounds[0] - 24.0).abs() < 1e-3);
}
