//! A builder DSL for constructing Appl programs in Rust.
//!
//! The free functions in this module mirror the concrete syntax of the paper
//! (`assign`, `sample`, `tick`, `if_prob`, `while_loop`, …) and compose into
//! [`Stmt`] values; [`ProgramBuilder`] assembles functions, the `main` body,
//! and the global precondition into a validated [`Program`].
//!
//! ```
//! use cma_appl::build::*;
//!
//! // A geometric loop: with probability 1/2 keep ticking.
//! let geo = ProgramBuilder::new()
//!     .function("geo", seq([
//!         assign("x", add(v("x"), cst(1.0))),
//!         if_prob(0.5, seq([tick(1.0), call("geo")]), skip()),
//!     ]))
//!     .main(call("geo"))
//!     .build()
//!     .unwrap();
//! assert!(geo.function("geo").is_some());
//! ```

use cma_semiring::poly::Var;

use crate::ast::{Cond, Expr, Function, Program, ProgramError, Stmt, StmtKind};
use crate::dist::Dist;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A variable expression.
pub fn v(name: &str) -> Expr {
    Expr::Var(Var::new(name))
}

/// A constant expression.
pub fn cst(c: f64) -> Expr {
    Expr::Const(c)
}

/// Addition of two expressions.
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::Add(Box::new(a), Box::new(b))
}

/// Subtraction of two expressions.
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Sub(Box::new(a), Box::new(b))
}

/// Multiplication of two expressions.
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Mul(Box::new(a), Box::new(b))
}

// ---------------------------------------------------------------------------
// Conditions
// ---------------------------------------------------------------------------

/// The condition `a ≤ b`.
pub fn le(a: Expr, b: Expr) -> Cond {
    Cond::Le(Box::new(a), Box::new(b))
}

/// The condition `a < b`.
pub fn lt(a: Expr, b: Expr) -> Cond {
    Cond::Lt(Box::new(a), Box::new(b))
}

/// The condition `a ≥ b`.
pub fn ge(a: Expr, b: Expr) -> Cond {
    Cond::Ge(Box::new(a), Box::new(b))
}

/// The condition `a > b`.
pub fn gt(a: Expr, b: Expr) -> Cond {
    Cond::Gt(Box::new(a), Box::new(b))
}

/// The condition `a = b`.
pub fn eq(a: Expr, b: Expr) -> Cond {
    Cond::Eq(Box::new(a), Box::new(b))
}

/// Conjunction of two conditions.
pub fn and(a: Cond, b: Cond) -> Cond {
    Cond::And(Box::new(a), Box::new(b))
}

/// Negation of a condition.
pub fn not(a: Cond) -> Cond {
    Cond::Not(Box::new(a))
}

/// The condition `true`.
pub fn tt() -> Cond {
    Cond::True
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// The continuous uniform distribution on `[a, b]`.
pub fn uniform(a: f64, b: f64) -> Dist {
    Dist::Uniform(a, b)
}

/// A finite discrete distribution from `(value, probability)` pairs.
pub fn discrete(choices: impl IntoIterator<Item = (f64, f64)>) -> Dist {
    Dist::Discrete(choices.into_iter().collect())
}

/// The uniform distribution over the integers `{a, …, b}`.
pub fn unif_int(a: i64, b: i64) -> Dist {
    Dist::UniformInt(a, b)
}

/// The Bernoulli distribution with success probability `p`.
pub fn bernoulli(p: f64) -> Dist {
    Dist::Bernoulli(p)
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// The no-op statement.
pub fn skip() -> Stmt {
    Stmt::new(StmtKind::Skip)
}

/// The statement `tick(c)`.
pub fn tick(c: f64) -> Stmt {
    Stmt::new(StmtKind::Tick(c))
}

/// The assignment `x := e`.
pub fn assign(x: &str, e: Expr) -> Stmt {
    Stmt::new(StmtKind::Assign(Var::new(x), e))
}

/// The sampling statement `x ~ d`.
pub fn sample(x: &str, d: Dist) -> Stmt {
    Stmt::new(StmtKind::Sample(Var::new(x), d))
}

/// The call statement `call f`.
pub fn call(f: &str) -> Stmt {
    Stmt::new(StmtKind::Call(f.to_string()))
}

/// The conditional `if c then s1 else s2 fi`.
pub fn if_then_else(c: Cond, s1: Stmt, s2: Stmt) -> Stmt {
    Stmt::new(StmtKind::If(c, Box::new(s1), Box::new(s2)))
}

/// The one-armed conditional `if c then s fi`.
pub fn if_then(c: Cond, s: Stmt) -> Stmt {
    if_then_else(c, s, skip())
}

/// The probabilistic branch `if prob(p) then s1 else s2 fi`.
pub fn if_prob(p: f64, s1: Stmt, s2: Stmt) -> Stmt {
    Stmt::new(StmtKind::IfProb(p, Box::new(s1), Box::new(s2)))
}

/// The loop `while c do s od`.
pub fn while_loop(c: Cond, s: Stmt) -> Stmt {
    Stmt::new(StmtKind::While(c, Box::new(s)))
}

/// Sequential composition of statements.
pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
    Stmt::new(StmtKind::Seq(stmts.into_iter().collect()))
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

/// Incremental builder for [`Program`] values.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    main: Option<Stmt>,
    precondition: Vec<Cond>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a function with the given body.
    pub fn function(mut self, name: &str, body: Stmt) -> Self {
        self.functions.push(Function::new(name, body));
        self
    }

    /// Declares a function with a body and an entry precondition.
    pub fn function_with_precondition(
        mut self,
        name: &str,
        body: Stmt,
        preconditions: impl IntoIterator<Item = Cond>,
    ) -> Self {
        let mut f = Function::new(name, body);
        for c in preconditions {
            f.add_precondition(c);
        }
        self.functions.push(f);
        self
    }

    /// Sets the body of `main`.
    pub fn main(mut self, body: Stmt) -> Self {
        self.main = Some(body);
        self
    }

    /// Adds a fact to the global precondition (assumed on entry of `main`).
    pub fn precondition(mut self, cond: Cond) -> Self {
        self.precondition.push(cond);
        self
    }

    /// Assembles and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program fails validation (unknown
    /// calls, invalid probabilities or distributions, duplicate functions).
    pub fn build(self) -> Result<Program, ProgramError> {
        Program::new(
            self.functions,
            self.main.unwrap_or_else(skip),
            self.precondition,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_the_fig2_random_walk() {
        let program = ProgramBuilder::new()
            .function_with_precondition(
                "rdwalk",
                if_then(
                    lt(v("x"), v("d")),
                    seq([
                        sample("t", uniform(-1.0, 2.0)),
                        assign("x", add(v("x"), v("t"))),
                        call("rdwalk"),
                        tick(1.0),
                    ]),
                ),
                [lt(v("x"), add(v("d"), cst(2.0)))],
            )
            .main(seq([assign("x", cst(0.0)), call("rdwalk")]))
            .precondition(gt(v("d"), cst(0.0)))
            .build()
            .unwrap();
        assert_eq!(program.functions().count(), 1);
        let f = program.function("rdwalk").unwrap();
        assert_eq!(f.precondition().len(), 1);
        assert!(program.vars().len() >= 3);
    }

    #[test]
    fn expression_helpers_compose() {
        let e = mul(add(v("a"), cst(1.0)), sub(v("b"), cst(2.0)));
        let val = |var: &Var| if var.name() == "a" { 3.0 } else { 5.0 };
        assert_eq!(e.eval(&val), 4.0 * 3.0);
    }

    #[test]
    fn condition_helpers_compose() {
        let c = and(le(v("x"), cst(1.0)), not(gt(v("y"), cst(0.0))));
        let val = |var: &Var| if var.name() == "x" { 0.5 } else { -1.0 };
        assert!(c.eval(&val));
        assert!(tt().eval(&val));
        assert!(eq(cst(2.0), cst(2.0)).eval(&val));
    }

    #[test]
    fn builder_default_main_is_skip() {
        let p = ProgramBuilder::new().build().unwrap();
        assert_eq!(p.main(), &skip());
    }

    #[test]
    fn distribution_helpers() {
        assert!(discrete([(0.0, 0.5), (1.0, 0.5)]).validate().is_ok());
        assert!(unif_int(1, 6).validate().is_ok());
        assert!(bernoulli(0.5).validate().is_ok());
    }
}
