//! Primitive probability distributions.
//!
//! Each distribution exposes exactly what the analysis needs:
//!
//! * **raw moments** `E[x^k]` (the `Q-Sample` rule replaces `x^k` by its
//!   moment, §3.3);
//! * **support bounds** (used to extend the logical context after sampling and
//!   for the bounded-update soundness check, §4.3);
//! * an **inverse-transform sampler** driven by an external uniform `[0,1)`
//!   value, so the Monte-Carlo interpreter can sample without this crate
//!   depending on a random-number generator.

/// A primitive distribution `D` in a sampling statement `x ~ D`.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Continuous uniform distribution on `[a, b]`.
    Uniform(f64, f64),
    /// A finite discrete distribution: a list of `(value, probability)` pairs.
    ///
    /// Probabilities must be nonnegative and sum to 1 (up to rounding).
    Discrete(Vec<(f64, f64)>),
    /// Uniform distribution over the integers `{a, a+1, …, b}`.
    UniformInt(i64, i64),
    /// Bernoulli distribution on `{0, 1}` with success probability `p`.
    Bernoulli(f64),
}

impl Dist {
    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Dist::Uniform(a, b) => {
                if a >= b {
                    Err(format!("uniform({a}, {b}) requires a < b"))
                } else {
                    Ok(())
                }
            }
            Dist::Discrete(choices) => {
                if choices.is_empty() {
                    return Err("discrete distribution needs at least one outcome".to_string());
                }
                if choices.iter().any(|(_, p)| *p < 0.0) {
                    return Err("discrete distribution has a negative probability".to_string());
                }
                let total: f64 = choices.iter().map(|(_, p)| p).sum();
                if (total - 1.0).abs() > 1e-9 {
                    return Err(format!("discrete probabilities sum to {total}, expected 1"));
                }
                Ok(())
            }
            Dist::UniformInt(a, b) => {
                if a > b {
                    Err(format!("unif_int({a}, {b}) requires a <= b"))
                } else {
                    Ok(())
                }
            }
            Dist::Bernoulli(p) => {
                if (0.0..=1.0).contains(p) {
                    Ok(())
                } else {
                    Err(format!("bernoulli({p}) requires p in [0, 1]"))
                }
            }
        }
    }

    /// The exact raw moment `E[x^k]` of the distribution.
    pub fn raw_moment(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        match self {
            Dist::Uniform(a, b) => {
                // E[x^k] = (b^{k+1} - a^{k+1}) / ((k+1)(b-a))
                let kp1 = (k + 1) as f64;
                (b.powi(k as i32 + 1) - a.powi(k as i32 + 1)) / (kp1 * (b - a))
            }
            Dist::Discrete(choices) => choices.iter().map(|(v, p)| p * v.powi(k as i32)).sum(),
            Dist::UniformInt(a, b) => {
                let n = (b - a + 1) as f64;
                (*a..=*b).map(|v| (v as f64).powi(k as i32)).sum::<f64>() / n
            }
            Dist::Bernoulli(p) => *p,
        }
    }

    /// The expectation `E[x]`.
    pub fn mean(&self) -> f64 {
        self.raw_moment(1)
    }

    /// The variance `V[x]`.
    pub fn variance(&self) -> f64 {
        self.raw_moment(2) - self.mean().powi(2)
    }

    /// Bounds `[lo, hi]` of the support.
    pub fn support(&self) -> (f64, f64) {
        match self {
            Dist::Uniform(a, b) => (*a, *b),
            Dist::Discrete(choices) => {
                let lo = choices
                    .iter()
                    .map(|(v, _)| *v)
                    .fold(f64::INFINITY, f64::min);
                let hi = choices
                    .iter()
                    .map(|(v, _)| *v)
                    .fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            }
            Dist::UniformInt(a, b) => (*a as f64, *b as f64),
            Dist::Bernoulli(_) => (0.0, 1.0),
        }
    }

    /// The maximum absolute value the sample can take — used by the
    /// bounded-update check (§4.3).
    pub fn max_abs(&self) -> f64 {
        let (lo, hi) = self.support();
        lo.abs().max(hi.abs())
    }

    /// Draws a sample by inverse-transform sampling from a uniform value
    /// `u ∈ [0, 1)`.
    pub fn sample_with(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        match self {
            Dist::Uniform(a, b) => a + u * (b - a),
            Dist::Discrete(choices) => {
                let mut acc = 0.0;
                for (v, p) in choices {
                    acc += p;
                    if u < acc {
                        return *v;
                    }
                }
                choices.last().map(|(v, _)| *v).unwrap_or(0.0)
            }
            Dist::UniformInt(a, b) => {
                let n = (b - a + 1) as f64;
                let idx = (u * n).floor() as i64;
                (a + idx.min(b - a)) as f64
            }
            Dist::Bernoulli(p) => {
                if u < *p {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dist::Uniform(a, b) => write!(f, "uniform({a}, {b})"),
            Dist::Discrete(choices) => {
                write!(f, "discrete(")?;
                for (i, (v, p)) in choices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}: {p}")?;
                }
                write!(f, ")")
            }
            Dist::UniformInt(a, b) => write!(f, "unif_int({a}, {b})"),
            Dist::Bernoulli(p) => write!(f, "bernoulli({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_moments_match_paper_example() {
        // §3.3: for D = uniform(-1, 2): E[x⁰]=1, E[x¹]=1/2, E[x²]=1, E[x³]=5/4.
        let d = Dist::Uniform(-1.0, 2.0);
        assert!((d.raw_moment(0) - 1.0).abs() < 1e-12);
        assert!((d.raw_moment(1) - 0.5).abs() < 1e-12);
        assert!((d.raw_moment(2) - 1.0).abs() < 1e-12);
        assert!((d.raw_moment(3) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn discrete_moments() {
        let d = Dist::Discrete(vec![(0.0, 0.25), (2.0, 0.75)]);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((d.raw_moment(2) - 3.0).abs() < 1e-12);
        assert!((d.variance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_int_and_bernoulli_moments() {
        let d = Dist::UniformInt(1, 3);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.raw_moment(2) - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        let b = Dist::Bernoulli(0.3);
        assert!((b.mean() - 0.3).abs() < 1e-12);
        assert!((b.raw_moment(5) - 0.3).abs() < 1e-12);
        assert!((b.variance() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn support_and_max_abs() {
        assert_eq!(Dist::Uniform(-1.0, 2.0).support(), (-1.0, 2.0));
        assert_eq!(Dist::Uniform(-3.0, 2.0).max_abs(), 3.0);
        assert_eq!(
            Dist::Discrete(vec![(5.0, 0.5), (-2.0, 0.5)]).support(),
            (-2.0, 5.0)
        );
        assert_eq!(Dist::UniformInt(-4, 4).max_abs(), 4.0);
        assert_eq!(Dist::Bernoulli(0.5).support(), (0.0, 1.0));
    }

    #[test]
    fn validation() {
        assert!(Dist::Uniform(0.0, 1.0).validate().is_ok());
        assert!(Dist::Uniform(1.0, 1.0).validate().is_err());
        assert!(Dist::Discrete(vec![]).validate().is_err());
        assert!(Dist::Discrete(vec![(1.0, 0.4), (2.0, 0.6)])
            .validate()
            .is_ok());
        assert!(Dist::Discrete(vec![(1.0, 0.4), (2.0, 0.4)])
            .validate()
            .is_err());
        assert!(Dist::Discrete(vec![(1.0, -0.5), (2.0, 1.5)])
            .validate()
            .is_err());
        assert!(Dist::UniformInt(3, 2).validate().is_err());
        assert!(Dist::Bernoulli(1.2).validate().is_err());
    }

    #[test]
    fn sampling_respects_support() {
        let dists = [
            Dist::Uniform(-1.0, 2.0),
            Dist::Discrete(vec![(1.0, 0.5), (4.0, 0.5)]),
            Dist::UniformInt(0, 3),
            Dist::Bernoulli(0.25),
        ];
        for d in &dists {
            let (lo, hi) = d.support();
            for i in 0..100 {
                let u = i as f64 / 100.0;
                let s = d.sample_with(u);
                assert!(
                    s >= lo - 1e-9 && s <= hi + 1e-9,
                    "{d}: sample {s} outside [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dist::Uniform(-1.0, 2.0).to_string(), "uniform(-1, 2)");
        assert!(Dist::Discrete(vec![(1.0, 1.0)])
            .to_string()
            .contains("discrete"));
        assert_eq!(Dist::UniformInt(0, 5).to_string(), "unif_int(0, 5)");
        assert_eq!(Dist::Bernoulli(0.5).to_string(), "bernoulli(0.5)");
    }

    proptest! {
        #[test]
        fn prop_uniform_sample_mean_close(a in -5.0f64..0.0, w in 0.5f64..5.0) {
            let d = Dist::Uniform(a, a + w);
            let n = 2000;
            let mean: f64 = (0..n).map(|i| d.sample_with((i as f64 + 0.5) / n as f64)).sum::<f64>() / n as f64;
            prop_assert!((mean - d.mean()).abs() < 0.05 * w);
        }

        #[test]
        fn prop_moments_of_uniform_bounded_by_support(a in -3.0f64..0.0, w in 0.5f64..4.0, k in 1u32..5) {
            let d = Dist::Uniform(a, a + w);
            let m = d.raw_moment(k);
            let bound = d.max_abs().powi(k as i32);
            prop_assert!(m.abs() <= bound + 1e-9);
        }

        #[test]
        fn prop_discrete_sampler_frequencies(p in 0.05f64..0.95) {
            let d = Dist::Bernoulli(p);
            let n = 1000usize;
            let ones = (0..n).filter(|&i| d.sample_with((i as f64 + 0.5) / n as f64) == 1.0).count();
            prop_assert!(((ones as f64 / n as f64) - p).abs() < 0.02);
        }
    }
}
