//! Abstract syntax of Appl (Fig. 5 of the paper).
//!
//! Statements `S`, conditions `L`, and expressions `E` follow the grammar
//!
//! ```text
//! S ::= skip | tick(c) | x := E | x ~ D | call f | while L do S od
//!     | if prob(p) then S1 else S2 fi | if L then S1 else S2 fi | S1; S2
//! L ::= true | not L | L1 and L2 | E1 <= E2
//! E ::= x | c | E1 + E2 | E1 * E2
//! ```
//!
//! with a handful of conveniences (subtraction, strict/flipped comparisons)
//! that are pure syntactic sugar over the paper's grammar.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cma_semiring::poly::{Polynomial, Var};

use crate::dist::Dist;
use crate::span::Span;

/// Arithmetic expressions over program variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A program variable.
    Var(Var),
    /// A real constant.
    Const(f64),
    /// Addition `E1 + E2`.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction `E1 - E2` (sugar for `E1 + (-1)·E2`).
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication `E1 × E2`.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Converts the expression into a polynomial over program variables.
    pub fn to_polynomial(&self) -> Polynomial {
        match self {
            Expr::Var(v) => Polynomial::var(v.clone()),
            Expr::Const(c) => Polynomial::constant(*c),
            Expr::Add(a, b) => a.to_polynomial().add(&b.to_polynomial()),
            Expr::Sub(a, b) => a.to_polynomial().sub(&b.to_polynomial()),
            Expr::Mul(a, b) => a.to_polynomial().mul(&b.to_polynomial()),
        }
    }

    /// Variables mentioned in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set
    }

    fn collect_vars(&self, set: &mut BTreeSet<Var>) {
        match self {
            Expr::Var(v) => {
                set.insert(v.clone());
            }
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(set);
                b.collect_vars(set);
            }
        }
    }

    /// Evaluates the expression under a valuation.
    pub fn eval(&self, valuation: &dyn Fn(&Var) -> f64) -> f64 {
        match self {
            Expr::Var(v) => valuation(v),
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(valuation) + b.eval(valuation),
            Expr::Sub(a, b) => a.eval(valuation) - b.eval(valuation),
            Expr::Mul(a, b) => a.eval(valuation) * b.eval(valuation),
        }
    }

    /// Whether the expression is linear (degree ≤ 1) in the program variables.
    pub fn is_linear(&self) -> bool {
        self.to_polynomial().degree() <= 1
    }
}

/// Boolean conditions over program variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// The constant `true`.
    True,
    /// Negation `not L`.
    Not(Box<Cond>),
    /// Conjunction `L1 and L2`.
    And(Box<Cond>, Box<Cond>),
    /// Comparison `E1 ≤ E2`.
    Le(Box<Expr>, Box<Expr>),
    /// Comparison `E1 < E2` (sugar; treated as `≤` for logical contexts).
    Lt(Box<Expr>, Box<Expr>),
    /// Comparison `E1 ≥ E2` (sugar for `E2 ≤ E1`).
    Ge(Box<Expr>, Box<Expr>),
    /// Comparison `E1 > E2` (sugar for `E2 < E1`).
    Gt(Box<Expr>, Box<Expr>),
    /// Equality `E1 = E2` (sugar for `E1 ≤ E2 and E2 ≤ E1`).
    Eq(Box<Expr>, Box<Expr>),
}

impl Cond {
    /// Evaluates the condition under a valuation.
    pub fn eval(&self, valuation: &dyn Fn(&Var) -> f64) -> bool {
        match self {
            Cond::True => true,
            Cond::Not(c) => !c.eval(valuation),
            Cond::And(a, b) => a.eval(valuation) && b.eval(valuation),
            Cond::Le(a, b) => a.eval(valuation) <= b.eval(valuation),
            Cond::Lt(a, b) => a.eval(valuation) < b.eval(valuation),
            Cond::Ge(a, b) => a.eval(valuation) >= b.eval(valuation),
            Cond::Gt(a, b) => a.eval(valuation) > b.eval(valuation),
            Cond::Eq(a, b) => (a.eval(valuation) - b.eval(valuation)).abs() == 0.0,
        }
    }

    /// Variables mentioned in the condition.
    pub fn vars(&self) -> BTreeSet<Var> {
        match self {
            Cond::True => BTreeSet::new(),
            Cond::Not(c) => c.vars(),
            Cond::And(a, b) => {
                let mut s = a.vars();
                s.extend(b.vars());
                s
            }
            Cond::Le(a, b) | Cond::Lt(a, b) | Cond::Ge(a, b) | Cond::Gt(a, b) | Cond::Eq(a, b) => {
                let mut s = a.vars();
                s.extend(b.vars());
                s
            }
        }
    }

    /// The logical negation, pushed through the structure where easy.
    pub fn negate(&self) -> Cond {
        match self {
            Cond::Not(c) => (**c).clone(),
            Cond::Le(a, b) => Cond::Gt(a.clone(), b.clone()),
            Cond::Lt(a, b) => Cond::Ge(a.clone(), b.clone()),
            Cond::Ge(a, b) => Cond::Lt(a.clone(), b.clone()),
            Cond::Gt(a, b) => Cond::Le(a.clone(), b.clone()),
            other => Cond::Not(Box::new(other.clone())),
        }
    }
}

/// The statement forms of Appl, without position information.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// The no-op statement.
    Skip,
    /// `tick(c)`: add the constant `c` to the anonymous cost accumulator.
    Tick(f64),
    /// Deterministic assignment `x := E`.
    Assign(Var, Expr),
    /// Random-sampling assignment `x ~ D`.
    Sample(Var, Dist),
    /// Call to the function named `f`.
    Call(String),
    /// Conditional branching `if L then S1 else S2 fi`.
    If(Cond, Box<Stmt>, Box<Stmt>),
    /// Probabilistic branching `if prob(p) then S1 else S2 fi`.
    IfProb(f64, Box<Stmt>, Box<Stmt>),
    /// Loop `while L do S od`.
    While(Cond, Box<Stmt>),
    /// Sequential composition of zero or more statements.
    Seq(Vec<Stmt>),
}

/// A statement: a [`StmtKind`] plus the source [`Span`] it was parsed from.
///
/// Equality ignores spans (two programs are the same program regardless of
/// the formatting they were parsed from); builder-constructed statements
/// carry [`Span::DUMMY`].
#[derive(Debug, Clone)]
pub struct Stmt {
    kind: StmtKind,
    span: Span,
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl From<StmtKind> for Stmt {
    fn from(kind: StmtKind) -> Self {
        Stmt::new(kind)
    }
}

impl Stmt {
    /// A statement with no source position ([`Span::DUMMY`]).
    pub fn new(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }

    /// The same statement positioned at `span`.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The statement's form.
    pub fn kind(&self) -> &StmtKind {
        &self.kind
    }

    /// The statement's source span ([`Span::DUMMY`] for synthetic nodes).
    pub fn span(&self) -> Span {
        self.span
    }
    /// Variables assigned or sampled anywhere inside the statement.
    pub fn modified_vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_modified(&mut set);
        set
    }

    fn collect_modified(&self, set: &mut BTreeSet<Var>) {
        match &self.kind {
            StmtKind::Assign(v, _) | StmtKind::Sample(v, _) => {
                set.insert(v.clone());
            }
            StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
                a.collect_modified(set);
                b.collect_modified(set);
            }
            StmtKind::While(_, s) => s.collect_modified(set),
            StmtKind::Seq(ss) => {
                for s in ss {
                    s.collect_modified(set);
                }
            }
            StmtKind::Skip | StmtKind::Tick(_) | StmtKind::Call(_) => {}
        }
    }

    /// All variables mentioned anywhere inside the statement.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set
    }

    fn collect_vars(&self, set: &mut BTreeSet<Var>) {
        match &self.kind {
            StmtKind::Assign(v, e) => {
                set.insert(v.clone());
                set.extend(e.vars());
            }
            StmtKind::Sample(v, _) => {
                set.insert(v.clone());
            }
            StmtKind::If(c, a, b) => {
                set.extend(c.vars());
                a.collect_vars(set);
                b.collect_vars(set);
            }
            StmtKind::IfProb(_, a, b) => {
                a.collect_vars(set);
                b.collect_vars(set);
            }
            StmtKind::While(c, s) => {
                set.extend(c.vars());
                s.collect_vars(set);
            }
            StmtKind::Seq(ss) => {
                for s in ss {
                    s.collect_vars(set);
                }
            }
            StmtKind::Skip | StmtKind::Tick(_) | StmtKind::Call(_) => {}
        }
    }

    /// Names of functions called anywhere inside the statement.
    pub fn called_functions(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.collect_calls(&mut set);
        set
    }

    fn collect_calls(&self, set: &mut BTreeSet<String>) {
        match &self.kind {
            StmtKind::Call(f) => {
                set.insert(f.clone());
            }
            StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
                a.collect_calls(set);
                b.collect_calls(set);
            }
            StmtKind::While(_, s) => s.collect_calls(set),
            StmtKind::Seq(ss) => {
                for s in ss {
                    s.collect_calls(set);
                }
            }
            _ => {}
        }
    }

    /// Number of AST nodes — a proxy for "lines of code" used by the
    /// scalability study.
    pub fn size(&self) -> usize {
        match &self.kind {
            StmtKind::Skip
            | StmtKind::Tick(_)
            | StmtKind::Assign(..)
            | StmtKind::Sample(..)
            | StmtKind::Call(_) => 1,
            StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => 1 + a.size() + b.size(),
            StmtKind::While(_, s) => 1 + s.size(),
            StmtKind::Seq(ss) => ss.iter().map(Stmt::size).sum::<usize>().max(1),
        }
    }
}

/// A function declaration: a body together with an optional precondition that
/// the analysis may assume at every entry of the function.
///
/// In the paper the entry context is recovered by an interprocedural numeric
/// analysis (APRON); here the precondition plays that role and is additionally
/// cross-checked by the Monte-Carlo simulator in the test-suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    body: Stmt,
    precondition: Vec<Cond>,
}

impl Function {
    /// Creates a function with an empty precondition.
    pub fn new(name: impl Into<String>, body: Stmt) -> Self {
        Function {
            name: name.into(),
            body,
            precondition: Vec::new(),
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's body.
    pub fn body(&self) -> &Stmt {
        &self.body
    }

    /// The conjunction of precondition facts.
    pub fn precondition(&self) -> &[Cond] {
        &self.precondition
    }

    /// Adds a precondition fact.
    pub fn add_precondition(&mut self, cond: Cond) {
        self.precondition.push(cond);
    }
}

/// Errors raised while assembling or validating a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramError {
    /// A call targets a function that is not declared.
    UnknownFunction(String),
    /// A probability annotation lies outside `[0, 1]`.
    InvalidProbability(f64),
    /// A distribution parameter is invalid (e.g. `uniform(a, b)` with `a ≥ b`).
    InvalidDistribution(String),
    /// Two functions share the same name.
    DuplicateFunction(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownFunction(name) => {
                write!(f, "call to undeclared function `{name}`")
            }
            ProgramError::InvalidProbability(p) => write!(f, "probability {p} is not in [0, 1]"),
            ProgramError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            ProgramError::DuplicateFunction(name) => write!(f, "function `{name}` declared twice"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete Appl program `⟨𝒟, S_main⟩`: a finite map from function
/// identifiers to bodies plus the body of the `main` function.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    functions: BTreeMap<String, Function>,
    main: Stmt,
    /// Precondition assumed at the start of `main` (e.g. `d > 0` in Fig. 2).
    precondition: Vec<Cond>,
}

impl Program {
    /// Creates a program from its parts, validating call targets,
    /// probabilities, and distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if validation fails.
    pub fn new(
        functions: Vec<Function>,
        main: Stmt,
        precondition: Vec<Cond>,
    ) -> Result<Self, ProgramError> {
        let mut map = BTreeMap::new();
        for f in functions {
            if map.contains_key(f.name()) {
                return Err(ProgramError::DuplicateFunction(f.name().to_string()));
            }
            map.insert(f.name().to_string(), f);
        }
        let program = Program {
            functions: map,
            main,
            precondition,
        };
        program.validate()?;
        Ok(program)
    }

    /// Assembles a program **without** validating call targets,
    /// probabilities, or distribution parameters (duplicate function names
    /// keep the first declaration).
    ///
    /// Only diagnostics tooling should use this: it lets the static checker
    /// inspect malformed programs and report every problem with a source
    /// span.  Unchecked programs must not reach the analysis or simulator.
    pub fn new_unchecked(functions: Vec<Function>, main: Stmt, precondition: Vec<Cond>) -> Self {
        let mut map = BTreeMap::new();
        for f in functions {
            map.entry(f.name().to_string()).or_insert(f);
        }
        Program {
            functions: map,
            main,
            precondition,
        }
    }

    fn validate(&self) -> Result<(), ProgramError> {
        let mut bodies: Vec<&Stmt> = self.functions.values().map(Function::body).collect();
        bodies.push(&self.main);
        for body in bodies {
            for f in body.called_functions() {
                if !self.functions.contains_key(&f) {
                    return Err(ProgramError::UnknownFunction(f));
                }
            }
            Self::validate_stmt(body)?;
        }
        Ok(())
    }

    fn validate_stmt(stmt: &Stmt) -> Result<(), ProgramError> {
        match stmt.kind() {
            StmtKind::IfProb(p, a, b) => {
                if !(0.0..=1.0).contains(p) {
                    return Err(ProgramError::InvalidProbability(*p));
                }
                Self::validate_stmt(a)?;
                Self::validate_stmt(b)
            }
            StmtKind::Sample(_, d) => d.validate().map_err(ProgramError::InvalidDistribution),
            StmtKind::If(_, a, b) => {
                Self::validate_stmt(a)?;
                Self::validate_stmt(b)
            }
            StmtKind::While(_, s) => Self::validate_stmt(s),
            StmtKind::Seq(ss) => {
                for s in ss {
                    Self::validate_stmt(s)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// The body of the `main` function.
    pub fn main(&self) -> &Stmt {
        &self.main
    }

    /// Looks up a declared function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Iterates over all declared functions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.values()
    }

    /// The precondition assumed at the start of `main`.
    pub fn precondition(&self) -> &[Cond] {
        &self.precondition
    }

    /// All program variables mentioned anywhere (the set `XID`).
    pub fn vars(&self) -> Vec<Var> {
        let mut set = self.main.vars();
        for f in self.functions.values() {
            set.extend(f.body().vars());
            for c in f.precondition() {
                set.extend(c.vars());
            }
        }
        for c in &self.precondition {
            set.extend(c.vars());
        }
        set.into_iter().collect()
    }

    /// Total AST size across `main` and all function bodies.
    pub fn size(&self) -> usize {
        self.main.size()
            + self
                .functions
                .values()
                .map(|f| f.body().size())
                .sum::<usize>()
    }

    /// The call graph as an adjacency list: `caller → set of callees`.
    pub fn call_graph(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut graph = BTreeMap::new();
        for (name, f) in &self.functions {
            graph.insert(name.clone(), f.body().called_functions());
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn expr_to_polynomial_and_eval_agree() {
        let e = add(mul(v("x"), v("x")), sub(cst(3.0), v("y")));
        let p = e.to_polynomial();
        let val = |var: &Var| if var.name() == "x" { 2.0 } else { 5.0 };
        assert_eq!(e.eval(&val), p.eval(&val));
        assert_eq!(e.eval(&val), 4.0 + 3.0 - 5.0);
    }

    #[test]
    fn expr_vars_and_linearity() {
        let e = add(mul(v("x"), v("y")), cst(1.0));
        assert_eq!(e.vars().len(), 2);
        assert!(!e.is_linear());
        assert!(add(v("x"), cst(2.0)).is_linear());
    }

    #[test]
    fn cond_negation_flips_comparisons() {
        let c = lt(v("x"), v("d"));
        let n = c.negate();
        assert_eq!(n, ge(v("x"), v("d")));
        assert_eq!(Cond::True.negate(), Cond::Not(Box::new(Cond::True)));
        let val_true = |var: &Var| if var.name() == "x" { 0.0 } else { 1.0 };
        assert!(c.eval(&val_true));
        assert!(!n.eval(&val_true));
    }

    #[test]
    fn stmt_collections() {
        let s = seq([
            assign("x", cst(0.0)),
            while_loop(
                lt(v("x"), v("n")),
                seq([
                    sample("t", uniform(0.0, 1.0)),
                    assign("x", add(v("x"), v("t"))),
                    tick(1.0),
                ]),
            ),
            call("helper"),
        ]);
        let modified = s.modified_vars();
        assert!(modified.contains(&Var::new("x")));
        assert!(modified.contains(&Var::new("t")));
        assert!(!modified.contains(&Var::new("n")));
        assert!(s.vars().contains(&Var::new("n")));
        assert_eq!(s.called_functions().len(), 1);
        assert!(s.size() >= 5);
    }

    #[test]
    fn program_validation_rejects_unknown_call() {
        let err = Program::new(vec![], call("nope"), vec![]).unwrap_err();
        assert_eq!(err, ProgramError::UnknownFunction("nope".into()));
    }

    #[test]
    fn program_validation_rejects_bad_probability() {
        let err = Program::new(vec![], if_prob(1.5, tick(1.0), skip()), vec![]).unwrap_err();
        assert_eq!(err, ProgramError::InvalidProbability(1.5));
    }

    #[test]
    fn program_validation_rejects_bad_distribution() {
        let err = Program::new(vec![], sample("x", uniform(2.0, 1.0)), vec![]).unwrap_err();
        assert!(matches!(err, ProgramError::InvalidDistribution(_)));
    }

    #[test]
    fn program_validation_rejects_duplicate_function() {
        let f1 = Function::new("f", skip());
        let f2 = Function::new("f", tick(1.0));
        let err = Program::new(vec![f1, f2], skip(), vec![]).unwrap_err();
        assert_eq!(err, ProgramError::DuplicateFunction("f".into()));
    }

    #[test]
    fn program_accessors() {
        let program = ProgramBuilder::new()
            .function("f", seq([tick(1.0), call("g")]))
            .function("g", tick(2.0))
            .main(call("f"))
            .precondition(gt(v("d"), cst(0.0)))
            .build()
            .unwrap();
        assert!(program.function("f").is_some());
        assert!(program.function("h").is_none());
        assert_eq!(program.functions().count(), 2);
        assert_eq!(program.precondition().len(), 1);
        assert!(program.vars().contains(&Var::new("d")));
        let graph = program.call_graph();
        assert!(graph["f"].contains("g"));
        assert!(graph["g"].is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::UnknownFunction("foo".into());
        assert!(e.to_string().contains("foo"));
        assert!(ProgramError::InvalidProbability(2.0)
            .to_string()
            .contains('2'));
    }
}
