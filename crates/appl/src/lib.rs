//! Appl — the imperative arithmetic probabilistic programming language of the
//! paper *Central Moment Analysis for Cost Accumulators in Probabilistic
//! Programs* (PLDI 2021, Fig. 5).
//!
//! Appl programs manipulate real-valued global variables with assignments,
//! random sampling, probabilistic and conditional branching, loops, and
//! (possibly recursive) function calls, and accumulate cost into an anonymous
//! global cost accumulator via `tick(c)`.
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax (statements, expressions, conditions) and
//!   the [`ast::Program`]/[`ast::Function`] containers;
//! * [`dist`] — primitive distributions together with exact raw-moment oracles
//!   and support information (needed by the `Q-Sample` rule);
//! * [`build`] — an ergonomic builder DSL for constructing programs in Rust;
//! * [`parse`] — a text parser for the concrete syntax used in the paper's
//!   figures;
//! * [`pretty`] — a pretty printer producing that same concrete syntax.
//!
//! # Example
//!
//! The bounded biased random walk of Fig. 2:
//!
//! ```
//! use cma_appl::build::*;
//!
//! let rdwalk = seq([
//!     if_then(
//!         lt(v("x"), v("d")),
//!         seq([
//!             sample("t", uniform(-1.0, 2.0)),
//!             assign("x", add(v("x"), v("t"))),
//!             call("rdwalk"),
//!             tick(1.0),
//!         ]),
//!     ),
//! ]);
//! let program = ProgramBuilder::new()
//!     .function("rdwalk", rdwalk)
//!     .main(seq([assign("x", cst(0.0)), call("rdwalk")]))
//!     .precondition(gt(v("d"), cst(0.0)))
//!     .build()
//!     .unwrap();
//! assert_eq!(program.functions().count(), 1);
//! ```

pub mod ast;
pub mod build;
pub mod dist;
pub mod facts;
pub mod parse;
pub mod pretty;
pub mod span;

pub use ast::{Cond, Expr, Function, Program, ProgramError, Stmt, StmtKind};
pub use cma_semiring::poly::Var;
pub use dist::Dist;
pub use facts::{BranchFact, RangeFacts};
pub use parse::{parse_program, parse_program_unchecked, ParseError};
pub use span::{LineCol, SourceMap, Span};
