//! A parser for the concrete Appl syntax used in the paper's figures.
//!
//! The grammar (with `#`-to-end-of-line comments allowed anywhere):
//!
//! ```text
//! program ::= item*
//! item    ::= "pre" cond                       (global precondition)
//!           | "func" ident "()" ("pre" cond)* "begin" stmts "end"
//! stmts   ::= stmt (";" stmt)*
//! stmt    ::= "skip" | "tick" "(" num ")" | ident ":=" expr | ident "~" dist
//!           | "call" ident
//!           | "if" "prob" "(" num ")" "then" stmts ["else" stmts] "fi"
//!           | "if" cond "then" stmts ["else" stmts] "fi"
//!           | "while" cond "do" stmts "od"
//! cond    ::= catom ("and" catom)*
//! catom   ::= "true" | "not" catom | "(" cond ")" | expr cmp expr
//! cmp     ::= "<=" | "<" | ">=" | ">" | "=="
//! expr    ::= term (("+" | "-") term)*
//! term    ::= factor ("*" factor)*
//! factor  ::= num | ident | "(" expr ")" | "-" factor
//! dist    ::= "uniform" "(" num "," num ")" | "unif_int" "(" num "," num ")"
//!           | "bernoulli" "(" num ")" | "discrete" "(" num ":" num {"," num ":" num} ")"
//! ```
//!
//! The function named `main` becomes the program's `main` body.  Every parsed
//! statement carries its source [`Span`], and errors are reported as
//! `line:column` with a caret-annotated snippet.

use std::fmt;

use cma_semiring::poly::Var;

use crate::ast::{Cond, Expr, Function, Program, ProgramError, Stmt, StmtKind};
use crate::dist::Dist;
use crate::span::{SourceMap, Span};

/// Errors produced while parsing an Appl program.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    message: String,
    /// Source range where the error was detected.
    span: Span,
    /// 1-based line of `span.start` (0 when no source is available).
    line: usize,
    /// 1-based column of `span.start` (0 when no source is available).
    col: usize,
    /// Caret-annotated source snippet, when the source is available.
    snippet: Option<String>,
}

impl ParseError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            span: Span::new(position, position + 1),
            line: 0,
            col: 0,
            snippet: None,
        }
    }

    fn spanned(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            line: 0,
            col: 0,
            snippet: None,
        }
    }

    /// Resolves the byte span against the source, filling line/column and the
    /// caret snippet.
    fn resolved(mut self, map: &SourceMap) -> Self {
        let at = map.line_col(self.span.start);
        self.line = at.line;
        self.col = at.col;
        self.snippet = Some(map.snippet(self.span));
        self
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source range the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The 1-based line of the error (0 when unresolved).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based column of the error (0 when unresolved).
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at {}:{}: {}",
                self.line, self.col, self.message
            )?;
        } else {
            write!(f, "parse error: {}", self.message)?;
        }
        if let Some(snippet) = &self.snippet {
            write!(f, "\n{snippet}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl From<ProgramError> for ParseError {
    fn from(e: ProgramError) -> Self {
        ParseError::spanned(e.to_string(), Span::DUMMY)
    }
}

/// Keywords that cannot be used as variable or function names.
const RESERVED: &[&str] = &[
    "func", "begin", "end", "if", "then", "else", "fi", "prob", "while", "do", "od", "skip",
    "tick", "call", "pre", "and", "not", "true",
];

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Symbol(&'static str),
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Token, Span)>, ParseError> {
        let mut tokens = Vec::new();
        while self.pos < self.input.len() {
            let c = self.input[self.pos] as char;
            if c.is_whitespace() {
                self.pos += 1;
                continue;
            }
            if c == '#' {
                while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            let start = self.pos;
            if c.is_ascii_alphabetic() || c == '_' {
                while self.pos < self.input.len()
                    && ((self.input[self.pos] as char).is_ascii_alphanumeric()
                        || self.input[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                tokens.push((Token::Ident(word.to_string()), Span::new(start, self.pos)));
                continue;
            }
            if c.is_ascii_digit() || (c == '.' && self.peek_digit(1)) {
                while self.pos < self.input.len()
                    && ((self.input[self.pos] as char).is_ascii_digit()
                        || self.input[self.pos] == b'.'
                        || self.input[self.pos] == b'e'
                        || self.input[self.pos] == b'E'
                        || ((self.input[self.pos] == b'-' || self.input[self.pos] == b'+')
                            && self.pos > start
                            && (self.input[self.pos - 1] == b'e'
                                || self.input[self.pos - 1] == b'E')))
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number `{text}`"), start))?;
                tokens.push((Token::Number(value), Span::new(start, self.pos)));
                continue;
            }
            let two = if self.pos + 1 < self.input.len() {
                &self.input[self.pos..self.pos + 2]
            } else {
                &self.input[self.pos..self.pos + 1]
            };
            let symbol = match two {
                b":=" => Some(":="),
                b"<=" => Some("<="),
                b">=" => Some(">="),
                b"==" => Some("=="),
                _ => None,
            };
            if let Some(s) = symbol {
                tokens.push((Token::Symbol(s), Span::new(start, start + 2)));
                self.pos += 2;
                continue;
            }
            let one = match c {
                '(' => "(",
                ')' => ")",
                ';' => ";",
                ',' => ",",
                ':' => ":",
                '~' => "~",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '<' => "<",
                '>' => ">",
                _ => {
                    return Err(ParseError::new(
                        format!("unexpected character `{c}`"),
                        start,
                    ));
                }
            };
            tokens.push((Token::Symbol(one), Span::new(start, start + 1)));
            self.pos += 1;
        }
        Ok(tokens)
    }

    fn peek_digit(&self, offset: usize) -> bool {
        self.input
            .get(self.pos + offset)
            .is_some_and(|b| (*b as char).is_ascii_digit())
    }
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, s)| s.start)
            .unwrap_or_else(|| self.tokens.last().map(|(_, s)| s.end).unwrap_or(0))
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.tokens
                .get(self.pos - 1)
                .map(|(_, s)| s.end)
                .unwrap_or(0)
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Symbol(sym)) if *sym == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseError::new(
                format!("expected `{s}`, found {other:?}"),
                self.position(),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(word)) if word == kw => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseError::new(
                format!("expected keyword `{kw}`, found {other:?}"),
                self.position(),
            )),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(word)) if word == kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(ParseError::new(
                format!("expected identifier, found {other:?}"),
                self.position(),
            )),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        // Allow a leading minus sign in numeric positions (e.g. uniform(-1, 2)).
        let negative = matches!(self.peek(), Some(Token::Symbol("-")));
        if negative {
            self.pos += 1;
        }
        match self.advance() {
            Some(Token::Number(n)) => Ok(if negative { -n } else { n }),
            other => Err(ParseError::new(
                format!("expected number, found {other:?}"),
                self.position(),
            )),
        }
    }

    // -- programs ---------------------------------------------------------

    fn parse_program(&mut self) -> Result<ProgramParts, ParseError> {
        let mut functions = Vec::new();
        let mut main = None;
        let mut precondition = Vec::new();
        while self.peek().is_some() {
            if self.at_keyword("pre") {
                self.pos += 1;
                precondition.push(self.parse_cond()?);
            } else if self.at_keyword("func") {
                let (name, func_pre, body) = self.parse_function()?;
                if name == "main" {
                    main = Some(body);
                    precondition.extend(func_pre);
                } else {
                    let mut f = Function::new(name, body);
                    for c in func_pre {
                        f.add_precondition(c);
                    }
                    functions.push(f);
                }
            } else {
                return Err(ParseError::new(
                    format!("expected `pre` or `func`, found {:?}", self.peek()),
                    self.position(),
                ));
            }
        }
        Ok(ProgramParts {
            functions,
            main: main.unwrap_or_else(|| Stmt::new(StmtKind::Skip)),
            precondition,
        })
    }

    fn parse_function(&mut self) -> Result<(String, Vec<Cond>, Stmt), ParseError> {
        self.expect_keyword("func")?;
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        self.expect_symbol(")")?;
        let mut preconditions = Vec::new();
        while self.at_keyword("pre") {
            self.pos += 1;
            preconditions.push(self.parse_cond()?);
        }
        self.expect_keyword("begin")?;
        let body = self.parse_stmts()?;
        self.expect_keyword("end")?;
        Ok((name, preconditions, body))
    }

    // -- statements -------------------------------------------------------

    fn parse_stmts(&mut self) -> Result<Stmt, ParseError> {
        let start = self.position();
        let mut stmts = vec![self.parse_stmt()?];
        while matches!(self.peek(), Some(Token::Symbol(";"))) {
            self.pos += 1;
            stmts.push(self.parse_stmt()?);
        }
        Ok(if stmts.len() == 1 {
            stmts.pop().unwrap()
        } else {
            let span = Span::new(start, self.prev_end());
            Stmt::new(StmtKind::Seq(stmts)).with_span(span)
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.position();
        let kind = self.parse_stmt_kind()?;
        let span = Span::new(start, self.prev_end());
        Ok(Stmt::new(kind).with_span(span))
    }

    fn parse_stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        match self.peek() {
            Some(Token::Ident(word)) => match word.as_str() {
                "skip" => {
                    self.pos += 1;
                    Ok(StmtKind::Skip)
                }
                "tick" => {
                    self.pos += 1;
                    self.expect_symbol("(")?;
                    let c = self.expect_number()?;
                    self.expect_symbol(")")?;
                    Ok(StmtKind::Tick(c))
                }
                "call" => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    Ok(StmtKind::Call(name))
                }
                "if" => self.parse_if(),
                "while" => self.parse_while(),
                _ => {
                    let name = self.expect_ident()?;
                    match self.peek() {
                        Some(Token::Symbol(":=")) => {
                            self.pos += 1;
                            let e = self.parse_expr()?;
                            Ok(StmtKind::Assign(Var::new(&name), e))
                        }
                        Some(Token::Symbol("~")) => {
                            self.pos += 1;
                            let d = self.parse_dist()?;
                            Ok(StmtKind::Sample(Var::new(&name), d))
                        }
                        other => Err(ParseError::new(
                            format!("expected `:=` or `~` after `{name}`, found {other:?}"),
                            self.position(),
                        )),
                    }
                }
            },
            other => Err(ParseError::new(
                format!("expected statement, found {other:?}"),
                self.position(),
            )),
        }
    }

    fn parse_if(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_keyword("if")?;
        if self.at_keyword("prob") {
            self.pos += 1;
            self.expect_symbol("(")?;
            let p = self.expect_number()?;
            self.expect_symbol(")")?;
            self.expect_keyword("then")?;
            let s1 = self.parse_stmts()?;
            let s2 = if self.at_keyword("else") {
                self.pos += 1;
                self.parse_stmts()?
            } else {
                Stmt::new(StmtKind::Skip)
            };
            self.expect_keyword("fi")?;
            Ok(StmtKind::IfProb(p, Box::new(s1), Box::new(s2)))
        } else {
            let cond = self.parse_cond()?;
            self.expect_keyword("then")?;
            let s1 = self.parse_stmts()?;
            let s2 = if self.at_keyword("else") {
                self.pos += 1;
                self.parse_stmts()?
            } else {
                Stmt::new(StmtKind::Skip)
            };
            self.expect_keyword("fi")?;
            Ok(StmtKind::If(cond, Box::new(s1), Box::new(s2)))
        }
    }

    fn parse_while(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_keyword("while")?;
        let cond = self.parse_cond()?;
        self.expect_keyword("do")?;
        let body = self.parse_stmts()?;
        self.expect_keyword("od")?;
        Ok(StmtKind::While(cond, Box::new(body)))
    }

    // -- distributions ----------------------------------------------------

    fn parse_dist(&mut self) -> Result<Dist, ParseError> {
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let dist = match name.as_str() {
            "uniform" => {
                let a = self.expect_number()?;
                self.expect_symbol(",")?;
                let b = self.expect_number()?;
                Dist::Uniform(a, b)
            }
            "unif_int" => {
                let a = self.expect_number()?;
                self.expect_symbol(",")?;
                let b = self.expect_number()?;
                Dist::UniformInt(a as i64, b as i64)
            }
            "bernoulli" => Dist::Bernoulli(self.expect_number()?),
            "discrete" => {
                let mut choices = Vec::new();
                loop {
                    let v = self.expect_number()?;
                    self.expect_symbol(":")?;
                    let p = self.expect_number()?;
                    choices.push((v, p));
                    if matches!(self.peek(), Some(Token::Symbol(","))) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Dist::Discrete(choices)
            }
            other => {
                return Err(ParseError::new(
                    format!("unknown distribution `{other}`"),
                    self.position(),
                ));
            }
        };
        self.expect_symbol(")")?;
        Ok(dist)
    }

    // -- conditions -------------------------------------------------------

    fn parse_cond(&mut self) -> Result<Cond, ParseError> {
        let mut cond = self.parse_cond_atom()?;
        while self.at_keyword("and") {
            self.pos += 1;
            let rhs = self.parse_cond_atom()?;
            cond = Cond::And(Box::new(cond), Box::new(rhs));
        }
        Ok(cond)
    }

    fn parse_cond_atom(&mut self) -> Result<Cond, ParseError> {
        if self.at_keyword("true") {
            self.pos += 1;
            return Ok(Cond::True);
        }
        if self.at_keyword("not") {
            self.pos += 1;
            let inner = self.parse_cond_atom()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        // A parenthesis may open either a nested condition or an arithmetic
        // expression; try the condition first and backtrack on failure.
        if matches!(self.peek(), Some(Token::Symbol("("))) {
            let saved = self.pos;
            self.pos += 1;
            if let Ok(cond) = self.parse_cond() {
                if self.expect_symbol(")").is_ok() {
                    // Only accept if this is not actually the left operand of
                    // a comparison, e.g. `(x + 1) < y`.
                    if !matches!(
                        self.peek(),
                        Some(Token::Symbol("<=" | "<" | ">=" | ">" | "=="))
                    ) {
                        return Ok(cond);
                    }
                }
            }
            self.pos = saved;
        }
        let lhs = self.parse_expr()?;
        let op = match self.peek() {
            Some(Token::Symbol(s @ ("<=" | "<" | ">=" | ">" | "=="))) => *s,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison operator, found {other:?}"),
                    self.position(),
                ));
            }
        };
        self.pos += 1;
        let rhs = self.parse_expr()?;
        Ok(match op {
            "<=" => Cond::Le(Box::new(lhs), Box::new(rhs)),
            "<" => Cond::Lt(Box::new(lhs), Box::new(rhs)),
            ">=" => Cond::Ge(Box::new(lhs), Box::new(rhs)),
            ">" => Cond::Gt(Box::new(lhs), Box::new(rhs)),
            _ => Cond::Eq(Box::new(lhs), Box::new(rhs)),
        })
    }

    // -- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Token::Symbol("+")) => {
                    self.pos += 1;
                    let rhs = self.parse_term()?;
                    expr = Expr::Add(Box::new(expr), Box::new(rhs));
                }
                Some(Token::Symbol("-")) => {
                    self.pos += 1;
                    let rhs = self.parse_term()?;
                    expr = Expr::Sub(Box::new(expr), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_factor()?;
        while matches!(self.peek(), Some(Token::Symbol("*"))) {
            self.pos += 1;
            let rhs = self.parse_factor()?;
            expr = Expr::Mul(Box::new(expr), Box::new(rhs));
        }
        Ok(expr)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Const(n))
            }
            Some(Token::Ident(name)) => {
                if RESERVED.contains(&name.as_str()) {
                    return Err(ParseError::new(
                        format!("reserved keyword `{name}` cannot be used as a variable"),
                        self.position(),
                    ));
                }
                self.pos += 1;
                Ok(Expr::Var(Var::new(&name)))
            }
            Some(Token::Symbol("(")) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol("-")) => {
                self.pos += 1;
                let inner = self.parse_factor()?;
                Ok(match inner {
                    Expr::Const(c) => Expr::Const(-c),
                    other => Expr::Sub(Box::new(Expr::Const(0.0)), Box::new(other)),
                })
            }
            other => Err(ParseError::new(
                format!("expected expression, found {other:?}"),
                self.position(),
            )),
        }
    }
}

/// The raw output of a parse, before program-level validation.
struct ProgramParts {
    functions: Vec<Function>,
    main: Stmt,
    precondition: Vec<Cond>,
}

impl ProgramParts {
    /// Spanned validation of statement-local properties: distribution
    /// parameters, probability annotations, and call targets.  Mirrors
    /// [`Program::new`]'s checks but points at the offending statement.
    fn validate_spanned(&self) -> Result<(), ParseError> {
        let names: std::collections::BTreeSet<&str> =
            self.functions.iter().map(|f| f.name()).collect();
        let mut bodies: Vec<&Stmt> = self.functions.iter().map(|f| f.body()).collect();
        bodies.push(&self.main);
        for body in bodies {
            validate_stmt_spanned(body, &names)?;
        }
        Ok(())
    }
}

fn validate_stmt_spanned(
    stmt: &Stmt,
    functions: &std::collections::BTreeSet<&str>,
) -> Result<(), ParseError> {
    match stmt.kind() {
        StmtKind::Sample(_, d) => d.validate().map_err(|msg| {
            ParseError::spanned(format!("invalid distribution: {msg}"), stmt.span())
        }),
        StmtKind::Call(f) => {
            if functions.contains(f.as_str()) {
                Ok(())
            } else {
                Err(ParseError::spanned(
                    format!("call to undeclared function `{f}`"),
                    stmt.span(),
                ))
            }
        }
        StmtKind::IfProb(p, a, b) => {
            if !(0.0..=1.0).contains(p) {
                return Err(ParseError::spanned(
                    format!("probability {p} is not in [0, 1]"),
                    stmt.span(),
                ));
            }
            validate_stmt_spanned(a, functions)?;
            validate_stmt_spanned(b, functions)
        }
        StmtKind::If(_, a, b) => {
            validate_stmt_spanned(a, functions)?;
            validate_stmt_spanned(b, functions)
        }
        StmtKind::While(_, s) => validate_stmt_spanned(s, functions),
        StmtKind::Seq(ss) => {
            for s in ss {
                validate_stmt_spanned(s, functions)?;
            }
            Ok(())
        }
        StmtKind::Skip | StmtKind::Tick(_) | StmtKind::Assign(..) => Ok(()),
    }
}

/// Parses a complete Appl program from its textual representation.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic or semantic
/// (validation) problem encountered, with line/column information and a
/// caret-annotated snippet.
///
/// ```
/// let source = r#"
///     pre d > 0
///     func rdwalk() pre x < d + 2 begin
///       if x < d then
///         t ~ uniform(-1, 2);
///         x := x + t;
///         call rdwalk;
///         tick(1)
///       fi
///     end
///     func main() begin
///       x := 0;
///       call rdwalk
///     end
/// "#;
/// let program = cma_appl::parse_program(source).unwrap();
/// assert!(program.function("rdwalk").is_some());
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let map = SourceMap::new(source);
    let parts = parse_parts(source).map_err(|e| e.resolved(&map))?;
    parts.validate_spanned().map_err(|e| e.resolved(&map))?;
    Program::new(parts.functions, parts.main, parts.precondition)
        .map_err(|e| ParseError::from(e).resolved(&map))
}

/// Parses a program *without* validating call targets, probabilities, or
/// distribution parameters.
///
/// This is the entry point for diagnostics tooling (`cma check`), which wants
/// to see the malformed AST so it can report every problem with a source span
/// instead of stopping at the first validation failure.  Programs obtained
/// this way must not be fed to the analysis or the simulator.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntactic problems only.
pub fn parse_program_unchecked(source: &str) -> Result<Program, ParseError> {
    let map = SourceMap::new(source);
    let parts = parse_parts(source).map_err(|e| e.resolved(&map))?;
    Ok(Program::new_unchecked(
        parts.functions,
        parts.main,
        parts.precondition,
    ))
}

fn parse_parts(source: &str) -> Result<ProgramParts, ParseError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    const RDWALK: &str = r#"
        # The bounded, biased random walk of Fig. 2.
        pre d > 0
        func rdwalk() pre x < d + 2 begin
          if x < d then
            t ~ uniform(-1, 2);
            x := x + t;
            call rdwalk;
            tick(1)
          fi
        end
        func main() begin
          x := 0;
          call rdwalk
        end
    "#;

    #[test]
    fn parses_the_running_example() {
        let p = parse_program(RDWALK).unwrap();
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.precondition().len(), 1);
        let f = p.function("rdwalk").unwrap();
        assert_eq!(f.precondition().len(), 1);
        assert!(matches!(f.body().kind(), StmtKind::If(..)));
        assert!(matches!(p.main().kind(), StmtKind::Seq(ss) if ss.len() == 2));
    }

    #[test]
    fn parses_loops_probabilistic_branches_and_all_distributions() {
        let src = r#"
            func main() begin
              n := 10;
              while 0 < n do
                if prob(0.25) then
                  n := n - 1;
                  c ~ discrete(0: 0.5, 2: 0.5)
                else
                  y ~ unif_int(1, 6);
                  b ~ bernoulli(0.3)
                fi;
                tick(1)
              od;
              skip
            end
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(p.main().kind(), StmtKind::Seq(_)));
        let text = p.to_string();
        assert!(text.contains("while"));
        assert!(text.contains("prob(0.25)"));
        assert!(text.contains("discrete"));
    }

    #[test]
    fn parses_nested_and_parenthesized_conditions() {
        let src = r#"
            func main() begin
              if (x < 1 and y >= 0) then tick(1) fi;
              if not (x == 0) then tick(2) fi;
              if (x + 1) * 2 <= y - 3 then tick(3) fi
            end
        "#;
        let p = parse_program(src).unwrap();
        assert!(p.to_string().contains("and"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("func main() begin x := fi end").is_err());
        assert!(parse_program("func main() begin tick() end").is_err());
        assert!(parse_program("blah").is_err());
        assert!(parse_program("func main() begin x ~ normal(0,1) end").is_err());
        assert!(parse_program("func main() begin call ghost end").is_err());
    }

    #[test]
    fn negative_numbers_in_distributions_and_constants() {
        let src = r#"
            func main() begin
              x := -3;
              t ~ uniform(-2.5, -0.5);
              y := x * -1
            end
        "#;
        let p = parse_program(src).unwrap();
        match p.main().kind() {
            StmtKind::Seq(ss) => {
                assert!(matches!(ss[0].kind(), StmtKind::Assign(_, Expr::Const(c)) if *c == -3.0));
                assert!(
                    matches!(ss[1].kind(), StmtKind::Sample(_, Dist::Uniform(a, b)) if *a == -2.5 && *b == -0.5)
                );
            }
            other => panic!("unexpected main {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_the_pretty_printer() {
        let original = parse_program(RDWALK).unwrap();
        let reparsed = parse_program(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn round_trips_builder_programs() {
        let program = ProgramBuilder::new()
            .function(
                "work",
                while_loop(
                    gt(v("n"), cst(0.0)),
                    seq([
                        if_prob(0.75, assign("n", sub(v("n"), cst(1.0))), skip()),
                        tick(1.0),
                    ]),
                ),
            )
            .main(seq([assign("n", cst(5.0)), call("work")]))
            .precondition(ge(v("n"), cst(0.0)))
            .build()
            .unwrap();
        let reparsed = parse_program(&program.to_string()).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn parse_error_reports_position_and_message() {
        let err = parse_program("func main() begin @ end").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        assert!(!err.message().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_column_and_snippet() {
        let err = parse_program("func main() begin\n  x := @\nend").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 8);
        let rendered = err.to_string();
        assert!(rendered.contains("parse error at 2:8"), "{rendered}");
        assert!(rendered.contains("x := @"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn validation_errors_point_at_the_offending_statement() {
        let err = parse_program("func main() begin\n  t ~ uniform(2, 1)\nend").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 3);
        assert!(err.message().contains("invalid distribution"));
        assert!(err.to_string().contains("t ~ uniform(2, 1)"));

        let err = parse_program("func main() begin\n  call ghost\nend").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("ghost"));

        let err =
            parse_program("func main() begin\n  if prob(1.5) then tick(1) fi\nend").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("1.5"));
    }

    #[test]
    fn statements_carry_source_spans() {
        let src = "func main() begin\n  x := 0;\n  tick(1)\nend";
        let p = parse_program(src).unwrap();
        match p.main().kind() {
            StmtKind::Seq(ss) => {
                let assign_span = ss[0].span();
                assert_eq!(&src[assign_span.start..assign_span.end], "x := 0");
                let tick_span = ss[1].span();
                assert_eq!(&src[tick_span.start..tick_span.end], "tick(1)");
            }
            other => panic!("unexpected main {other:?}"),
        }
        // The sequence span covers both statements.
        assert_eq!(
            &src[p.main().span().start..p.main().span().end],
            "x := 0;\n  tick(1)"
        );
    }

    #[test]
    fn unchecked_parse_accepts_invalid_programs() {
        let p = parse_program_unchecked("func main() begin\n  t ~ uniform(2, 1)\nend").unwrap();
        assert!(matches!(p.main().kind(), StmtKind::Sample(..)));
        let p = parse_program_unchecked("func main() begin call ghost end").unwrap();
        assert!(matches!(p.main().kind(), StmtKind::Call(..)));
    }
}
