//! Source spans and source-position resolution.
//!
//! Every statement parsed from text carries a [`Span`] — a half-open byte
//! range into the original source — so diagnostics (`cma check`, parse
//! errors) and downstream consumers ([`crate::facts::RangeFacts`]) can point
//! back at the program text.  Programs constructed through the builder DSL
//! use [`Span::DUMMY`]; span-keyed facilities simply do not apply to them.

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// The span of synthetic nodes (builder DSL, desugaring): `[0, 0)`.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Whether this is the synthetic dummy span.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// The smallest span covering both `self` and `other`.  A dummy operand
    /// yields the other span unchanged.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes from the start of the line).
    pub col: usize,
}

impl std::fmt::Display for LineCol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Resolves byte offsets of one source string to lines and columns and
/// renders caret-annotated snippets.
#[derive(Debug, Clone)]
pub struct SourceMap {
    source: String,
    /// Byte offsets at which each line starts (`line_starts[0] == 0`).
    line_starts: Vec<usize>,
}

impl SourceMap {
    /// Indexes `source` for position lookups.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap {
            source: source.to_string(),
            line_starts,
        }
    }

    /// The source text this map indexes.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The 1-based line/column of a byte offset (clamped to the source).
    pub fn line_col(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.source.len());
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The text of the 1-based line `line`, without its newline.
    pub fn line_text(&self, line: usize) -> &str {
        let idx = line.saturating_sub(1);
        let start = *self.line_starts.get(idx).unwrap_or(&self.source.len());
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|s| s - 1)
            .unwrap_or(self.source.len());
        self.source.get(start..end.max(start)).unwrap_or("")
    }

    /// A caret-annotated snippet pointing at `span`, e.g.:
    ///
    /// ```text
    ///   3 | x := uniform(2, 1)
    ///     |      ^^^^^^^^^^^^^
    /// ```
    pub fn snippet(&self, span: Span) -> String {
        let at = self.line_col(span.start);
        let text = self.line_text(at.line);
        let gutter = at.line.to_string();
        let caret_len = if span.end > span.start {
            let same_line = self.line_col(span.end.saturating_sub(1)).line == at.line;
            if same_line {
                span.end - span.start
            } else {
                text.len().saturating_sub(at.col - 1).max(1)
            }
        } else {
            1
        };
        let mut out = String::new();
        out.push_str(&format!("{gutter} | {text}\n"));
        out.push_str(&format!(
            "{} | {}{}",
            " ".repeat(gutter.len()),
            " ".repeat(at.col - 1),
            "^".repeat(caret_len.max(1))
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_span_merges_as_identity() {
        let s = Span::new(3, 9);
        assert_eq!(Span::DUMMY.merge(s), s);
        assert_eq!(s.merge(Span::DUMMY), s);
        assert_eq!(s.merge(Span::new(1, 4)), Span::new(1, 9));
        assert!(Span::DUMMY.is_dummy());
        assert!(!s.is_dummy());
    }

    #[test]
    fn line_col_resolution() {
        let map = SourceMap::new("abc\ndef\n\nghi");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
        assert_eq!(map.line_col(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(9), LineCol { line: 4, col: 1 });
        // Past the end clamps to the last position.
        assert_eq!(map.line_col(1000), LineCol { line: 4, col: 4 });
        assert_eq!(map.line_col(9).to_string(), "4:1");
    }

    #[test]
    fn snippet_renders_caret_under_span() {
        let map = SourceMap::new("x := 1;\ny := uniform(2, 1)");
        let snippet = map.snippet(Span::new(13, 26));
        let lines: Vec<&str> = snippet.lines().collect();
        assert_eq!(lines[0], "2 | y := uniform(2, 1)");
        assert_eq!(lines[1], "  |      ^^^^^^^^^^^^^");
    }

    #[test]
    fn snippet_of_empty_span_shows_single_caret() {
        let map = SourceMap::new("abc");
        let snippet = map.snippet(Span::new(1, 1));
        assert!(snippet.ends_with(" ^"));
    }
}
