//! Pretty printer for Appl programs.
//!
//! The output follows the concrete syntax of the paper's figures and is
//! accepted back by [`crate::parse::parse_program`] (round-tripping is covered
//! by property tests).

use std::fmt;

use crate::ast::{Cond, Expr, Function, Program, Stmt, StmtKind};

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(c) => {
                if *c < 0.0 {
                    write!(f, "({c})")
                } else {
                    write!(f, "{c}")
                }
            }
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::Not(c) => write!(f, "not ({c})"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Le(a, b) => write!(f, "{a} <= {b}"),
            Cond::Lt(a, b) => write!(f, "{a} < {b}"),
            Cond::Ge(a, b) => write!(f, "{a} >= {b}"),
            Cond::Gt(a, b) => write!(f, "{a} > {b}"),
            Cond::Eq(a, b) => write!(f, "{a} == {b}"),
        }
    }
}

fn indent(f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    for _ in 0..level {
        write!(f, "  ")?;
    }
    Ok(())
}

fn fmt_stmt(stmt: &Stmt, f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    match stmt.kind() {
        StmtKind::Skip => {
            indent(f, level)?;
            write!(f, "skip")
        }
        StmtKind::Tick(c) => {
            indent(f, level)?;
            write!(f, "tick({c})")
        }
        StmtKind::Assign(x, e) => {
            indent(f, level)?;
            write!(f, "{x} := {e}")
        }
        StmtKind::Sample(x, d) => {
            indent(f, level)?;
            write!(f, "{x} ~ {d}")
        }
        StmtKind::Call(name) => {
            indent(f, level)?;
            write!(f, "call {name}")
        }
        StmtKind::If(c, s1, s2) => {
            indent(f, level)?;
            writeln!(f, "if {c} then")?;
            fmt_stmt(s1, f, level + 1)?;
            if !matches!(s2.kind(), StmtKind::Skip) {
                writeln!(f)?;
                indent(f, level)?;
                writeln!(f, "else")?;
                fmt_stmt(s2, f, level + 1)?;
            }
            writeln!(f)?;
            indent(f, level)?;
            write!(f, "fi")
        }
        StmtKind::IfProb(p, s1, s2) => {
            indent(f, level)?;
            writeln!(f, "if prob({p}) then")?;
            fmt_stmt(s1, f, level + 1)?;
            if !matches!(s2.kind(), StmtKind::Skip) {
                writeln!(f)?;
                indent(f, level)?;
                writeln!(f, "else")?;
                fmt_stmt(s2, f, level + 1)?;
            }
            writeln!(f)?;
            indent(f, level)?;
            write!(f, "fi")
        }
        StmtKind::While(c, s) => {
            indent(f, level)?;
            writeln!(f, "while {c} do")?;
            fmt_stmt(s, f, level + 1)?;
            writeln!(f)?;
            indent(f, level)?;
            write!(f, "od")
        }
        StmtKind::Seq(stmts) => {
            if stmts.is_empty() {
                indent(f, level)?;
                return write!(f, "skip");
            }
            for (i, s) in stmts.iter().enumerate() {
                if i > 0 {
                    writeln!(f, ";")?;
                }
                fmt_stmt(s, f, level)?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(self, f, 0)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func {}()", self.name())?;
        for c in self.precondition() {
            write!(f, " pre {c}")?;
        }
        writeln!(f, " begin")?;
        fmt_stmt(self.body(), f, 1)?;
        writeln!(f)?;
        write!(f, "end")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.precondition() {
            writeln!(f, "pre {c}")?;
        }
        for func in self.functions() {
            writeln!(f, "{func}")?;
            writeln!(f)?;
        }
        writeln!(f, "func main() begin")?;
        fmt_stmt(self.main(), f, 1)?;
        writeln!(f)?;
        write!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;

    #[test]
    fn expressions_and_conditions_render() {
        assert_eq!(add(v("x"), cst(1.0)).to_string(), "(x + 1)");
        assert_eq!(
            mul(v("x"), sub(v("d"), v("x"))).to_string(),
            "(x * (d - x))"
        );
        assert_eq!(cst(-2.0).to_string(), "(-2)");
        assert_eq!(lt(v("x"), v("d")).to_string(), "x < d");
        assert_eq!(
            and(tt(), ge(v("y"), cst(0.0))).to_string(),
            "(true and y >= 0)"
        );
        assert_eq!(not(le(v("x"), cst(3.0))).to_string(), "not (x <= 3)");
    }

    #[test]
    fn statements_render_with_structure() {
        let s = seq([
            assign("x", cst(0.0)),
            while_loop(
                lt(v("x"), v("n")),
                seq([tick(1.0), assign("x", add(v("x"), cst(1.0)))]),
            ),
            if_prob(0.5, tick(2.0), skip()),
        ]);
        let text = s.to_string();
        assert!(text.contains("x := 0"));
        assert!(text.contains("while x < n do"));
        assert!(text.contains("od"));
        assert!(text.contains("if prob(0.5) then"));
        assert!(text.contains("fi"));
        // One-armed conditionals omit the else branch.
        assert!(!text.contains("else"));
    }

    #[test]
    fn empty_seq_renders_as_skip() {
        assert_eq!(seq([]).to_string(), "skip");
    }

    #[test]
    fn program_renders_with_pre_and_functions() {
        let p = ProgramBuilder::new()
            .function_with_precondition("f", seq([tick(1.0)]), [gt(v("d"), cst(0.0))])
            .main(call("f"))
            .precondition(gt(v("d"), cst(0.0)))
            .build()
            .unwrap();
        let text = p.to_string();
        assert!(text.starts_with("pre d > 0"));
        assert!(text.contains("func f() pre d > 0 begin"));
        assert!(text.contains("func main() begin"));
        assert!(text.contains("call f"));
    }
}
