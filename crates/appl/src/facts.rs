//! Facts exported by the static checker for consumption by the inference
//! engine.
//!
//! The interval pre-analysis in `cma-check` proves facts about a program —
//! "this branch can never be taken", "this variable is never read" — that
//! the moment derivation can exploit to emit fewer templates and
//! constraints.  [`RangeFacts`] is the contract between the two crates: the
//! checker produces it, `cma-inference` consumes it.  Facts about branches
//! are keyed by the statement's [`Span`], so they only apply to programs
//! that came through the parser; builder-constructed programs carry dummy
//! spans and are analyzed unpruned.

use std::collections::{BTreeMap, BTreeSet};

use cma_semiring::poly::Var;
use cma_semiring::Interval;

use crate::span::Span;

/// A statically-proved fact about one branching statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchFact {
    /// The `then` branch of an `if` is unreachable (guard refuted).
    ThenUnreachable,
    /// The `else` branch of an `if` is unreachable (guard always holds).
    ElseUnreachable,
    /// A `while` loop's guard is refuted on entry: the body never runs.
    LoopNeverEntered,
}

/// The checker's exported facts: refuted branches, dead variables, and the
/// variable ranges inferred at function entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeFacts {
    refuted: BTreeMap<Span, BranchFact>,
    dead_template_vars: BTreeSet<Var>,
    entry_ranges: BTreeMap<String, BTreeMap<Var, Interval>>,
}

impl RangeFacts {
    /// An empty fact set (prunes nothing).
    pub fn new() -> Self {
        RangeFacts::default()
    }

    /// Records a branch fact for the statement spanning `span`.  Facts for
    /// dummy spans are dropped: they cannot be matched back to a statement
    /// unambiguously.
    pub fn insert_refuted(&mut self, span: Span, fact: BranchFact) {
        if !span.is_dummy() {
            self.refuted.insert(span, fact);
        }
    }

    /// The branch fact recorded for the statement spanning `span`, if any.
    pub fn refuted_at(&self, span: Span) -> Option<BranchFact> {
        if span.is_dummy() {
            None
        } else {
            self.refuted.get(&span).copied()
        }
    }

    /// Number of refuted-branch facts.
    pub fn refuted_count(&self) -> usize {
        self.refuted.len()
    }

    /// Iterates over all refuted-branch facts.
    pub fn refuted(&self) -> impl Iterator<Item = (&Span, &BranchFact)> {
        self.refuted.iter()
    }

    /// Marks a variable as never read: templates need not range over it.
    pub fn insert_dead_template_var(&mut self, var: Var) {
        self.dead_template_vars.insert(var);
    }

    /// Variables that are written but never read anywhere in the program.
    /// Sound to drop from template ranges: they cannot influence the cost.
    pub fn dead_template_vars(&self) -> &BTreeSet<Var> {
        &self.dead_template_vars
    }

    /// Records the inferred variable ranges at the entry of `unit` (a
    /// function name, or `"main"`).
    pub fn set_entry_ranges(&mut self, unit: impl Into<String>, ranges: BTreeMap<Var, Interval>) {
        self.entry_ranges.insert(unit.into(), ranges);
    }

    /// The inferred variable ranges at the entry of `unit`, if analyzed.
    pub fn entry_ranges(&self, unit: &str) -> Option<&BTreeMap<Var, Interval>> {
        self.entry_ranges.get(unit)
    }

    /// Whether the fact set proves nothing a pruner could use.
    pub fn is_empty(&self) -> bool {
        self.refuted.is_empty() && self.dead_template_vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_spans_are_never_recorded_or_matched() {
        let mut facts = RangeFacts::new();
        facts.insert_refuted(Span::DUMMY, BranchFact::ThenUnreachable);
        assert!(facts.is_empty());
        assert_eq!(facts.refuted_at(Span::DUMMY), None);

        facts.insert_refuted(Span::new(3, 10), BranchFact::LoopNeverEntered);
        assert_eq!(facts.refuted_count(), 1);
        assert_eq!(
            facts.refuted_at(Span::new(3, 10)),
            Some(BranchFact::LoopNeverEntered)
        );
        assert_eq!(facts.refuted_at(Span::new(3, 11)), None);
        assert!(!facts.is_empty());
    }

    #[test]
    fn dead_vars_and_entry_ranges_round_trip() {
        let mut facts = RangeFacts::new();
        facts.insert_dead_template_var(Var::new("waste"));
        assert!(facts.dead_template_vars().contains(&Var::new("waste")));

        let mut ranges = BTreeMap::new();
        ranges.insert(Var::new("x"), Interval::new(0.0, 5.0));
        facts.set_entry_ranges("main", ranges);
        let got = facts.entry_ranges("main").unwrap();
        assert_eq!(got[&Var::new("x")], Interval::new(0.0, 5.0));
        assert!(facts.entry_ranges("other").is_none());
    }
}
