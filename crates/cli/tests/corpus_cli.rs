//! `cma corpus` end-to-end: generate a corpus, run a campaign over the real
//! analyzer binary with injected failures, and resume it.
//!
//! These tests exercise the full ISSUE contract: a panicking program and a
//! deadline-exceeding program are recorded as isolated failures while the
//! rest of the corpus completes, and a second run against the same journal
//! is a no-op that reproduces the same report.
#![cfg(unix)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cma() -> &'static str {
    env!("CARGO_BIN_EXE_cma")
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cma-cli-corpus-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(cma());
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().unwrap()
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Extracts `"key":N` from the report JSON.
fn count_field(json: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let start = json
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + marker.len();
    json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn gen_corpus(dir: &Path, count: usize) {
    let out = run(
        &[
            "corpus",
            "gen",
            "--out",
            dir.to_str().unwrap(),
            "--seed",
            "7",
            "--count",
            &count.to_string(),
        ],
        &[],
    );
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn campaign_isolates_panics_and_crashes_and_resumes_idempotently() {
    let dir = scratch("isolate");
    let corpus = dir.join("corpus");
    gen_corpus(&corpus, 4);
    // Two saboteurs: one panics (contained by the analyzer, the process
    // still dies with a structured error), one aborts outright.
    fs::copy(corpus.join("seed_00007.appl"), corpus.join("panicky.appl")).unwrap();
    fs::copy(corpus.join("seed_00007.appl"), corpus.join("crashy.appl")).unwrap();
    let journal = dir.join("journal.ndjson");
    let args = [
        "corpus",
        "run",
        corpus.to_str().unwrap(),
        "--timeout",
        "30",
        "--jobs",
        "2",
        "--retries",
        "0",
        "--journal",
        journal.to_str().unwrap(),
        "--json",
    ];
    let envs = [("CMA_PANIC_ON", "panicky"), ("CMA_CRASH_ON", "crashy")];

    let first = run(&args, &envs);
    // Crashes are a campaign-level failure (nonzero exit) but the campaign
    // itself completed: every program has a recorded outcome.
    assert!(!first.status.success());
    let report = stdout_of(&first);
    assert_eq!(count_field(&report, "total"), 6);
    assert_eq!(count_field(&report, "crashes"), 2);
    assert_eq!(count_field(&report, "resumed"), 0);
    assert!(report.contains("\"path\":\"") && report.contains("panicky.appl"));
    let journal_text = fs::read_to_string(&journal).unwrap();
    assert_eq!(journal_text.lines().count(), 6);
    assert!(journal_text.contains("injected panic"));

    // Resume: nothing left to run, the journal is unchanged, and the report
    // (counts and per-program outcomes) is reproduced exactly.
    let second = run(&args, &envs);
    assert!(!second.status.success());
    let resumed = stdout_of(&second);
    assert_eq!(count_field(&resumed, "resumed"), 6);
    assert_eq!(resumed.replace("\"resumed\":6", "\"resumed\":0"), report);
    assert_eq!(fs::read_to_string(&journal).unwrap(), journal_text);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn the_hostile_fixture_times_out_instead_of_hanging() {
    let dir = scratch("hostile");
    let corpus = dir.join("corpus");
    let out = run(
        &[
            "corpus",
            "gen",
            "--out",
            corpus.to_str().unwrap(),
            "--count",
            "0",
            "--hostile",
        ],
        &[],
    );
    assert!(out.status.success(), "{out:?}");
    let journal = dir.join("journal.ndjson");
    // Unbudgeted, a degree-4 analysis of the hostile fixture runs for
    // minutes; the campaign's per-program deadline must cut it down to a
    // recorded timeout in a couple of seconds.
    let started = std::time::Instant::now();
    let out = run(
        &[
            "corpus",
            "run",
            corpus.join("hostile.appl").to_str().unwrap(),
            "--degree",
            "4",
            "--timeout",
            "2",
            "--retries",
            "0",
            "--journal",
            journal.to_str().unwrap(),
            "--json",
        ],
        &[],
    );
    // A timeout is an expected per-program outcome, not a campaign failure.
    assert!(out.status.success(), "{out:?}");
    let report = stdout_of(&out);
    assert_eq!(count_field(&report, "timeouts"), 1);
    assert_eq!(count_field(&report, "crashes"), 0);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "campaign took {:?}: the deadline did not bite",
        started.elapsed()
    );
    let _ = fs::remove_dir_all(&dir);
}
