//! End-to-end tests of the `cma` binary: a golden test pinning the
//! `analyze --json` report format, plus behavioral checks of the other
//! subcommands and of error handling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cma() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cma"))
}

fn repo_root() -> PathBuf {
    // crates/cli → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fig2() -> String {
    repo_root().join("examples/fig2.appl").display().to_string()
}

fn run(args: &[&str]) -> Output {
    cma().args(args).output().expect("cma runs")
}

fn stdout(output: &Output) -> String {
    assert!(
        output.status.success(),
        "cma failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).expect("utf-8 output")
}

/// Strips the single volatile section (`"timings":{…}`, always emitted last)
/// so reports compare reproducibly.
fn strip_timings(json: &str) -> String {
    let json = json.trim();
    match json.rfind(",\"timings\":") {
        Some(i) => format!("{}{}", &json[..i], "}"),
        None => json.to_string(),
    }
}

/// Zeroes every occurrence of the wall-clock profile counters
/// (`"ftran_ns":N`, …): the *presence* of the fields is pinned by the golden
/// report, their values are as volatile as the timings section.
fn zero_ns_fields(json: &str) -> String {
    let mut out = json.to_string();
    for key in [
        "ftran_ns",
        "btran_ns",
        "pricing_ns",
        "ratio_ns",
        "hyper_sparse_ftrans",
        "hyper_sparse_btrans",
        "dense_fallbacks",
        "kernel_allocs",
    ] {
        let pat = format!("\"{key}\":");
        let mut normalized = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(i) = rest.find(&pat) {
            let end = i + pat.len();
            normalized.push_str(&rest[..end]);
            normalized.push('0');
            rest = &rest[end..];
            let digits = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest = &rest[digits..];
        }
        normalized.push_str(rest);
        out = normalized;
    }
    out
}

#[test]
fn analyze_json_matches_the_golden_report() {
    let output = run(&[
        "analyze",
        &fig2(),
        "--degree",
        "2",
        "--valuation",
        "d=10,x=0",
        "--tail",
        "40,80",
        "--no-soundness",
        "--label",
        "fig2",
        "--json",
    ]);
    let actual = zero_ns_fields(&strip_timings(&stdout(&output)));
    let golden = include_str!("golden/fig2_analyze.json").trim();
    assert_eq!(
        actual, golden,
        "cma analyze --json drifted from the golden report"
    );
}

#[test]
fn analyze_human_output_reports_moments_variance_and_tail_in_one_invocation() {
    // The acceptance criterion of the pipeline redesign: E[C], E[C²],
    // variance, and a Cantelli-backed tail bound from a single `cma analyze`.
    let output = run(&[
        "analyze",
        &fig2(),
        "--valuation",
        "d=10,x=0",
        "--no-soundness",
    ]);
    let text = stdout(&output);
    assert!(text.contains("E[C^1]"), "missing E[C]: {text}");
    assert!(text.contains("E[C^2]"), "missing E[C^2]: {text}");
    assert!(text.contains("V[C]"), "missing variance: {text}");
    assert!(text.contains("P[C >="), "missing tail bound: {text}");
    // Fig. 1(b) at d = 10: E[tick] <= 24, V <= 248.
    assert!(text.contains("24.0000"), "mean bound drifted: {text}");
    assert!(text.contains("248.0000"), "variance bound drifted: {text}");
}

#[test]
fn analyze_with_soundness_reports_theorem_4_4() {
    // Small program so the step-counting re-analysis stays fast.
    let dir = std::env::temp_dir().join("cma-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("coin.appl");
    std::fs::write(
        &file,
        "func main() begin if prob(0.5) then tick(2) else tick(4) fi end",
    )
    .unwrap();
    let output = run(&["analyze", file.to_str().unwrap(), "--json"]);
    let json = stdout(&output);
    assert!(
        json.contains("\"soundness\":{\"bounded_updates\":true"),
        "{json}"
    );
    assert!(json.contains("\"is_sound\":true"), "{json}");
    assert!(json.contains("\"soundness_ms\":"), "{json}");
}

#[test]
fn simulate_agrees_with_the_analysis_bounds() {
    let output = run(&[
        "simulate",
        &fig2(),
        "--trials",
        "4000",
        "--seed",
        "9",
        "--valuation",
        "d=10",
        "--json",
    ]);
    let json = stdout(&output);
    // Extract the simulated mean and check it against the paper bound 2d+4.
    let mean: f64 = json
        .split("\"mean\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|v| v.parse().ok())
        .expect("mean field present");
    assert!(
        mean > 18.0 && mean <= 24.0,
        "simulated mean {mean} out of range"
    );
    assert!(json.contains("\"trials\":4000"));
}

#[test]
fn tail_subcommand_prints_requested_thresholds() {
    let output = run(&[
        "tail",
        &fig2(),
        "--thresholds",
        "40,80",
        "--valuation",
        "d=10,x=0",
        "--no-soundness",
    ]);
    let text = stdout(&output);
    assert!(text.contains("P[C >= 40.0000]"));
    assert!(text.contains("P[C >= 80.0000]"));
}

#[test]
fn suite_list_and_run_work() {
    let list = stdout(&run(&["suite", "list"]));
    assert!(list.contains("benchmarks:"));
    assert!(list.contains("coupon"), "{list}");
    // Ids are namespaced by suite.
    assert!(list.contains("running/rdwalk"), "{list}");
    assert!(list.contains("absynth/rdwalk"), "{list}");

    let json = stdout(&run(&["suite", "list", "--json"]));
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"name\":\"running/rdwalk\""), "{json}");
    assert!(json.contains("\"suite\":\"kura\""), "{json}");

    // A bare name that is unambiguous still works.
    let run_out = stdout(&run(&[
        "suite",
        "run",
        "(1-1)",
        "--degree",
        "2",
        "--no-soundness",
    ]));
    assert!(run_out.contains("E[C^1]"), "{run_out}");
}

#[test]
fn suite_run_accepts_qualified_ids_and_rejects_ambiguous_bare_names() {
    // `rdwalk` exists in both the running and absynth suites: the bare name
    // is ambiguous (the PR 1 behavior silently ran both)…
    let ambiguous = run(&["suite", "run", "rdwalk", "--no-soundness"]);
    assert_eq!(ambiguous.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&ambiguous.stderr);
    assert!(stderr.contains("ambiguous"), "{stderr}");
    assert!(stderr.contains("running/rdwalk"), "{stderr}");
    assert!(stderr.contains("absynth/rdwalk"), "{stderr}");

    // …while the qualified id selects exactly one benchmark.
    let qualified = stdout(&run(&[
        "suite",
        "run",
        "running/rdwalk",
        "--no-soundness",
        "--json",
    ]));
    assert!(
        qualified.contains("\"label\":\"running/rdwalk\""),
        "{qualified}"
    );
    assert_eq!(qualified.matches("\"label\":").count(), 1);
}

#[test]
fn sparse_backend_and_threads_flags_are_honored() {
    let dense = stdout(&run(&[
        "analyze",
        &fig2(),
        "--valuation",
        "d=10,x=0",
        "--no-soundness",
        "--json",
    ]));
    let sparse = stdout(&run(&[
        "analyze",
        &fig2(),
        "--valuation",
        "d=10,x=0",
        "--no-soundness",
        "--backend",
        "sparse",
        "--threads",
        "2",
        "--json",
    ]));
    assert!(
        sparse.contains("\"backend\":\"sparse-revised-simplex\""),
        "{sparse}"
    );
    assert!(sparse.contains("\"parallelism\":2"), "{sparse}");
    // Both backends derive the same Fig. 1(b) mean bound 2d + 4 = 24.
    for report in [&dense, &sparse] {
        let upper: f64 = report
            .split("\"k\":1,\"lower\":")
            .nth(1)
            .and_then(|rest| rest.split("\"upper\":").nth(1))
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("mean upper bound present");
        assert!((upper - 24.0).abs() < 1e-3, "mean upper {upper}");
    }

    let bad = run(&["analyze", &fig2(), "--backend", "frobnicate"]);
    assert_eq!(bad.status.code(), Some(2));
}

fn triangle() -> String {
    repo_root()
        .join("examples/triangle.appl")
        .display()
        .to_string()
}

#[test]
fn escalate_flag_reaches_the_target_degree_in_session() {
    let output = run(&[
        "analyze",
        &fig2(),
        "--degree",
        "2",
        "--escalate",
        "1",
        "--backend",
        "sparse",
        "--valuation",
        "d=10,x=0",
        "--no-soundness",
        "--json",
    ]);
    let json = stdout(&output);
    assert!(
        json.contains("\"escalation\":{\"from_degree\":1,\"to_degree\":2"),
        "{json}"
    );
    assert!(json.contains("\"cold_restarts\":0"), "{json}");
    // The escalated session still derives the Fig. 1(b) bound 2d + 4 = 24.
    let upper: f64 = json
        .split("\"k\":1,\"lower\":")
        .nth(1)
        .and_then(|rest| rest.split("\"upper\":").nth(1))
        .and_then(|rest| rest.split(',').next())
        .and_then(|v| v.parse().ok())
        .expect("mean upper bound present");
    assert!((upper - 24.0).abs() < 1e-3, "mean upper {upper}");

    // A start at or above the target degree is a usage error.
    let bad = run(&["analyze", &fig2(), "--degree", "2", "--escalate", "2"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn infeasible_analyses_hint_at_max_poly_degree_and_the_retry_succeeds() {
    let failing = run(&[
        "analyze",
        &triangle(),
        "--degree",
        "1",
        "--valuation",
        "n=4",
    ]);
    assert_eq!(failing.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&failing.stderr);
    assert!(stderr.contains("infeasible"), "{stderr}");
    assert!(stderr.contains("--max-poly-degree 2"), "{stderr}");

    let retried = stdout(&run(&[
        "analyze",
        &triangle(),
        "--degree",
        "1",
        "--valuation",
        "n=4",
        "--max-poly-degree",
        "2",
        "--json",
    ]));
    assert!(retried.contains("\"poly_retries\":1"), "{retried}");
    assert!(retried.contains("\"poly_degree\":2"), "{retried}");
}

fn lint_fixture(name: &str) -> String {
    repo_root()
        .join("examples/lints")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn check_reports_warnings_with_positions_and_exits_zero() {
    let output = run(&["check", &lint_fixture("cma002_refuted_branch.appl")]);
    assert_eq!(output.status.code(), Some(0));
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("warning[CMA002]"), "{text}");
    assert!(text.contains("--> 5:3"), "{text}");
    assert!(text.contains("^^^"), "caret snippet missing: {text}");

    // `--deny warnings` turns the same report into a failure.
    let denied = run(&[
        "check",
        &lint_fixture("cma002_refuted_branch.appl"),
        "--deny",
        "warnings",
    ]);
    assert_eq!(denied.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&denied.stderr);
    assert!(stderr.contains("static checks failed"), "{stderr}");
    assert!(stderr.contains("cma002_refuted_branch.appl"), "{stderr}");
}

#[test]
fn check_reports_errors_with_exit_one_and_json_carries_the_code() {
    let output = run(&["check", &lint_fixture("cma003_invalid_dist.appl")]);
    assert_eq!(output.status.code(), Some(1));
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("error[CMA003]"), "{text}");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("static checks failed"),
        "{output:?}"
    );

    // JSON mode: one object per file, diagnostics carry stable codes and
    // resolved positions.
    let json_out = run(&["check", &lint_fixture("cma003_invalid_dist.appl"), "--json"]);
    let json = String::from_utf8_lossy(&json_out.stdout);
    assert!(json.contains("\"label\":"), "{json}");
    assert!(json.contains("\"code\":\"CMA003\""), "{json}");
    assert!(json.contains("\"line\":3,\"col\":3"), "{json}");

    // CMA007 is opt-in: the negative-tick fixture is clean by default and
    // an error under `--nonneg-cost`.
    let lenient = run(&["check", &lint_fixture("cma007_negative_tick.appl")]);
    assert_eq!(lenient.status.code(), Some(0));
    let strict = run(&[
        "check",
        &lint_fixture("cma007_negative_tick.appl"),
        "--nonneg-cost",
    ]);
    assert_eq!(strict.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&strict.stdout).contains("error[CMA007]"));
}

#[test]
fn analyze_auto_check_aborts_on_errors_and_surfaces_warnings() {
    // A warning-level lint does not stop the analysis; the diagnostics go to
    // stderr and the report carries the count.
    let output = run(&[
        "analyze",
        &lint_fixture("cma002_refuted_branch.appl"),
        "--no-soundness",
        "--json",
    ]);
    let json = stdout(&output);
    assert!(json.contains("\"check\":{\"warnings\":1"), "{json}");
    assert!(json.contains("\"refuted_branches\":1"), "{json}");

    // A negative tick under --nonneg-cost is an error: the analysis aborts
    // with the diagnostic rather than deriving bounds over a defective
    // program.
    let aborted = run(&[
        "analyze",
        &lint_fixture("cma007_negative_tick.appl"),
        "--nonneg-cost",
    ]);
    assert_eq!(aborted.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&aborted.stderr);
    assert!(stderr.contains("error[CMA007]"), "{stderr}");
    assert!(stderr.contains("static checks failed"), "{stderr}");

    // `--no-check` restores the legacy behavior.
    let skipped = run(&[
        "analyze",
        &lint_fixture("cma007_negative_tick.appl"),
        "--nonneg-cost",
        "--no-check",
        "--no-soundness",
    ]);
    assert_eq!(skipped.status.code(), Some(0));
}

#[test]
fn check_pruning_shrinks_the_lp_visibly_in_the_report() {
    let dir = std::env::temp_dir().join("cma-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("prunable.appl");
    std::fs::write(
        &file,
        "func main() begin\n  x := 1;\n  waste := 7;\n  \
         if x < 0 then tick(9) else tick(1) fi;\n  \
         while x < 0 do tick(5) od\nend\n",
    )
    .unwrap();
    let lp_size = |json: &str| -> (u64, u64) {
        let field = |key: &str| {
            json.split(key)
                .nth(1)
                .and_then(|rest| rest.split(&[',', '}'][..]).next())
                .and_then(|v| v.parse().ok())
                .expect("LP stats present")
        };
        (field("\"constraints\":"), field("\"variables\":"))
    };
    let base = stdout(&run(&[
        "analyze",
        file.to_str().unwrap(),
        "--no-soundness",
        "--no-check-pruning",
        "--json",
    ]));
    let pruned = stdout(&run(&[
        "analyze",
        file.to_str().unwrap(),
        "--no-soundness",
        "--json",
    ]));
    assert!(pruned.contains("\"refuted_branches\":1"), "{pruned}");
    assert!(pruned.contains("\"skipped_loops\":1"), "{pruned}");
    assert!(pruned.contains("\"dropped_template_vars\":1"), "{pruned}");
    let (base_rows, base_cols) = lp_size(&base);
    let (pruned_rows, pruned_cols) = lp_size(&pruned);
    assert!(
        pruned_rows < base_rows && pruned_cols < base_cols,
        "pruning did not shrink the LP: {base_rows}x{base_cols} -> {pruned_rows}x{pruned_cols}"
    );
}

#[test]
fn simulate_counts_uninit_reads_and_strict_init_makes_them_fatal() {
    let fixture = lint_fixture("cma001_use_before_init.appl");
    let lenient = run(&["simulate", &fixture, "--trials", "50"]);
    assert_eq!(lenient.status.code(), Some(0));
    // The auto-check flags the read on stderr…
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(stderr.contains("warning[CMA001]"), "{stderr}");
    // …and the simulator reports how often it actually happened.
    let text = String::from_utf8_lossy(&lenient.stdout);
    assert!(
        text.contains("50 reads of uninitialized variables"),
        "{text}"
    );

    let json =
        String::from_utf8_lossy(&run(&["simulate", &fixture, "--trials", "50", "--json"]).stdout)
            .to_string();
    assert!(json.contains("\"uninit_reads\":50"), "{json}");

    let strict = run(&["simulate", &fixture, "--trials", "50", "--strict-init"]);
    assert_eq!(strict.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("read before initialization"), "{stderr}");
}

#[test]
fn usage_errors_exit_with_code_2() {
    let bad_sub = run(&["frobnicate"]);
    assert_eq!(bad_sub.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_sub.stderr).contains("unknown subcommand"));

    let bad_flag = run(&["analyze", "--frobnicate"]);
    assert_eq!(bad_flag.status.code(), Some(2));

    let missing_thresholds = run(&["tail", &fig2()]);
    assert_eq!(missing_thresholds.status.code(), Some(2));

    let check_without_files = run(&["check"]);
    assert_eq!(check_without_files.status.code(), Some(2));

    let bad_deny = run(&["check", &fig2(), "--deny", "everything"]);
    assert_eq!(bad_deny.status.code(), Some(2));

    let unknown_benchmark = run(&["suite", "run", "does-not-exist"]);
    assert_eq!(unknown_benchmark.status.code(), Some(2));
}

#[test]
fn missing_files_and_parse_errors_exit_with_code_1() {
    let missing = run(&["analyze", "/no/such/file.appl"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot access"));

    let dir = std::env::temp_dir().join("cma-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.appl");
    std::fs::write(&bad, "func main( begin end").unwrap();
    let parse_fail = run(&["analyze", bad.to_str().unwrap()]);
    assert_eq!(parse_fail.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&parse_fail.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
    assert!(stderr.contains("while parsing"), "{stderr}");
}
