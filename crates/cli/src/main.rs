//! `cma` — the command line of the central-moment analysis.
//!
//! ```text
//! cma analyze  <file.appl> [--degree N] [--timeout SECS] [--json] …
//! cma check    <file.appl>… [--deny warnings] [--nonneg-cost] [--json]
//! cma simulate <file.appl> [--trials N] [--seed N] [--timeout SECS] [--json] …
//! cma tail     <file.appl> --thresholds d1,d2,… [--json] …
//! cma suite    list|run [name|all] [--degree N] [--json]
//! cma corpus   gen --out DIR [--seed N] [--count K] [--hostile]
//! cma corpus   run <file|dir>… [--jobs N] [--timeout SECS] [--journal FILE] …
//! ```
//!
//! Every subcommand accepts `--json` for machine-readable output; the human
//! rendering is the `Display` of the same [`AnalysisReport`], so the two views
//! never drift apart.  Argument parsing is hand-rolled: the dependency-free
//! build environment has no `clap`, and the grammar is small.
//!
//! [`AnalysisReport`]: central_moment_analysis::AnalysisReport

use std::process::ExitCode;

use central_moment_analysis::suite::{self, Benchmark};
use central_moment_analysis::{
    check, json, Analysis, AnalysisReport, CheckConfig, CmaError, DualPricing, DualRatio,
    FactorKind, LpBackend, PricingRule, SolveMode, SparseBackend, Var,
};

const USAGE: &str = "\
cma — central moment analysis for cost accumulators in probabilistic programs

USAGE:
    cma analyze  <file.appl> [OPTIONS]     derive moment/variance/tail bounds
    cma check    <file.appl>… [OPTIONS]    run the static checks (CMA001–CMA007)
    cma simulate <file.appl> [OPTIONS]     Monte-Carlo estimate of the same moments
    cma tail     <file.appl> --thresholds d1,d2,… [OPTIONS]
                                           tail bounds P[C >= d] at thresholds
    cma suite    list                      list the paper's benchmark programs
    cma suite    run <name|all> [OPTIONS]  analyze benchmark(s) from the suite
    cma corpus   gen --out DIR [OPTIONS]   write a deterministic generated corpus
    cma corpus   run <file|dir>… [OPTIONS] analyze a corpus in isolated child
                                           processes (crash/hang containment)

ANALYSIS OPTIONS:
    --degree N           target moment degree m (default 2)
    --poly-degree D      base polynomial degree of templates (default 1)
    --max-poly-degree D  on an infeasible LP, retry with base degrees up to D
                         (reusing the derivation plan between retries)
    --escalate M         solve at degree M first, then escalate the live LP
                         session to --degree (warm dual re-solve, no re-derive)
    --mode MODE          global | compositional (default global)
    --backend B          dense | sparse LP solver (default dense)
    --pricing P          dantzig | devex | partial simplex pricing (default devex)
    --factor F           dense | lu basis factorization (default dense)
    --dual-pricing P     devex | steepest dual leaving-row pricing for warm
                         re-solves (default devex)
    --dual-ratio R       bound-flip | harris dual ratio test (default bound-flip)
    --no-presolve        skip the LP presolve pass (row/column reductions)
    --threads N          solve independent compositional groups on N threads
    --timeout SECS       wall-clock budget for the whole analysis; when it runs
                         out, the degradation ladder retries with cheaper
                         settings and labels the (still sound) weaker bounds
    --group-timeout SECS wall-clock budget per LP group solve
    --valuation K=V,…    initial-state valuation, e.g. d=10,x=0
    --tail D1,D2,…       tail-bound thresholds (default 2x/4x/8x mean bound)
    --no-soundness       skip the Thm 4.4 side-condition checks
    --no-check           skip the pre-analysis static checks
    --no-check-pruning   run the checks but do not prune the LP with their facts
    --nonneg-cost        enable CMA007 in the pre-analysis checks (see below)
    --label NAME         label the report (defaults to the file name)

CHECK OPTIONS:
    --deny warnings      treat warnings as fatal (exit 1)
    --nonneg-cost        enable CMA007: every tick must be nonnegative
    --valuation K=V,…    variables assumed initialized (suppresses CMA001)

SIMULATION OPTIONS:
    --trials N           number of Monte-Carlo trials (default 10000)
    --seed N             RNG seed (default 12648430)
    --max-steps N        per-trial step budget (default 1000000)
    --strict-init        abort a trial on any read of an uninitialized variable
    --timeout SECS       wall-clock budget; completed trials are kept and the
                         statistics are labeled as truncated

CORPUS OPTIONS:
    --out DIR            (gen) output directory for the generated programs
    --seed N             (gen) base seed; program i uses seed N+i (default 1)
    --count K            (gen) number of generated programs (default 100)
    --hostile            (gen) also write hostile.appl, a fixture whose
                         analysis is expensive enough to trip any deadline
    --jobs N             (run) concurrent child processes (default 4)
    --timeout SECS       (run) hard per-program deadline; the child process is
                         killed when it passes (default 10)
    --retries N          (run) extra attempts for timeouts/crashes (default 1)
    --journal FILE       (run) NDJSON journal; re-running against an existing
                         journal resumes, skipping recorded programs
                         (default corpus.journal.ndjson)
    --cma PATH           (run) analyzer binary to invoke (default: this binary)

COMMON OPTIONS:
    --json               emit the full report as JSON on stdout
    -h, --help           show this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "-h" || args[0] == "--help" {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let result = match args[0].as_str() {
        "analyze" => cmd_analyze(&args[1..], false),
        "tail" => cmd_analyze(&args[1..], true),
        "check" => cmd_check(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "suite" => cmd_suite(&args[1..]),
        "corpus" => cmd_corpus(&args[1..]),
        other => Err(CmaError::Usage(format!(
            "unknown subcommand `{other}` (expected analyze, check, simulate, tail, suite, or corpus)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cma: {e}");
            if let Some((_, poly_degree)) = e.infeasible_at() {
                // If automatic escalation already ran, the budget was
                // exhausted — suggesting the same flag again would loop.
                let retried = std::env::args().any(|a| a == "--max-poly-degree");
                if retried {
                    eprintln!(
                        "hint: templates stayed infeasible up to the --max-poly-degree \
                         limit (last tried degree {poly_degree}); raise the limit only \
                         if a polynomial bound of higher degree plausibly exists"
                    );
                } else {
                    eprintln!(
                        "hint: the degree-{poly_degree} templates cannot express a bound \
                         for this program; retry with `--max-poly-degree {}` to let the \
                         analysis escalate the template degree automatically",
                        poly_degree + 1
                    );
                }
            }
            if e.is_usage() {
                eprintln!("run `cma --help` for usage");
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// The LP solver selected with `--backend`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum BackendChoice {
    /// The dense two-phase reference simplex.
    #[default]
    Dense,
    /// The sparse revised simplex (recommended for large chain programs).
    Sparse,
}

/// Options shared by `analyze`, `tail`, and `suite run`.
#[derive(Debug, Clone, Default)]
struct AnalyzeOpts {
    degree: Option<usize>,
    poly_degree: Option<u32>,
    max_poly_degree: Option<u32>,
    escalate: Option<usize>,
    mode: Option<SolveMode>,
    backend: BackendChoice,
    pricing: Option<PricingRule>,
    factor: Option<FactorKind>,
    dual_pricing: Option<DualPricing>,
    dual_ratio: Option<DualRatio>,
    no_presolve: bool,
    threads: Option<usize>,
    valuation: Option<Vec<(Var, f64)>>,
    tail: Option<Vec<f64>>,
    no_soundness: bool,
    no_check: bool,
    no_check_pruning: bool,
    label: Option<String>,
    json: bool,
    /// Wall-clock budgets, in seconds (`analyze`: whole analysis and per LP
    /// group; `simulate`: the campaign; `corpus run`: hard kill deadline).
    timeout: Option<f64>,
    group_timeout: Option<f64>,
    /// Positional arguments (file name, benchmark name, …).
    positional: Vec<String>,
    /// Simulation-only knobs (accepted everywhere, used by `simulate`).
    trials: Option<usize>,
    seed: Option<u64>,
    max_steps: Option<usize>,
    strict_init: bool,
    /// `cma check`-only knobs.
    deny_warnings: bool,
    nonneg_cost: bool,
    /// `cma corpus`-only knobs.
    out: Option<String>,
    count: Option<usize>,
    hostile: bool,
    jobs: Option<usize>,
    retries: Option<u32>,
    journal: Option<String>,
    cma_binary: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<AnalyzeOpts, CmaError> {
    let mut opts = AnalyzeOpts::default();
    let mut it = args.iter();
    let missing = |flag: &str| CmaError::Usage(format!("missing value for `{flag}`"));
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--no-soundness" => opts.no_soundness = true,
            "--no-check" => opts.no_check = true,
            "--no-check-pruning" => opts.no_check_pruning = true,
            "--strict-init" => opts.strict_init = true,
            "--nonneg-cost" => opts.nonneg_cost = true,
            "--deny" => {
                let v = it.next().ok_or_else(|| missing("--deny"))?;
                if v != "warnings" {
                    return Err(CmaError::Usage(format!(
                        "invalid value `{v}` for `--deny` (expected warnings)"
                    )));
                }
                opts.deny_warnings = true;
            }
            "--degree" => {
                let v = it.next().ok_or_else(|| missing("--degree"))?;
                opts.degree = Some(parse_num(v, "--degree")?);
            }
            "--poly-degree" => {
                let v = it.next().ok_or_else(|| missing("--poly-degree"))?;
                opts.poly_degree = Some(parse_num(v, "--poly-degree")?);
            }
            "--max-poly-degree" => {
                let v = it.next().ok_or_else(|| missing("--max-poly-degree"))?;
                opts.max_poly_degree = Some(parse_num(v, "--max-poly-degree")?);
            }
            "--escalate" => {
                let v = it.next().ok_or_else(|| missing("--escalate"))?;
                opts.escalate = Some(parse_num(v, "--escalate")?);
            }
            "--trials" => {
                let v = it.next().ok_or_else(|| missing("--trials"))?;
                opts.trials = Some(parse_num(v, "--trials")?);
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| missing("--seed"))?;
                opts.seed = Some(parse_num(v, "--seed")?);
            }
            "--max-steps" => {
                let v = it.next().ok_or_else(|| missing("--max-steps"))?;
                opts.max_steps = Some(parse_num(v, "--max-steps")?);
            }
            "--mode" => {
                let v = it.next().ok_or_else(|| missing("--mode"))?;
                opts.mode = Some(match v.as_str() {
                    "global" => SolveMode::Global,
                    "compositional" => SolveMode::Compositional,
                    other => {
                        return Err(CmaError::Usage(format!(
                            "invalid --mode `{other}` (expected global or compositional)"
                        )))
                    }
                });
            }
            "--backend" => {
                let v = it.next().ok_or_else(|| missing("--backend"))?;
                opts.backend = match v.as_str() {
                    "dense" => BackendChoice::Dense,
                    "sparse" => BackendChoice::Sparse,
                    other => {
                        return Err(CmaError::Usage(format!(
                            "invalid --backend `{other}` (expected dense or sparse)"
                        )))
                    }
                };
            }
            "--pricing" => {
                let v = it.next().ok_or_else(|| missing("--pricing"))?;
                opts.pricing = Some(v.parse().map_err(CmaError::Usage)?);
            }
            "--factor" => {
                let v = it.next().ok_or_else(|| missing("--factor"))?;
                opts.factor = Some(v.parse().map_err(CmaError::Usage)?);
            }
            "--dual-pricing" => {
                let v = it.next().ok_or_else(|| missing("--dual-pricing"))?;
                opts.dual_pricing = Some(v.parse().map_err(CmaError::Usage)?);
            }
            "--dual-ratio" => {
                let v = it.next().ok_or_else(|| missing("--dual-ratio"))?;
                opts.dual_ratio = Some(v.parse().map_err(CmaError::Usage)?);
            }
            "--no-presolve" => opts.no_presolve = true,
            "--threads" => {
                let v = it.next().ok_or_else(|| missing("--threads"))?;
                opts.threads = Some(parse_num(v, "--threads")?);
            }
            "--valuation" => {
                let v = it.next().ok_or_else(|| missing("--valuation"))?;
                opts.valuation = Some(parse_valuation(v)?);
            }
            "--tail" | "--thresholds" => {
                let v = it.next().ok_or_else(|| missing(arg))?;
                opts.tail = Some(parse_f64_list(v, arg)?);
            }
            "--label" => {
                let v = it.next().ok_or_else(|| missing("--label"))?;
                opts.label = Some(v.clone());
            }
            "--timeout" => {
                let v = it.next().ok_or_else(|| missing("--timeout"))?;
                opts.timeout = Some(parse_secs(v, "--timeout")?);
            }
            "--group-timeout" => {
                let v = it.next().ok_or_else(|| missing("--group-timeout"))?;
                opts.group_timeout = Some(parse_secs(v, "--group-timeout")?);
            }
            "--out" => {
                let v = it.next().ok_or_else(|| missing("--out"))?;
                opts.out = Some(v.clone());
            }
            "--count" => {
                let v = it.next().ok_or_else(|| missing("--count"))?;
                opts.count = Some(parse_num(v, "--count")?);
            }
            "--hostile" => opts.hostile = true,
            "--jobs" => {
                let v = it.next().ok_or_else(|| missing("--jobs"))?;
                opts.jobs = Some(parse_num(v, "--jobs")?);
            }
            "--retries" => {
                let v = it.next().ok_or_else(|| missing("--retries"))?;
                opts.retries = Some(parse_num(v, "--retries")?);
            }
            "--journal" => {
                let v = it.next().ok_or_else(|| missing("--journal"))?;
                opts.journal = Some(v.clone());
            }
            "--cma" => {
                let v = it.next().ok_or_else(|| missing("--cma"))?;
                opts.cma_binary = Some(v.clone());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(CmaError::Usage(format!("unknown option `{flag}`")));
            }
            positional => opts.positional.push(positional.to_string()),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CmaError> {
    value
        .parse()
        .map_err(|_| CmaError::Usage(format!("invalid value `{value}` for `{flag}`")))
}

/// Parses a positive seconds value (fractions allowed: `0.25`).
fn parse_secs(value: &str, flag: &str) -> Result<f64, CmaError> {
    let secs: f64 = parse_num(value, flag)?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(CmaError::Usage(format!(
            "invalid value `{value}` for `{flag}` (expected a nonnegative number of seconds)"
        )));
    }
    Ok(secs)
}

/// Parses `d=10,x=0.5` into variable bindings.
fn parse_valuation(spec: &str) -> Result<Vec<(Var, f64)>, CmaError> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (name, value) = part.split_once('=').ok_or_else(|| {
                CmaError::Usage(format!(
                    "invalid valuation entry `{part}` (expected var=value)"
                ))
            })?;
            let value: f64 = value.parse().map_err(|_| {
                CmaError::Usage(format!(
                    "invalid number `{value}` in valuation entry `{part}`"
                ))
            })?;
            Ok((Var::new(name.trim()), value))
        })
        .collect()
}

fn parse_f64_list(spec: &str, flag: &str) -> Result<Vec<f64>, CmaError> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| CmaError::Usage(format!("invalid number `{part}` for `{flag}`")))
        })
        .collect()
}

fn read_source(path: &str) -> Result<String, CmaError> {
    std::fs::read_to_string(path).map_err(|e| CmaError::io(path, e))
}

/// Applies every analysis knob of `opts` shared by `analyze`/`tail` and
/// `suite run` (labels are call-site specific).  One place to wire a new
/// flag, so the two paths cannot drift.
fn apply_analysis_opts<B: LpBackend>(mut analysis: Analysis<B>, opts: &AnalyzeOpts) -> Analysis<B> {
    analysis = analysis
        .soundness(!opts.no_soundness)
        .check(!opts.no_check)
        .check_pruning(!opts.no_check_pruning)
        .check_nonneg_cost(opts.nonneg_cost);
    if let Some(degree) = opts.degree {
        analysis = analysis.degree(degree);
    }
    if let Some(d) = opts.poly_degree {
        analysis = analysis.poly_degree(d);
    }
    if let Some(d) = opts.max_poly_degree {
        analysis = analysis.max_poly_degree(d);
    }
    if let Some(from) = opts.escalate {
        analysis = analysis.escalate_from(from);
    }
    if let Some(mode) = opts.mode {
        analysis = analysis.mode(mode);
    }
    if let Some(pricing) = opts.pricing {
        analysis = analysis.pricing(pricing);
    }
    if let Some(factor) = opts.factor {
        analysis = analysis.factor(factor);
    }
    if let Some(dual_pricing) = opts.dual_pricing {
        analysis = analysis.dual_pricing(dual_pricing);
    }
    if let Some(dual_ratio) = opts.dual_ratio {
        analysis = analysis.dual_ratio(dual_ratio);
    }
    if opts.no_presolve {
        analysis = analysis.presolve(false);
    }
    if let Some(threads) = opts.threads {
        analysis = analysis.threads(threads);
    }
    if let Some(secs) = opts.timeout {
        analysis = analysis.timeout(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(secs) = opts.group_timeout {
        analysis = analysis.group_timeout(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(valuation) = &opts.valuation {
        analysis = analysis.valuation(valuation.clone());
    }
    if let Some(tail) = &opts.tail {
        analysis = analysis.tail_at(tail.iter().copied());
    }
    analysis
}

fn configured_analysis(source: &str, path: &str, opts: &AnalyzeOpts) -> Result<Analysis, CmaError> {
    let analysis = Analysis::parse(source)
        .map_err(|e| e.with_context(format!("while parsing `{path}`")))?
        .label(opts.label.clone().unwrap_or_else(|| path.to_string()));
    Ok(apply_analysis_opts(analysis, opts))
}

/// Runs a configured pipeline with the `--backend` the user picked.
fn run_with_backend<B: LpBackend>(
    analysis: Analysis<B>,
    backend: BackendChoice,
) -> Result<AnalysisReport, CmaError> {
    match backend {
        BackendChoice::Dense => analysis.run(),
        BackendChoice::Sparse => analysis.backend(SparseBackend).run(),
    }
}

/// Runs `f` with panic containment: a panic anywhere inside the analysis
/// becomes a structured [`CmaError::Internal`] carrying the program path,
/// instead of aborting the process.  One bad program must produce one bad
/// exit status — never take a batch driver (or the corpus runner's
/// bookkeeping of *why* a child died) down with it.
fn contain_panics<T>(path: &str, f: impl FnOnce() -> Result<T, CmaError>) -> Result<T, CmaError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "analysis panicked".to_string());
        Err(CmaError::internal(path, message))
    })
}

/// Test-only failure injection for the corpus runner's isolation tests:
/// `CMA_CRASH_ON=needle` aborts (an uncontainable process death) and
/// `CMA_PANIC_ON=needle` panics (contained by [`contain_panics`]) when the
/// program path contains the needle.
fn injected_failure(path: &str) {
    if let Ok(needle) = std::env::var("CMA_CRASH_ON") {
        if !needle.is_empty() && path.contains(&needle) {
            eprintln!("cma: injected crash for `{path}`");
            std::process::abort();
        }
    }
    if let Ok(needle) = std::env::var("CMA_PANIC_ON") {
        if !needle.is_empty() && path.contains(&needle) {
            panic!("injected panic for `{path}`");
        }
    }
}

fn cmd_analyze(args: &[String], tail_only: bool) -> Result<(), CmaError> {
    let opts = parse_opts(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CmaError::Usage(
            "expected exactly one <file.appl> argument".into(),
        ));
    };
    if tail_only && opts.tail.is_none() {
        return Err(CmaError::Usage(
            "`cma tail` requires `--thresholds d1,d2,…`".into(),
        ));
    }
    let source = read_source(path)?;
    let report = contain_panics(path, || {
        injected_failure(path);
        run_with_backend(configured_analysis(&source, path, &opts)?, opts.backend)
    })
    .map_err(|e| {
        print_check_diagnostics(&e);
        e.with_context(format!("while analyzing `{path}`"))
    })?;
    // Checker warnings surface once, on stderr, so `--json` stdout stays a
    // single machine-readable object (which carries them too).
    if !opts.json {
        if let Some(c) = &report.check {
            for d in &c.diagnostics {
                eprintln!("{d}");
            }
        }
    }
    if opts.json {
        println!("{}", report.to_json());
    } else if tail_only {
        println!("tail bounds for {path} (degree {}):", report.degree);
        for t in &report.tail {
            println!("  P[C >= {:.4}] <= {:.6}", t.threshold, t.probability);
        }
    } else {
        print!("{report}");
    }
    Ok(())
}

/// Prints the individual diagnostics of a failed static check to stderr
/// (the error itself renders only the one-line summary).
fn print_check_diagnostics(e: &CmaError) {
    if let Some(report) = e.check_report() {
        for d in report.diagnostics() {
            eprintln!("{d}");
        }
    }
}

/// The checker configuration shared by `cma check` and the automatic checks
/// of `analyze`/`simulate`: a `--valuation` binding counts as initialized.
fn check_config(opts: &AnalyzeOpts) -> CheckConfig {
    CheckConfig {
        nonneg_cost: opts.nonneg_cost,
        assume_init: opts
            .valuation
            .iter()
            .flatten()
            .map(|(v, _)| v.clone())
            .collect(),
    }
}

fn cmd_check(args: &[String]) -> Result<(), CmaError> {
    let opts = parse_opts(args)?;
    if opts.positional.is_empty() {
        return Err(CmaError::Usage(
            "expected at least one <file.appl> argument".into(),
        ));
    }
    let config = check_config(&opts);
    let many = opts.positional.len() > 1;
    let mut failed: Option<CmaError> = None;
    for path in &opts.positional {
        let source = read_source(path)?;
        let report = check::check_source(&source, &config)
            .map_err(|e| CmaError::from(e).with_context(format!("while parsing `{path}`")))?;
        if opts.json {
            // One object per line (label spliced into the report object), so
            // multi-file runs stream as JSON lines.
            let body = report.to_json();
            println!(
                "{{\"label\":{},{}",
                json::string(path),
                body.strip_prefix('{').unwrap_or(&body)
            );
        } else {
            if many {
                println!("{path}:");
            }
            println!("{report}");
        }
        let denied = report.has_errors() || (opts.deny_warnings && report.warning_count() > 0);
        if denied && failed.is_none() {
            failed = Some(CmaError::Check(Box::new(report)).with_context(format!("in `{path}`")));
        }
    }
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), CmaError> {
    use central_moment_analysis::sim::{simulate, try_simulate_with, SimConfig};

    let opts = parse_opts(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CmaError::Usage(
            "expected exactly one <file.appl> argument".into(),
        ));
    };
    let source = read_source(path)?;
    let program = central_moment_analysis::parse_program(&source)
        .map_err(|e| CmaError::from(e).with_context(format!("while parsing `{path}`")))?;
    // Same contract as `analyze`: checker errors abort before any trial runs
    // (a strict simulation of a use-before-init program would only confirm
    // what the checker already proved), warnings print once.
    if !opts.no_check {
        let report = check::check_source(&source, &check_config(&opts))
            .map_err(|e| CmaError::from(e).with_context(format!("while parsing `{path}`")))?;
        for d in report.diagnostics() {
            eprintln!("{d}");
        }
        if report.has_errors() {
            return Err(CmaError::Check(Box::new(report))
                .with_context(format!("while simulating `{path}`")));
        }
    }
    let mut config = SimConfig {
        strict_init: opts.strict_init,
        ..SimConfig::default()
    };
    if let Some(trials) = opts.trials {
        config.trials = trials;
    }
    if let Some(seed) = opts.seed {
        config.seed = seed;
    }
    if let Some(max_steps) = opts.max_steps {
        config.max_steps = max_steps;
    }
    if let Some(valuation) = &opts.valuation {
        config.initial = valuation.clone();
    }
    if let Some(secs) = opts.timeout {
        config.timeout = Some(std::time::Duration::from_secs_f64(secs));
    }
    // Strict mode may legitimately abort a trial on an uninitialized read, so
    // it takes the fallible entry point.  Panic containment mirrors
    // `analyze`: one pathological program yields one structured error.
    let stats = contain_panics(path, || {
        if opts.strict_init {
            try_simulate_with(&program, &config, |_| {})
                .map_err(|e| CmaError::from(e).with_context(format!("while simulating `{path}`")))
        } else {
            Ok(simulate(&program, &config))
        }
    })?;
    if opts.json {
        println!(
            "{}",
            json::object([
                ("label", json::string(path)),
                ("trials", stats.len().to_string()),
                ("seed", config.seed.to_string()),
                ("cutoff_trials", stats.cutoff_trials().to_string()),
                ("uninit_reads", stats.uninit_reads().to_string()),
                ("timed_out", stats.timed_out().to_string()),
                ("mean", json::num(stats.mean())),
                ("variance", json::num(stats.variance())),
                ("skewness", json::num(stats.skewness())),
                ("kurtosis", json::num(stats.kurtosis())),
                (
                    "raw_moments",
                    json::array((1..=4).map(|k| json::num(stats.raw_moment(k)))),
                ),
                ("min", json::num(stats.min())),
                ("max", json::num(stats.max())),
            ])
        );
    } else {
        println!(
            "simulation of {path}: {} trials, seed {}",
            stats.len(),
            config.seed
        );
        if stats.timed_out() {
            println!(
                "  warning: wall-clock budget ran out after {} of {} trials \
                 (statistics cover the completed prefix)",
                stats.len(),
                config.trials
            );
        }
        if stats.cutoff_trials() > 0 {
            println!(
                "  warning: {} trials hit the step budget",
                stats.cutoff_trials()
            );
        }
        if stats.uninit_reads() > 0 {
            println!(
                "  warning: {} reads of uninitialized variables (evaluated as 0; \
                 rerun with --strict-init to make them fatal)",
                stats.uninit_reads()
            );
        }
        println!("  E[C]      = {:.6}", stats.mean());
        println!("  E[C^2]    = {:.6}", stats.raw_moment(2));
        println!("  V[C]      = {:.6}", stats.variance());
        println!("  skewness  = {:.6}", stats.skewness());
        println!("  kurtosis  = {:.6}", stats.kurtosis());
        println!("  range     = [{:.4}, {:.4}]", stats.min(), stats.max());
    }
    Ok(())
}

/// Resolves a `suite run` id: qualified ids (`running/rdwalk`) are exact;
/// bare names are accepted when unambiguous and rejected with the matching
/// qualified ids otherwise.
fn resolve_benchmark(name: &str) -> Result<Benchmark, CmaError> {
    let matches = suite::find_benchmarks(name);
    match matches.len() {
        0 => Err(CmaError::Usage(format!(
            "unknown benchmark `{name}`; run `cma suite list`"
        ))),
        1 => Ok(matches.into_iter().next().expect("one match")),
        _ => {
            let ids = matches
                .iter()
                .map(|b| b.qualified_name())
                .collect::<Vec<_>>()
                .join(", ");
            Err(CmaError::Usage(format!(
                "ambiguous benchmark `{name}` (matches {ids}); use the qualified id"
            )))
        }
    }
}

fn cmd_suite(args: &[String]) -> Result<(), CmaError> {
    let Some(action) = args.first() else {
        return Err(CmaError::Usage(
            "expected `suite list` or `suite run <name|all>`".into(),
        ));
    };
    match action.as_str() {
        "list" => {
            let opts = parse_opts(&args[1..])?;
            let benchmarks = suite::all_benchmarks();
            if opts.json {
                // Rows go through the shared report JSON writer, so the
                // encoders of `suite list` and `analyze --json` cannot drift.
                let rows = benchmarks.iter().map(|b| {
                    json::object([
                        ("name", json::string(&b.qualified_name())),
                        ("suite", json::string(&b.suite)),
                        ("degree", b.degree.to_string()),
                        ("description", json::string(&b.description)),
                    ])
                });
                println!("{}", json::array(rows));
            } else {
                println!("{} benchmarks:", benchmarks.len());
                for b in &benchmarks {
                    println!(
                        "  {:<26} (degree {})  {}",
                        b.qualified_name(),
                        b.degree,
                        b.description
                    );
                }
            }
            Ok(())
        }
        "run" => {
            let opts = parse_opts(&args[1..])?;
            let [name] = opts.positional.as_slice() else {
                return Err(CmaError::Usage("expected `suite run <name|all>`".into()));
            };
            let selected: Vec<Benchmark> = if name == "all" {
                suite::all_benchmarks()
            } else {
                vec![resolve_benchmark(name)?]
            };
            let mut json_rows = Vec::new();
            let mut failures = 0usize;
            for b in &selected {
                let mut analysis = apply_analysis_opts(Analysis::benchmark(b), &opts);
                if let Some(label) = &opts.label {
                    analysis = analysis.label(label.clone());
                }
                match run_with_backend(analysis, opts.backend) {
                    Ok(report) => {
                        if opts.json {
                            json_rows.push(report.to_json());
                        } else {
                            print!("{report}");
                            println!();
                        }
                    }
                    Err(e) => {
                        failures += 1;
                        if opts.json {
                            json_rows.push(json::object([
                                ("label", json::string(&b.qualified_name())),
                                ("error", json::string(&e.to_string())),
                            ]));
                        } else {
                            println!("{}: {e}", b.qualified_name());
                            println!();
                        }
                    }
                }
            }
            if opts.json {
                println!("{}", json::array(json_rows));
            } else if failures > 0 {
                println!("({failures} benchmark(s) not analyzable at the requested degree)");
            }
            Ok(())
        }
        other => Err(CmaError::Usage(format!(
            "unknown suite action `{other}` (expected list or run)"
        ))),
    }
}

/// Expands `corpus run` positionals: directories contribute their `.appl`
/// files (sorted, for deterministic journals), plain paths pass through.
fn collect_corpus(positional: &[String]) -> Result<Vec<std::path::PathBuf>, CmaError> {
    let mut programs = Vec::new();
    for arg in positional {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let mut files: Vec<_> = std::fs::read_dir(&path)
                .map_err(|e| CmaError::io(arg, e))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "appl"))
                .collect();
            files.sort();
            programs.extend(files);
        } else {
            programs.push(path);
        }
    }
    if programs.is_empty() {
        return Err(CmaError::Usage(
            "`cma corpus run` found no programs (expected .appl files or directories)".into(),
        ));
    }
    Ok(programs)
}

/// Analysis flags forwarded verbatim to every child `cma analyze` process
/// of a corpus campaign.  (`--timeout` is *not* forwarded: the runner
/// derives the child's soft budget from the hard per-program deadline.)
fn corpus_passthrough(opts: &AnalyzeOpts) -> Vec<String> {
    let mut args = Vec::new();
    let mut push_val = |flag: &str, value: String| {
        args.push(flag.to_string());
        args.push(value);
    };
    if let Some(v) = opts.degree {
        push_val("--degree", v.to_string());
    }
    if let Some(v) = opts.poly_degree {
        push_val("--poly-degree", v.to_string());
    }
    if let Some(v) = opts.max_poly_degree {
        push_val("--max-poly-degree", v.to_string());
    }
    if let Some(mode) = opts.mode {
        push_val(
            "--mode",
            match mode {
                SolveMode::Global => "global".to_string(),
                SolveMode::Compositional => "compositional".to_string(),
            },
        );
    }
    if opts.backend == BackendChoice::Sparse {
        push_val("--backend", "sparse".to_string());
    }
    if let Some(v) = opts.group_timeout {
        push_val("--group-timeout", v.to_string());
    }
    if opts.no_presolve {
        args.push("--no-presolve".to_string());
    }
    if opts.no_soundness {
        args.push("--no-soundness".to_string());
    }
    if opts.no_check {
        args.push("--no-check".to_string());
    }
    if opts.nonneg_cost {
        args.push("--nonneg-cost".to_string());
    }
    args
}

fn cmd_corpus(args: &[String]) -> Result<(), CmaError> {
    use cma_corpus::{run_campaign, write_corpus, CampaignConfig};

    let Some(action) = args.first() else {
        return Err(CmaError::Usage(
            "expected `corpus gen --out DIR` or `corpus run <file|dir>…`".into(),
        ));
    };
    match action.as_str() {
        "gen" => {
            let opts = parse_opts(&args[1..])?;
            let Some(out) = &opts.out else {
                return Err(CmaError::Usage(
                    "`cma corpus gen` requires `--out DIR`".into(),
                ));
            };
            let seed = opts.seed.unwrap_or(1);
            let count = opts.count.unwrap_or(100);
            let dir = std::path::Path::new(out);
            let paths =
                write_corpus(dir, seed, count, opts.hostile).map_err(|e| CmaError::io(out, e))?;
            if opts.json {
                println!(
                    "{}",
                    json::object([
                        ("dir", json::string(out)),
                        ("seed", seed.to_string()),
                        ("count", paths.len().to_string()),
                        (
                            "programs",
                            json::array(paths.iter().map(|p| json::string(&p.to_string_lossy())),),
                        ),
                    ])
                );
            } else {
                println!(
                    "wrote {} programs to {out} (seeds {seed}..{}{})",
                    paths.len(),
                    seed + count as u64,
                    if opts.hostile {
                        ", plus hostile.appl"
                    } else {
                        ""
                    }
                );
            }
            Ok(())
        }
        "run" => {
            let opts = parse_opts(&args[1..])?;
            let programs = collect_corpus(&opts.positional)?;
            let cma = match &opts.cma_binary {
                Some(path) => std::path::PathBuf::from(path),
                None => {
                    std::env::current_exe().map_err(|e| CmaError::io("current executable", e))?
                }
            };
            let config = CampaignConfig {
                cma,
                programs,
                jobs: opts.jobs.unwrap_or(4),
                timeout: std::time::Duration::from_secs_f64(opts.timeout.unwrap_or(10.0)),
                retries: opts.retries.unwrap_or(1),
                journal: std::path::PathBuf::from(
                    opts.journal.as_deref().unwrap_or("corpus.journal.ndjson"),
                ),
                analyze_args: corpus_passthrough(&opts),
            };
            let report = run_campaign(&config)
                .map_err(|e| CmaError::io(config.journal.display().to_string(), e))?;
            if opts.json {
                println!("{}", report.to_json());
            } else {
                print!("{report}");
            }
            // Timeouts and rejected programs are expected in the wild;
            // crashes mean containment failed somewhere and must fail CI.
            if report.crashes() > 0 {
                return Err(CmaError::Internal {
                    path: None,
                    message: format!(
                        "{} program(s) crashed the analyzer (see the journal at `{}`)",
                        report.crashes(),
                        config.journal.display()
                    ),
                });
            }
            Ok(())
        }
        other => Err(CmaError::Usage(format!(
            "unknown corpus action `{other}` (expected gen or run)"
        ))),
    }
}
