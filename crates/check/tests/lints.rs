//! Golden tests over the `examples/lints/` fixtures: one deliberately bad
//! program per diagnostic code, each of which must produce exactly that
//! diagnostic at the expected line:column.

use std::path::PathBuf;

use cma_check::{check_source, CheckConfig, Code, Severity};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/lints")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Each fixture yields exactly one diagnostic: the seeded code, at the
/// seeded position.
#[test]
fn each_fixture_reports_its_seeded_code_at_the_right_position() {
    let expected: [(&str, Code, Severity, (usize, usize)); 7] = [
        (
            "cma001_use_before_init.appl",
            Code::UseBeforeInit,
            Severity::Warning,
            (4, 3),
        ),
        (
            "cma002_refuted_branch.appl",
            Code::RefutedBranch,
            Severity::Warning,
            (5, 3),
        ),
        (
            "cma003_invalid_dist.appl",
            Code::InvalidDistribution,
            Severity::Error,
            (3, 3),
        ),
        (
            "cma004_stuck_loop.appl",
            Code::StuckLoopGuard,
            Severity::Warning,
            (6, 3),
        ),
        (
            "cma005_unused_var.appl",
            Code::UnusedVariable,
            Severity::Warning,
            (4, 3),
        ),
        (
            "cma006_undefined_call.appl",
            Code::BadCall,
            Severity::Error,
            (3, 3),
        ),
        (
            "cma007_negative_tick.appl",
            Code::NegativeTick,
            Severity::Error,
            (4, 3),
        ),
    ];
    // CMA007 only fires under the nonnegative-cost mode; enabling it must
    // not perturb any other fixture's single diagnostic.
    let config = CheckConfig {
        nonneg_cost: true,
        ..CheckConfig::default()
    };
    for (name, code, severity, (line, col)) in expected {
        let report = check_source(&fixture(name), &config).expect("fixtures parse");
        assert_eq!(
            report.diagnostics().len(),
            1,
            "{name}: expected exactly one diagnostic, got:\n{report}"
        );
        let d = &report.diagnostics()[0];
        assert_eq!(d.code(), code, "{name}");
        assert_eq!(d.severity(), severity, "{name}");
        let lc = d.line_col().expect("resolved against the source map");
        assert_eq!((lc.line, lc.col), (line, col), "{name}");
        assert!(d.snippet().is_some(), "{name}: caret snippet missing");
    }
}

/// Without `nonneg_cost` the negative-tick fixture is clean — the analysis
/// itself handles nonmonotone costs.
#[test]
fn negative_tick_fixture_is_clean_by_default() {
    let report = check_source(
        &fixture("cma007_negative_tick.appl"),
        &CheckConfig::default(),
    )
    .unwrap();
    assert!(report.is_clean(), "{report}");
}

/// The refuted-branch and stuck-loop fixtures export the facts the
/// inference engine prunes with.
#[test]
fn warning_fixtures_export_range_facts() {
    let branch = check_source(
        &fixture("cma002_refuted_branch.appl"),
        &CheckConfig::default(),
    )
    .unwrap();
    assert_eq!(branch.facts().refuted_count(), 1);

    let unused = check_source(&fixture("cma005_unused_var.appl"), &CheckConfig::default()).unwrap();
    assert_eq!(unused.facts().dead_template_vars().len(), 1);
}
