//! The checker's end-to-end guarantee, property-tested: a generated program
//! the checker accepts *without any diagnostic* never aborts a strict-mode
//! simulation — no read of an uninitialized variable, no draw from an
//! invalid distribution.
//!
//! The generator lives in `cma-corpus` (it also drives `cma corpus gen`
//! campaigns); it deliberately produces defective programs too (reads of
//! never-written variables, reversed uniform bounds) — those are exactly
//! the cases the checker must flag, so they are skipped rather than
//! simulated.

use cma_check::{check_source, CheckConfig};
use cma_corpus::gen_program;
use cma_sim::{try_simulate_with, SimConfig};
use proptest::prelude::*;

/// Guards the property below against rotting into a vacuous skip-everything
/// test: a healthy share of generated programs must parse, check clean, and
/// actually get simulated.
#[test]
fn the_generator_produces_enough_clean_programs() {
    let mut clean = 0;
    let mut flagged = 0;
    for seed in 0..200 {
        match check_source(&gen_program(seed), &CheckConfig::default()) {
            Ok(r) if r.is_clean() => clean += 1,
            Ok(_) => flagged += 1,
            Err(_) => {}
        }
    }
    assert!(
        clean >= 20,
        "only {clean}/200 generated programs check clean"
    );
    assert!(
        flagged >= 20,
        "only {flagged}/200 exercise the checker's gate"
    );
}

proptest! {
    #[test]
    fn check_accepted_programs_survive_strict_simulation(seed in 0u64..400) {
        let source = gen_program(seed);
        // Not every random seed yields a parseable statement sequence (the
        // `;` placement around blocks is heuristic); skip those.
        let Ok(report) = check_source(&source, &CheckConfig::default()) else {
            return;
        };
        // The property only covers programs the checker accepts cleanly.
        if !report.is_clean() {
            return;
        }
        let program = cma_appl::parse_program(&source).expect("checked programs validate");
        let config = SimConfig {
            trials: 25,
            seed,
            max_steps: 10_000,
            strict_init: true,
            ..Default::default()
        };
        let stats = try_simulate_with(&program, &config, |_| {})
            .unwrap_or_else(|e| panic!("strict simulation aborted on:\n{source}\n{e}"));
        prop_assert_eq!(stats.uninit_reads(), 0);
    }
}
