//! The checker's end-to-end guarantee, property-tested: a generated program
//! the checker accepts *without any diagnostic* never aborts a strict-mode
//! simulation — no read of an uninitialized variable, no draw from an
//! invalid distribution.
//!
//! The generator deliberately produces defective programs too (reads of
//! never-written variables, reversed uniform bounds); those are exactly the
//! cases the checker must flag, so they are skipped rather than simulated.

use cma_check::{check_source, CheckConfig};
use cma_sim::{try_simulate_with, SimConfig};
use proptest::prelude::*;

/// A tiny deterministic PRNG (splitmix64) so one `u64` seed drives the whole
/// program shape.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn var(&mut self) -> &'static str {
        ["x", "y", "z"][self.pick(3) as usize]
    }
}

/// One statement of a random program.  Depth caps nesting; the generator
/// may read variables that were never written and may emit invalid
/// distribution parameters — the checker is the gate.
fn gen_stmt(g: &mut Gen, depth: usize, out: &mut Vec<String>, indent: usize) {
    let pad = "  ".repeat(indent);
    match g.pick(if depth == 0 { 5 } else { 7 }) {
        0 => out.push(format!("{pad}{} := {}", g.var(), g.pick(5))),
        1 => out.push(format!("{pad}{} := {} + {}", g.var(), g.var(), g.pick(3))),
        2 => {
            // Half the time the uniform bounds are reversed (CMA003 bait).
            let a = g.pick(4) as i64;
            let b = if g.pick(2) == 0 { a + 2 } else { a - 1 };
            out.push(format!("{pad}{} ~ uniform({a}, {b})", g.var()));
        }
        3 => out.push(format!("{pad}tick({})", g.pick(4) + 1)),
        4 => out.push(format!("{pad}skip")),
        5 => {
            out.push(format!("{pad}if {} < {} then", g.var(), g.pick(4)));
            gen_stmt(g, depth - 1, out, indent + 1);
            out.push(format!("{pad}else"));
            gen_stmt(g, depth - 1, out, indent + 1);
            out.push(format!("{pad}fi"));
        }
        _ => {
            let v = g.var();
            out.push(format!("{pad}while {v} < {} do", g.pick(3) + 1));
            // Always advance the guard variable so the trial terminates
            // within the step budget (the checker would otherwise just
            // flag CMA004 and skip the case).
            out.push(format!("{pad}  {v} := {v} + 1"));
            out.push(format!("{pad}od"));
        }
    }
}

fn gen_program(seed: u64) -> String {
    let mut g = Gen(seed);
    let mut body = Vec::new();
    // Prelude: most variables start sampled from a wide range, so guards
    // over them stay statically undecided; a variable the prelude skips is
    // exactly the CMA001 bait once the epilogue reads it.
    for v in ["x", "y", "z"] {
        if g.pick(4) < 3 {
            body.push(format!("  {v} ~ uniform(-2, 3)"));
        }
    }
    let n = 2 + g.pick(4) as usize;
    for _ in 0..n {
        gen_stmt(&mut g, 2, &mut body, 1);
    }
    // Epilogue: read every variable, so no write is ever dead (CMA005
    // cannot fire) and every missing initialization is caught (CMA001
    // always fires for it).  `sink` is written before it is read.
    body.push("  sink := x + y".to_string());
    body.push("  sink := sink + z".to_string());
    // The grammar separates statements with `;`, but block keywords
    // (then/else/fi/do/od) are not statements — join lines, then add `;`
    // only after lines that end a statement and are followed by one.
    let mut source = String::from("func main() begin\n");
    for (i, line) in body.iter().enumerate() {
        source.push_str(line);
        let ends_stmt = !line.trim_end().ends_with("then")
            && !line.trim_end().ends_with("else")
            && !line.trim_end().ends_with("do");
        let next_opens = body
            .get(i + 1)
            .is_some_and(|l| matches!(l.trim(), "else" | "fi" | "od") || l.trim() == "fi");
        if ends_stmt && i + 1 < body.len() && !next_opens {
            source.push(';');
        }
        source.push('\n');
    }
    source.push_str("end\n");
    source
}

/// Guards the property below against rotting into a vacuous skip-everything
/// test: a healthy share of generated programs must parse, check clean, and
/// actually get simulated.
#[test]
fn the_generator_produces_enough_clean_programs() {
    let mut clean = 0;
    let mut flagged = 0;
    for seed in 0..200 {
        match check_source(&gen_program(seed), &CheckConfig::default()) {
            Ok(r) if r.is_clean() => clean += 1,
            Ok(_) => flagged += 1,
            Err(_) => {}
        }
    }
    assert!(
        clean >= 20,
        "only {clean}/200 generated programs check clean"
    );
    assert!(
        flagged >= 20,
        "only {flagged}/200 exercise the checker's gate"
    );
}

proptest! {
    #[test]
    fn check_accepted_programs_survive_strict_simulation(seed in 0u64..400) {
        let source = gen_program(seed);
        // Not every random seed yields a parseable statement sequence (the
        // `;` placement around blocks is heuristic); skip those.
        let Ok(report) = check_source(&source, &CheckConfig::default()) else {
            return;
        };
        // The property only covers programs the checker accepts cleanly.
        if !report.is_clean() {
            return;
        }
        let program = cma_appl::parse_program(&source).expect("checked programs validate");
        let config = SimConfig {
            trials: 25,
            seed,
            max_steps: 10_000,
            initial: Vec::new(),
            strict_init: true,
        };
        let stats = try_simulate_with(&program, &config, |_| {})
            .unwrap_or_else(|e| panic!("strict simulation aborted on:\n{source}\n{e}"));
        prop_assert_eq!(stats.uninit_reads(), 0);
    }
}
