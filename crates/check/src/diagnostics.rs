//! Structured diagnostics with stable codes.
//!
//! Every lint the checker can raise has a stable `CMAnnn` code so that CI
//! jobs, golden tests, and editor integrations can match on it without
//! parsing prose.  A [`Diagnostic`] carries the source [`Span`] of the
//! offending statement and, once resolved against a [`SourceMap`], a
//! 1-based line:column plus a caret-annotated snippet.

use std::fmt;

use cma_appl::{LineCol, SourceMap, Span};

/// Stable lint codes.  The numeric part never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// CMA001 — a variable may be read before it is initialized.
    UseBeforeInit,
    /// CMA002 — a branch (or loop body) is statically unreachable.
    RefutedBranch,
    /// CMA003 — constant distribution/probability parameters are invalid.
    InvalidDistribution,
    /// CMA004 — no variable of a loop guard is ever written in the body.
    StuckLoopGuard,
    /// CMA005 — a variable is written but never read.
    UnusedVariable,
    /// CMA006 — a call to an undefined function, or unconditional recursion.
    BadCall,
    /// CMA007 — a negative `tick` under the nonnegative-cost soundness mode.
    NegativeTick,
}

impl Code {
    /// The stable `CMAnnn` string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UseBeforeInit => "CMA001",
            Code::RefutedBranch => "CMA002",
            Code::InvalidDistribution => "CMA003",
            Code::StuckLoopGuard => "CMA004",
            Code::UnusedVariable => "CMA005",
            Code::BadCall => "CMA006",
            Code::NegativeTick => "CMA007",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How severe a diagnostic is.  Errors abort analysis/simulation; warnings
/// are advisory unless promoted by `--deny warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the program is well-formed but probably not what was meant.
    Warning,
    /// The program cannot be analyzed or simulated meaningfully.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One checker finding: code, severity, message, and source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    code: Code,
    severity: Severity,
    message: String,
    span: Span,
    line_col: Option<LineCol>,
    snippet: Option<String>,
}

impl Diagnostic {
    /// A new, unresolved diagnostic at `span`.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span,
            line_col: None,
            snippet: None,
        }
    }

    /// Fills in line:column and the caret snippet from the source map.
    /// Diagnostics at dummy spans (builder-constructed programs) stay
    /// unresolved.
    pub fn resolve(&mut self, map: &SourceMap) {
        if !self.span.is_dummy() {
            self.line_col = Some(map.line_col(self.span.start));
            self.snippet = Some(map.snippet(self.span));
        }
    }

    /// The stable lint code.
    pub fn code(&self) -> Code {
        self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The human-readable message (no position information).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The byte span of the offending statement.
    pub fn span(&self) -> Span {
        self.span
    }

    /// 1-based line:column, when resolved against a source map.
    pub fn line_col(&self) -> Option<LineCol> {
        self.line_col
    }

    /// The caret-annotated source snippet, when resolved.
    pub fn snippet(&self) -> Option<&str> {
        self.snippet.as_deref()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(lc) = self.line_col {
            write!(f, "\n --> {lc}")?;
        }
        if let Some(snippet) = &self.snippet {
            write!(f, "\n{snippet}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::UseBeforeInit.as_str(), "CMA001");
        assert_eq!(Code::RefutedBranch.as_str(), "CMA002");
        assert_eq!(Code::InvalidDistribution.as_str(), "CMA003");
        assert_eq!(Code::StuckLoopGuard.as_str(), "CMA004");
        assert_eq!(Code::UnusedVariable.as_str(), "CMA005");
        assert_eq!(Code::BadCall.as_str(), "CMA006");
        assert_eq!(Code::NegativeTick.as_str(), "CMA007");
    }

    #[test]
    fn display_with_and_without_resolution() {
        let mut d = Diagnostic::new(
            Code::UnusedVariable,
            Severity::Warning,
            "variable `w` is written but never read",
            Span::new(8, 14),
        );
        assert_eq!(
            d.to_string(),
            "warning[CMA005]: variable `w` is written but never read"
        );
        let map = SourceMap::new("w := 1;\nw := 2\n");
        d.resolve(&map);
        let text = d.to_string();
        assert!(text.contains(" --> 2:1"), "{text}");
        assert!(text.contains("w := 2"), "{text}");
        assert!(text.contains('^'), "{text}");
    }
}
