//! Structural (flow-insensitive) lints: invalid constant parameters
//! (CMA003), bad calls and unconditional recursion (CMA006), and negative
//! ticks under the nonnegative-cost soundness mode (CMA007).
//!
//! These passes walk every statement of every unit, including code the
//! interval analysis proves unreachable — a malformed distribution is a
//! defect of the program text regardless of reachability.

use std::collections::{BTreeMap, BTreeSet};

use cma_appl::{Program, Stmt, StmtKind};

use crate::diagnostics::{Code, Diagnostic, Severity};
use crate::CheckConfig;

pub(crate) fn check(program: &Program, config: &CheckConfig, diags: &mut Vec<Diagnostic>) {
    for (_, body) in crate::units(program) {
        walk(body, &mut |stmt| lint_stmt(program, config, stmt, diags));
    }
    lint_unconditional_recursion(program, diags);
}

/// Applies `visit` to `stmt` and every statement nested inside it.
pub(crate) fn walk(stmt: &Stmt, visit: &mut dyn FnMut(&Stmt)) {
    visit(stmt);
    match stmt.kind() {
        StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
            walk(a, visit);
            walk(b, visit);
        }
        StmtKind::While(_, s) => walk(s, visit),
        StmtKind::Seq(ss) => {
            for s in ss {
                walk(s, visit);
            }
        }
        _ => {}
    }
}

fn lint_stmt(program: &Program, config: &CheckConfig, stmt: &Stmt, diags: &mut Vec<Diagnostic>) {
    match stmt.kind() {
        StmtKind::Sample(x, d) => {
            if let Err(msg) = d.validate() {
                diags.push(Diagnostic::new(
                    Code::InvalidDistribution,
                    Severity::Error,
                    format!("cannot sample `{}`: {msg}", x.name()),
                    stmt.span(),
                ));
            }
        }
        StmtKind::IfProb(p, _, _) if !(0.0..=1.0).contains(p) => {
            diags.push(Diagnostic::new(
                Code::InvalidDistribution,
                Severity::Error,
                format!("branch probability {p} is not in [0, 1]"),
                stmt.span(),
            ));
        }
        StmtKind::Call(f) if program.function(f).is_none() => {
            diags.push(Diagnostic::new(
                Code::BadCall,
                Severity::Error,
                format!("call to undefined function `{f}`"),
                stmt.span(),
            ));
        }
        StmtKind::Tick(c) if config.nonneg_cost && *c < 0.0 => {
            diags.push(Diagnostic::new(
                Code::NegativeTick,
                Severity::Error,
                format!(
                    "tick({c}) is negative, but the nonnegative-cost soundness \
                     mode requires every tick to be >= 0"
                ),
                stmt.span(),
            ));
        }
        _ => {}
    }
}

/// Warns (CMA006) about every function whose strongly connected component
/// in the call graph recurses on *every* execution path: once entered, such
/// a function can never return.
fn lint_unconditional_recursion(program: &Program, diags: &mut Vec<Diagnostic>) {
    let graph = program.call_graph();
    let closure = transitive_closure(&graph);
    let names: BTreeSet<&String> = graph.keys().collect();

    let mut flagged: BTreeSet<String> = BTreeSet::new();
    for name in &names {
        if flagged.contains(name.as_str()) {
            continue;
        }
        // `name` lies on a cycle iff it can reach itself through >= 1 edge.
        let reach = &closure[name.as_str()];
        if !reach.contains(name.as_str()) {
            continue;
        }
        // The SCC of `name`: everything it reaches that reaches it back.
        let scc: BTreeSet<String> = reach
            .iter()
            .filter(|g| closure.get(*g).is_some_and(|r| r.contains(name.as_str())))
            .cloned()
            .collect();
        let diverges = scc.iter().all(|g| {
            program
                .function(g)
                .is_some_and(|f| must_call_into(f.body(), &scc))
        });
        if !diverges {
            continue;
        }
        for g in &scc {
            flagged.insert(g.clone());
            let span = program
                .function(g)
                .map(|f| f.body().span())
                .unwrap_or_default();
            diags.push(Diagnostic::new(
                Code::BadCall,
                Severity::Warning,
                format!("function `{g}` recurses on every path and can never return"),
                span,
            ));
        }
    }
}

/// Whether every execution path through `stmt` performs a call into `targets`.
fn must_call_into(stmt: &Stmt, targets: &BTreeSet<String>) -> bool {
    match stmt.kind() {
        StmtKind::Call(f) => targets.contains(f),
        StmtKind::Seq(ss) => ss.iter().any(|s| must_call_into(s, targets)),
        StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
            must_call_into(a, targets) && must_call_into(b, targets)
        }
        // A loop body may execute zero times.
        _ => false,
    }
}

/// Reachability closure of the call graph (callees of callees, transitively).
pub(crate) fn transitive_closure(
    graph: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closure: BTreeMap<String, BTreeSet<String>> = graph.clone();
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = closure.clone();
        for reach in closure.values_mut() {
            let mut add = BTreeSet::new();
            for g in reach.iter() {
                if let Some(next) = snapshot.get(g) {
                    add.extend(next.iter().cloned());
                }
            }
            let before = reach.len();
            reach.extend(add);
            changed |= reach.len() != before;
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use cma_appl::parse_program_unchecked;

    use super::*;

    fn codes(source: &str) -> Vec<(&'static str, Severity)> {
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        check(&program, &CheckConfig::default(), &mut diags);
        diags
            .iter()
            .map(|d| (d.code().as_str(), d.severity()))
            .collect()
    }

    #[test]
    fn invalid_distribution_and_probability_are_errors() {
        let got = codes(
            "func main() begin\n  x ~ uniform(2, 1);\n  if prob(1.5) then skip else skip fi\nend\n",
        );
        assert_eq!(
            got,
            vec![("CMA003", Severity::Error), ("CMA003", Severity::Error)]
        );
    }

    #[test]
    fn undefined_call_is_an_error() {
        assert_eq!(
            codes("func main() begin call ghost end\n"),
            vec![("CMA006", Severity::Error)]
        );
    }

    #[test]
    fn unconditional_recursion_is_a_warning() {
        let source = "func spin() begin tick(1); call spin end\nfunc main() begin skip end\n";
        assert_eq!(codes(source), vec![("CMA006", Severity::Warning)]);
    }

    #[test]
    fn guarded_recursion_is_fine() {
        let source =
            "func f() begin if x < 3 then call f else skip fi end\nfunc main() begin call f end\n";
        assert!(codes(source).is_empty());
    }

    #[test]
    fn mutual_unconditional_recursion_flags_both() {
        let source =
            "func a() begin call b end\nfunc b() begin call a end\nfunc main() begin skip end\n";
        let got = codes(source);
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .all(|(c, s)| *c == "CMA006" && *s == Severity::Warning));
    }

    #[test]
    fn negative_tick_only_under_nonneg_mode() {
        let source = "func main() begin tick(-2) end\n";
        assert!(codes(source).is_empty());
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        let config = CheckConfig {
            nonneg_cost: true,
            ..CheckConfig::default()
        };
        check(&program, &config, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::NegativeTick);
        assert_eq!(diags[0].severity(), Severity::Error);
    }
}
