//! Interval abstract interpretation (CMA002, CMA004) and range-fact export.
//!
//! A forward pass over each unit (`main` and every function body) tracks a
//! box `var -> [lo, hi]` per program point, starting from the unit's
//! precondition.  Loop heads iterate to a post-fixpoint with standard
//! widening (a moving bound jumps to infinity) followed by one narrowing
//! step; calls havoc every variable the callee transitively modifies.
//!
//! Out of this fall two lints — statically-refuted branches (CMA002) and
//! loops whose guard no body write can ever change (CMA004) — and the
//! [`RangeFacts`] the inference engine uses to skip derivation work for
//! branches that cannot be taken.

use std::collections::{BTreeMap, BTreeSet};

use cma_appl::{BranchFact, Cond, Expr, Program, RangeFacts, Stmt, StmtKind, Var};
use cma_semiring::Interval;

use crate::diagnostics::{Code, Diagnostic, Severity};
use crate::structural::transitive_closure;

/// Abstract store: absent variables are unbounded (top).
type Env = BTreeMap<Var, Interval>;

/// Cap on widening rounds; with delayed widening the fixpoint converges in
/// a handful of rounds, the cap only guards pathological inputs.
const MAX_ROUNDS: usize = 24;

pub(crate) fn check(program: &Program, diags: &mut Vec<Diagnostic>, facts: &mut RangeFacts) {
    let trans_mod = transitively_modified(program);
    for (unit, body) in crate::units(program) {
        let preconds: &[Cond] = if unit == "main" {
            program.precondition()
        } else {
            program
                .function(unit)
                .map(|f| f.precondition())
                .unwrap_or(&[])
        };
        let mut env = Env::new();
        for c in preconds {
            if let Some(refined) = constrain(&env, c) {
                env = refined;
            }
        }
        if !env.is_empty() {
            facts.set_entry_ranges(unit, env.clone());
        }
        let mut pass = Pass {
            trans_mod: &trans_mod,
            diags: &mut *diags,
            facts: &mut *facts,
            reporting: true,
        };
        pass.exec(Some(env), body);
    }
}

/// Variables each function modifies directly or through (possibly
/// recursive) calls — the havoc set for `call f`.
fn transitively_modified(program: &Program) -> BTreeMap<String, BTreeSet<Var>> {
    let closure = transitive_closure(&program.call_graph());
    program
        .functions()
        .map(|f| {
            let mut vars = f.body().modified_vars();
            if let Some(reach) = closure.get(f.name()) {
                for g in reach {
                    if let Some(callee) = program.function(g) {
                        vars.extend(callee.body().modified_vars());
                    }
                }
            }
            (f.name().to_string(), vars)
        })
        .collect()
}

struct Pass<'a> {
    trans_mod: &'a BTreeMap<String, BTreeSet<Var>>,
    diags: &'a mut Vec<Diagnostic>,
    facts: &'a mut RangeFacts,
    /// Diagnostics and facts are suppressed while iterating a loop to its
    /// fixpoint (the body is re-executed per round); the final descent with
    /// the stable head environment reports exactly once.
    reporting: bool,
}

impl Pass<'_> {
    /// Transfer function: abstract state after `stmt`, `None` = unreachable.
    fn exec(&mut self, env: Option<Env>, stmt: &Stmt) -> Option<Env> {
        let mut env = env?;
        match stmt.kind() {
            StmtKind::Skip | StmtKind::Tick(_) => Some(env),
            StmtKind::Assign(x, e) => {
                let value = eval(&env, e);
                set(&mut env, x.clone(), value);
                Some(env)
            }
            StmtKind::Sample(x, d) => {
                match d.validate() {
                    Ok(()) => {
                        let (lo, hi) = d.support();
                        set(&mut env, x.clone(), Interval::new(lo, hi));
                    }
                    // Malformed distribution (CMA003 elsewhere): no range.
                    Err(_) => {
                        env.remove(x);
                    }
                }
                Some(env)
            }
            StmtKind::Call(f) => {
                match self.trans_mod.get(f) {
                    Some(havoc) => {
                        for v in havoc {
                            env.remove(v);
                        }
                    }
                    // Undefined callee (CMA006 elsewhere): havoc everything.
                    None => env.clear(),
                }
                Some(env)
            }
            StmtKind::If(c, then_branch, else_branch) => match cond_truth(&env, c) {
                Some(true) => {
                    self.record(
                        stmt,
                        BranchFact::ElseUnreachable,
                        else_branch,
                        format!("condition `{c}` always holds; the `else` branch is unreachable"),
                    );
                    self.exec(constrain(&env, c), then_branch)
                }
                Some(false) => {
                    self.record(
                        stmt,
                        BranchFact::ThenUnreachable,
                        then_branch,
                        format!(
                            "condition `{c}` is statically refuted; the `then` branch is unreachable"
                        ),
                    );
                    self.exec(constrain(&env, &c.negate()), else_branch)
                }
                None => {
                    let out_then = self.exec(constrain(&env, c), then_branch);
                    let out_else = self.exec(constrain(&env, &c.negate()), else_branch);
                    join_states(out_then, out_else)
                }
            },
            StmtKind::IfProb(_, a, b) => {
                let out_a = self.exec(Some(env.clone()), a);
                let out_b = self.exec(Some(env), b);
                join_states(out_a, out_b)
            }
            StmtKind::While(c, body) => self.exec_while(env, stmt, c, body),
            StmtKind::Seq(ss) => {
                let mut state = Some(env);
                for s in ss {
                    state = self.exec(state, s);
                }
                state
            }
        }
    }

    fn exec_while(&mut self, env: Env, stmt: &Stmt, c: &Cond, body: &Stmt) -> Option<Env> {
        if cond_truth(&env, c) == Some(false) {
            self.record(
                stmt,
                BranchFact::LoopNeverEntered,
                body,
                format!("loop guard `{c}` is statically refuted; the body never runs"),
            );
            return constrain(&env, &c.negate()).or(Some(env));
        }

        // CMA004: nothing in the body (including callees) ever writes a
        // guard variable — once entered, the loop cannot terminate.
        let guard_vars = c.vars();
        if self.reporting && !guard_vars.is_empty() {
            let written = self.modified_with_calls(body);
            if guard_vars.is_disjoint(&written) {
                self.diags.push(Diagnostic::new(
                    Code::StuckLoopGuard,
                    Severity::Warning,
                    format!(
                        "no variable of loop guard `{c}` is written in the loop body; \
                         once entered the loop never terminates"
                    ),
                    stmt.span(),
                ));
            }
        }

        // Loop-head fixpoint: join for two rounds (precision), then widen.
        let was_reporting = std::mem::replace(&mut self.reporting, false);
        let mut head = env.clone();
        let mut converged = false;
        for round in 0..MAX_ROUNDS {
            let body_out = self.exec(constrain(&head, c), body);
            let next = join_states(Some(env.clone()), body_out).unwrap_or_else(|| env.clone());
            if env_subset(&next, &head) {
                converged = true;
                break;
            }
            head = if round < 2 {
                join_env(&head, &next)
            } else {
                widen_env(&head, &next)
            };
        }
        if converged {
            // One narrowing step recovers precision lost to widening; it is
            // sound only below a genuine post-fixpoint.
            if let Some(body_out) = self.exec(constrain(&head, c), body) {
                head = join_env(&env, &body_out);
            }
        } else {
            // Bail out soundly: entry values for unmodified variables, top
            // for everything the body can touch.
            head = env.clone();
            for v in self.modified_with_calls(body) {
                head.remove(&v);
            }
        }
        self.reporting = was_reporting;

        // Final descent through the body with the stable head environment:
        // this is the pass that reports nested diagnostics and facts.
        let _ = self.exec(constrain(&head, c), body);

        // After the loop the guard is false; `None` here means the guard
        // can never become false (e.g. `while true`) — code after the loop
        // is unreachable.
        constrain(&head, &c.negate())
    }

    /// Variables `body` modifies directly or via the functions it calls.
    fn modified_with_calls(&self, body: &Stmt) -> BTreeSet<Var> {
        let mut vars = body.modified_vars();
        for callee in body.called_functions() {
            if let Some(more) = self.trans_mod.get(&callee) {
                vars.extend(more.iter().cloned());
            }
        }
        vars
    }

    /// Records a refuted-branch fact, plus the CMA002 diagnostic unless the
    /// dead code is a bare `skip` (the parser's stand-in for a missing
    /// `else`, where a lint would be noise).
    fn record(&mut self, stmt: &Stmt, fact: BranchFact, dead: &Stmt, message: String) {
        if !self.reporting {
            return;
        }
        self.facts.insert_refuted(stmt.span(), fact);
        if !matches!(dead.kind(), StmtKind::Skip) {
            self.diags.push(Diagnostic::new(
                Code::RefutedBranch,
                Severity::Warning,
                message,
                stmt.span(),
            ));
        }
    }
}

/// Binds `var` in `env`, treating top as "unbound".
fn set(env: &mut Env, var: Var, value: Interval) {
    if value.is_top() {
        env.remove(&var);
    } else {
        env.insert(var, value);
    }
}

/// Abstract evaluation of an expression. Non-finite constants (overflowed
/// literals) evaluate to top so the arithmetic below never produces NaN.
fn eval(env: &Env, e: &Expr) -> Interval {
    match e {
        Expr::Var(v) => env.get(v).copied().unwrap_or_else(Interval::top),
        Expr::Const(c) => {
            if c.is_finite() {
                Interval::point(*c)
            } else {
                Interval::top()
            }
        }
        Expr::Add(a, b) => eval(env, a).add(eval(env, b)),
        Expr::Sub(a, b) => eval(env, a).sub(eval(env, b)),
        Expr::Mul(a, b) => eval(env, a).mul(eval(env, b)),
    }
}

/// Three-valued truth of a condition under `env`.
fn cond_truth(env: &Env, c: &Cond) -> Option<bool> {
    match c {
        Cond::True => Some(true),
        Cond::Not(inner) => cond_truth(env, inner).map(|b| !b),
        Cond::And(a, b) => match (cond_truth(env, a), cond_truth(env, b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Cond::Le(a, b) => le_truth(eval(env, a), eval(env, b), false),
        Cond::Lt(a, b) => le_truth(eval(env, a), eval(env, b), true),
        Cond::Ge(a, b) => le_truth(eval(env, b), eval(env, a), false),
        Cond::Gt(a, b) => le_truth(eval(env, b), eval(env, a), true),
        Cond::Eq(a, b) => {
            let ia = eval(env, a);
            let ib = eval(env, b);
            if ia.width() == 0.0 && ib.width() == 0.0 && ia.lo() == ib.lo() {
                Some(true)
            } else if ia.intersect(ib).is_none() {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// Truth of `ia <= ib` (or `<` when `strict`).
fn le_truth(ia: Interval, ib: Interval, strict: bool) -> Option<bool> {
    if strict {
        if ia.hi() < ib.lo() {
            Some(true)
        } else if ia.lo() >= ib.hi() {
            Some(false)
        } else {
            None
        }
    } else if ia.hi() <= ib.lo() {
        Some(true)
    } else if ia.lo() > ib.hi() {
        Some(false)
    } else {
        None
    }
}

/// Refines `env` under the assumption that `c` holds; `None` = infeasible.
/// Strict comparisons are approximated by their closed counterparts, which
/// is sound (the refined box still contains every satisfying state).
fn constrain(env: &Env, c: &Cond) -> Option<Env> {
    if cond_truth(env, c) == Some(false) {
        return None;
    }
    match c {
        Cond::True => Some(env.clone()),
        Cond::Not(inner) => {
            let negated = inner.negate();
            if matches!(negated, Cond::Not(_)) {
                // Negation did not push through (e.g. `not (a and b)`):
                // keep the unrefined box, which is always sound.
                Some(env.clone())
            } else {
                constrain(env, &negated)
            }
        }
        Cond::And(a, b) => {
            let refined = constrain(env, a)?;
            constrain(&refined, b)
        }
        Cond::Le(a, b) | Cond::Lt(a, b) => bound_le(env, a, b),
        Cond::Ge(a, b) | Cond::Gt(a, b) => bound_le(env, b, a),
        Cond::Eq(a, b) => {
            let mut out = env.clone();
            let meet = eval(&out, a).intersect(eval(&out, b))?;
            if let Expr::Var(x) = &**a {
                set(&mut out, x.clone(), meet);
            }
            if let Expr::Var(y) = &**b {
                set(&mut out, y.clone(), meet);
            }
            Some(out)
        }
    }
}

/// Refines `env` under `a <= b`, tightening whichever side is a variable.
fn bound_le(env: &Env, a: &Expr, b: &Expr) -> Option<Env> {
    let mut out = env.clone();
    let ia = eval(&out, a);
    let ib = eval(&out, b);
    if ia.lo() > ib.hi() {
        return None;
    }
    if let Expr::Var(x) = a {
        let clamped = ia.intersect(Interval::new(f64::NEG_INFINITY, ib.hi()))?;
        set(&mut out, x.clone(), clamped);
    }
    if let Expr::Var(y) = b {
        let clamped = ib.intersect(Interval::new(ia.lo(), f64::INFINITY))?;
        set(&mut out, y.clone(), clamped);
    }
    Some(out)
}

/// Join of two reachability states (`None` is the identity).
fn join_states(a: Option<Env>, b: Option<Env>) -> Option<Env> {
    match (a, b) {
        (Some(ea), Some(eb)) => Some(join_env(&ea, &eb)),
        (Some(e), None) | (None, Some(e)) => Some(e),
        (None, None) => None,
    }
}

/// Pointwise join: a variable stays bounded only if bounded on both sides.
fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (v, ia) in a {
        if let Some(ib) = b.get(v) {
            let joined = ia.join(*ib);
            if !joined.is_top() {
                out.insert(v.clone(), joined);
            }
        }
    }
    out
}

/// Whether `next` is contained in `head` (pointwise; absent = top).
fn env_subset(next: &Env, head: &Env) -> bool {
    head.iter()
        .all(|(v, ih)| next.get(v).map(|iv| iv.subset_of(ih)).unwrap_or(false))
}

/// Pointwise widening: bounds that moved between `head` and `next` jump to
/// infinity; stable bounds survive.
fn widen_env(head: &Env, next: &Env) -> Env {
    let mut out = Env::new();
    for (v, ih) in head {
        if let Some(iv) = next.get(v) {
            let widened = ih.widen(ih.join(*iv));
            if !widened.is_top() {
                out.insert(v.clone(), widened);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use cma_appl::parse_program_unchecked;

    use super::*;

    fn run(source: &str) -> (Vec<Diagnostic>, RangeFacts) {
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        let mut facts = RangeFacts::new();
        check(&program, &mut diags, &mut facts);
        (diags, facts)
    }

    #[test]
    fn refuted_then_branch_is_found_with_a_fact() {
        let source = "func main() begin\n  x := 1;\n  if x < 0 then tick(5) else tick(1) fi\nend\n";
        let (diags, facts) = run(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code(), Code::RefutedBranch);
        assert!(
            diags[0].message().contains("then"),
            "{}",
            diags[0].message()
        );
        assert_eq!(facts.refuted_count(), 1);
        assert_eq!(
            facts.refuted().next().map(|(_, f)| *f),
            Some(BranchFact::ThenUnreachable)
        );
    }

    #[test]
    fn tautological_guard_flags_the_else_branch() {
        let source =
            "func main() begin\n  x := 2;\n  if x >= 0 then tick(1) else tick(9) fi\nend\n";
        let (diags, facts) = run(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code(), Code::RefutedBranch);
        assert!(
            diags[0].message().contains("else"),
            "{}",
            diags[0].message()
        );
        assert_eq!(
            facts.refuted().next().map(|(_, f)| *f),
            Some(BranchFact::ElseUnreachable)
        );
    }

    #[test]
    fn refuted_branch_over_elided_else_records_fact_without_lint() {
        // The fact is still valuable for pruning, but linting a `skip` the
        // parser inserted would be noise.
        let source = "func main() begin\n  x := 2;\n  if x >= 0 then tick(1) fi\nend\n";
        let (diags, facts) = run(source);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(facts.refuted_count(), 1);
    }

    #[test]
    fn never_entered_loop_is_found() {
        let source =
            "func main() begin\n  n := 0;\n  while n >= 1 do tick(1); n := n - 1 od\nend\n";
        let (diags, facts) = run(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code(), Code::RefutedBranch);
        assert!(diags[0].message().contains("never runs"));
        assert_eq!(
            facts.refuted().next().map(|(_, f)| *f),
            Some(BranchFact::LoopNeverEntered)
        );
    }

    #[test]
    fn stuck_loop_guard_is_found() {
        let source =
            "pre n >= 1\nfunc main() begin\n  while n >= 1 do x := x + 1; tick(1) od\nend\n";
        let (diags, _) = run(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code(), Code::StuckLoopGuard);
    }

    #[test]
    fn guard_written_through_a_call_is_not_stuck() {
        let source = "pre n >= 1\nfunc dec() begin n := n - 1 end\nfunc main() begin\n  while n >= 1 do call dec; tick(1) od\nend\n";
        let (diags, _) = run(source);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn while_true_is_not_a_stuck_guard() {
        // `while true` is idiomatic for "loop until break-by-prob"; with no
        // guard variables CMA004 stays silent. Code after it is simply
        // unreachable, which is not this pass's concern.
        let source = "func main() begin\n  while true do x := x + 1; tick(1) od\nend\n";
        let (diags, _) = run(source);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn widening_terminates_and_keeps_stable_bounds() {
        // x counts 0,1,2,... — unbounded above, but never below 0, and the
        // guard is honest, so nothing is flagged.
        let source = "pre n >= 0\nfunc main() begin\n  x := 0;\n  while x < n do x := x + 1; tick(1) od\nend\n";
        let (diags, _) = run(source);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nested_loop_diagnostics_are_reported_once() {
        let source = "pre n >= 0\nfunc main() begin\n  while 1 <= n do\n    if n < 0 then tick(7) else tick(1) fi;\n    n := n - 1\n  od\nend\n";
        let (diags, facts) = run(source);
        let refuted: Vec<_> = diags
            .iter()
            .filter(|d| d.code() == Code::RefutedBranch)
            .collect();
        assert_eq!(refuted.len(), 1, "{diags:?}");
        assert_eq!(facts.refuted_count(), 1);
    }

    #[test]
    fn sampling_bounds_feed_refutation() {
        let source = "func main() begin\n  t ~ uniform(0, 1);\n  if t > 5 then tick(9) else tick(1) fi\nend\n";
        let (diags, facts) = run(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code(), Code::RefutedBranch);
        assert_eq!(
            facts.refuted().next().map(|(_, f)| *f),
            Some(BranchFact::ThenUnreachable)
        );
    }

    #[test]
    fn entry_ranges_are_exported_per_unit() {
        let source =
            "pre d > 0\nfunc f()\n  pre x >= 2\nbegin tick(1) end\nfunc main() begin call f end\n";
        let (_, facts) = run(source);
        let main_ranges = facts.entry_ranges("main").unwrap();
        assert_eq!(main_ranges[&Var::new("d")].lo(), 0.0);
        let f_ranges = facts.entry_ranges("f").unwrap();
        assert_eq!(f_ranges[&Var::new("x")].lo(), 2.0);
    }

    #[test]
    fn clean_programs_stay_clean() {
        let fig2 = "pre d > 0\nfunc rdwalk()\n  pre x < d + 2\n  pre d > 0\nbegin\n  if x < d then\n    t ~ uniform(-1, 2);\n    x := x + t;\n    call rdwalk;\n    tick(1)\n  fi\nend\nfunc main() begin\n  x := 0;\n  call rdwalk\nend\n";
        let (diags, facts) = run(fig2);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(facts.refuted_count(), 0);
    }
}
