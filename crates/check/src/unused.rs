//! Unused-variable analysis (CMA005).
//!
//! A variable that is written somewhere but read nowhere — not in an
//! expression, not in a guard, not in a precondition — cannot influence
//! control flow or cost.  Besides the lint, each such variable is exported
//! in [`RangeFacts::dead_template_vars`]: moment templates need not range
//! over it, which shrinks the LP the inference engine generates.

use std::collections::{BTreeMap, BTreeSet};

use cma_appl::{Program, RangeFacts, Span, StmtKind, Var};

use crate::diagnostics::{Code, Diagnostic, Severity};
use crate::structural::walk;

pub(crate) fn check(program: &Program, diags: &mut Vec<Diagnostic>, facts: &mut RangeFacts) {
    let mut reads: BTreeSet<Var> = BTreeSet::new();
    for c in program.precondition() {
        reads.extend(c.vars());
    }
    for f in program.functions() {
        for c in f.precondition() {
            reads.extend(c.vars());
        }
    }

    let mut first_write: BTreeMap<Var, Span> = BTreeMap::new();
    for (_, body) in crate::units(program) {
        walk(body, &mut |stmt| match stmt.kind() {
            StmtKind::Assign(x, e) => {
                reads.extend(e.vars());
                first_write.entry(x.clone()).or_insert_with(|| stmt.span());
            }
            StmtKind::Sample(x, _) => {
                first_write.entry(x.clone()).or_insert_with(|| stmt.span());
            }
            StmtKind::If(c, _, _) | StmtKind::While(c, _) => {
                reads.extend(c.vars());
            }
            _ => {}
        });
    }

    for (var, span) in first_write {
        if !reads.contains(&var) {
            diags.push(Diagnostic::new(
                Code::UnusedVariable,
                Severity::Warning,
                format!("variable `{}` is written but never read", var.name()),
                span,
            ));
            facts.insert_dead_template_var(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use cma_appl::parse_program_unchecked;

    use super::*;

    fn run(source: &str) -> (Vec<Diagnostic>, RangeFacts) {
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        let mut facts = RangeFacts::new();
        check(&program, &mut diags, &mut facts);
        (diags, facts)
    }

    #[test]
    fn write_only_variable_is_flagged_and_exported() {
        let (diags, facts) = run("func main() begin\n  waste ~ uniform(0, 1);\n  tick(1)\nend\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::UnusedVariable);
        assert!(diags[0].message().contains("`waste`"));
        assert!(facts.dead_template_vars().contains(&Var::new("waste")));
    }

    #[test]
    fn reads_anywhere_count() {
        // Guard read, expression read, and precondition read all silence it.
        let (d1, _) = run("func main() begin x := 1; if x < 2 then tick(1) fi end\n");
        assert!(d1.is_empty());
        let (d2, _) = run("func main() begin x := 1; y := x end\n");
        assert_eq!(d2.len(), 1, "y is still unused");
        assert!(d2[0].message().contains("`y`"));
        let (d3, _) = run("pre x >= 0\nfunc main() begin x := 1 end\n");
        assert!(d3.is_empty());
    }

    #[test]
    fn self_update_counts_as_a_read() {
        let (diags, _) = run("func main() begin x := x + 1 end\n");
        assert!(diags.is_empty());
    }
}
