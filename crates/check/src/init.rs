//! Definite-initialization analysis (CMA001).
//!
//! Appl has no declarations: a variable springs into existence on first
//! write, and the simulator reads unwritten variables as 0.  That default is
//! almost never intended, so this pass warns about every variable that *may*
//! be read before it *must* have been written.
//!
//! The analysis is interprocedural: each function gets a summary — the set
//! of variables it may read before initializing them itself, and the set it
//! initializes on every path — computed as a fixpoint over the call graph
//! (recursion makes one round insufficient).  Variables mentioned in a
//! precondition count as initialized inputs: a precondition is exactly the
//! caller's promise about the entry state.

use std::collections::{BTreeMap, BTreeSet};

use cma_appl::{Cond, Program, Span, Stmt, StmtKind, Var};

use crate::diagnostics::{Code, Diagnostic, Severity};
use crate::CheckConfig;

/// Per-function summary for the interprocedural fixpoint.
#[derive(Clone, PartialEq)]
struct Summary {
    /// Variables the function may read before initializing them itself
    /// (beyond its own precondition).
    reads: BTreeSet<Var>,
    /// Variables the function initializes on every path.
    inits: BTreeSet<Var>,
}

/// A deduplicated first-read event: where `var` was first read while
/// possibly uninitialized, and through which call (if any).
struct Event {
    var: Var,
    span: Span,
    via: Option<String>,
}

/// Accumulates read-before-init events, one per variable per unit.
#[derive(Default)]
struct Collector {
    seen: BTreeSet<Var>,
    events: Vec<Event>,
}

impl Collector {
    fn read(&mut self, var: &Var, init: &BTreeSet<Var>, span: Span, via: Option<&str>) {
        if !init.contains(var) && self.seen.insert(var.clone()) {
            self.events.push(Event {
                var: var.clone(),
                span,
                via: via.map(str::to_string),
            });
        }
    }
}

pub(crate) fn check(program: &Program, config: &CheckConfig, diags: &mut Vec<Diagnostic>) {
    let summaries = compute_summaries(program);

    // Report on `main` only: reads inside a function surface at the call
    // site that reaches them, which is where the missing write belongs.
    let mut init = cond_vars(program.precondition());
    init.extend(config.assume_init.iter().cloned());
    let mut col = Collector::default();
    flow(program.main(), &mut init, &mut col, &summaries);

    for event in col.events {
        let message = match &event.via {
            Some(callee) => format!(
                "call to `{callee}` may read `{}` before it is initialized \
                 (the simulator reads uninitialized variables as 0)",
                event.var.name()
            ),
            None => format!(
                "variable `{}` may be read before it is initialized \
                 (the simulator reads uninitialized variables as 0)",
                event.var.name()
            ),
        };
        diags.push(Diagnostic::new(
            Code::UseBeforeInit,
            Severity::Warning,
            message,
            event.span,
        ));
    }
}

fn cond_vars(conds: &[Cond]) -> BTreeSet<Var> {
    let mut set = BTreeSet::new();
    for c in conds {
        set.extend(c.vars());
    }
    set
}

/// Computes function summaries to a fixpoint: `reads` grows from empty
/// (least fixpoint), `inits` shrinks from all program variables (greatest
/// fixpoint) — the right directions for recursion.
fn compute_summaries(program: &Program) -> BTreeMap<String, Summary> {
    let all_vars: BTreeSet<Var> = program.vars().into_iter().collect();
    let mut summaries: BTreeMap<String, Summary> = program
        .functions()
        .map(|f| {
            (
                f.name().to_string(),
                Summary {
                    reads: BTreeSet::new(),
                    inits: all_vars.clone(),
                },
            )
        })
        .collect();

    // Both lattices are finite and the updates are monotone, so this
    // terminates; the cap is sheer paranoia.
    for _ in 0..64 {
        let mut changed = false;
        for f in program.functions() {
            // May-reads, assuming the precondition describes the entry.
            let mut init = cond_vars(f.precondition());
            let mut col = Collector::default();
            flow(f.body(), &mut init, &mut col, &summaries);
            let reads: BTreeSet<Var> = col.events.into_iter().map(|e| e.var).collect();

            // Must-inits, from a bare entry (precondition vars are the
            // *caller's* obligation, not something the callee wrote).
            let mut inits = BTreeSet::new();
            let mut ignore = Collector::default();
            flow(f.body(), &mut inits, &mut ignore, &summaries);

            let entry = summaries.get_mut(f.name()).expect("summary seeded above");
            if entry.reads != reads || entry.inits != inits {
                entry.reads = reads;
                entry.inits = inits;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Forward must-init transfer over one statement. `init` is branch-local;
/// `col` accumulates events globally for the unit.
fn flow(
    stmt: &Stmt,
    init: &mut BTreeSet<Var>,
    col: &mut Collector,
    summaries: &BTreeMap<String, Summary>,
) {
    match stmt.kind() {
        StmtKind::Skip | StmtKind::Tick(_) => {}
        StmtKind::Assign(x, e) => {
            for v in e.vars() {
                col.read(&v, init, stmt.span(), None);
            }
            init.insert(x.clone());
        }
        StmtKind::Sample(x, _) => {
            init.insert(x.clone());
        }
        StmtKind::Call(f) => {
            if let Some(summary) = summaries.get(f) {
                for v in &summary.reads {
                    col.read(v, init, stmt.span(), Some(f));
                }
                init.extend(summary.inits.iter().cloned());
            }
        }
        StmtKind::If(c, a, b) => {
            for v in c.vars() {
                col.read(&v, init, stmt.span(), None);
            }
            let mut init_a = init.clone();
            flow(a, &mut init_a, col, summaries);
            let mut init_b = init.clone();
            flow(b, &mut init_b, col, summaries);
            *init = init_a.intersection(&init_b).cloned().collect();
        }
        StmtKind::IfProb(_, a, b) => {
            let mut init_a = init.clone();
            flow(a, &mut init_a, col, summaries);
            let mut init_b = init.clone();
            flow(b, &mut init_b, col, summaries);
            *init = init_a.intersection(&init_b).cloned().collect();
        }
        StmtKind::While(c, body) => {
            for v in c.vars() {
                col.read(&v, init, stmt.span(), None);
            }
            // The body may run zero times: reads inside are "may", writes
            // inside do not survive to the continuation.
            let mut init_body = init.clone();
            flow(body, &mut init_body, col, summaries);
        }
        StmtKind::Seq(ss) => {
            for s in ss {
                flow(s, init, col, summaries);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use cma_appl::parse_program_unchecked;

    use super::*;

    fn warnings(source: &str) -> Vec<String> {
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        check(&program, &CheckConfig::default(), &mut diags);
        diags.iter().map(|d| d.message().to_string()).collect()
    }

    #[test]
    fn direct_read_before_init_warns_once_per_variable() {
        let got = warnings("func main() begin\n  y := x + 1;\n  z := x + y\nend\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("`x`"), "{got:?}");
    }

    #[test]
    fn precondition_variables_count_as_initialized() {
        assert!(warnings("pre x >= 0\nfunc main() begin y := x + 1 end\n").is_empty());
    }

    #[test]
    fn branch_writes_do_not_definitely_initialize() {
        let source = "func main() begin\n  if prob(0.5) then x := 1 else skip fi;\n  y := x\nend\n";
        let got = warnings(source);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("`x`"), "{got:?}");
        let both = "func main() begin\n  if prob(0.5) then x := 1 else x := 2 fi;\n  y := x\nend\n";
        assert!(warnings(both).is_empty());
    }

    #[test]
    fn loop_body_writes_do_not_survive_the_loop() {
        let source = "pre n >= 0\nfunc main() begin\n  while 1 <= n do x := 1; n := n - 1 od;\n  y := x\nend\n";
        let got = warnings(source);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("`x`"), "{got:?}");
    }

    #[test]
    fn uninitialized_reads_inside_callees_surface_at_the_call_site() {
        let source = "func f() begin y := x + 1 end\nfunc main() begin call f end\n";
        let got = warnings(source);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("`f`") && got[0].contains("`x`"), "{got:?}");
        // Initializing before the call silences it.
        let fixed = "func f() begin y := x + 1 end\nfunc main() begin x := 0; call f end\n";
        assert!(warnings(fixed).is_empty());
    }

    #[test]
    fn callee_preconditions_count_as_initialized_inside_the_callee() {
        let source = "func f()\n  pre x >= 0\nbegin y := x + 1 end\nfunc main() begin call f end\n";
        assert!(warnings(source).is_empty());
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        // rdwalk-shaped recursion: `x` and `d` are covered by preconditions.
        let source = "pre d > 0\nfunc rdwalk()\n  pre x < d\nbegin\n  if x < d then t ~ uniform(-1, 2); x := x + t; call rdwalk; tick(1) fi\nend\nfunc main() begin x := 0; call rdwalk end\n";
        assert!(warnings(source).is_empty());
    }

    #[test]
    fn assume_init_silences_benchmark_inputs() {
        let source = "func main() begin y := x + 1 end\n";
        let program = parse_program_unchecked(source).unwrap();
        let mut diags = Vec::new();
        let config = CheckConfig {
            assume_init: [Var::new("x")].into_iter().collect(),
            ..CheckConfig::default()
        };
        check(&program, &config, &mut diags);
        assert!(diags.is_empty());
    }
}
