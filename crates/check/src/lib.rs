//! `cma-check` — the static checker for Appl programs.
//!
//! A multi-pass analysis over the AST that runs before moment inference or
//! simulation:
//!
//! * **structural lints** — invalid constant distribution parameters and
//!   branch probabilities (CMA003), calls to undefined functions and
//!   unconditional recursion (CMA006), negative ticks under the
//!   nonnegative-cost soundness mode (CMA007);
//! * **definite initialization** (CMA001) — an interprocedural
//!   may-read-before-init analysis; the simulator silently reads unwritten
//!   variables as 0, which is almost never intended;
//! * **interval abstract interpretation** (CMA002, CMA004) — forward
//!   analysis with widening at loop heads over [`cma_semiring::Interval`],
//!   finding statically-refuted branches and loops whose guard the body
//!   can never change;
//! * **unused variables** (CMA005) — written-never-read variables.
//!
//! Besides diagnostics, the interval and unused passes export
//! [`RangeFacts`]: refuted branches and dead variables the inference
//! engine uses to skip derivation work and shrink the generated LP.
//!
//! # Example
//!
//! ```
//! use cma_check::{check_source, CheckConfig, Code};
//!
//! let report = check_source(
//!     "func main() begin\n  x := 1;\n  if x < 0 then tick(9) else tick(1) fi\nend\n",
//!     &CheckConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(report.diagnostics().len(), 1);
//! assert_eq!(report.diagnostics()[0].code(), Code::RefutedBranch);
//! assert_eq!(report.facts().refuted_count(), 1);
//! ```

use std::collections::BTreeSet;
use std::fmt;

use cma_appl::{parse_program_unchecked, ParseError, Program, RangeFacts, SourceMap, Stmt, Var};

pub mod diagnostics;
mod init;
mod intervals;
mod structural;
mod unused;

pub use diagnostics::{Code, Diagnostic, Severity};

/// Configuration for a checker run.
#[derive(Debug, Clone, Default)]
pub struct CheckConfig {
    /// Enables CMA007: every `tick` must be nonnegative.  Off by default —
    /// the analysis handles nonmonotone costs; this mode is for users who
    /// rely on the stronger nonnegative-cost soundness argument.
    pub nonneg_cost: bool,
    /// Variables initialized externally (e.g. a benchmark valuation);
    /// reading them before a write is not a CMA001 warning.
    pub assume_init: BTreeSet<Var>,
}

/// The outcome of a checker run: diagnostics plus exported range facts.
#[derive(Debug, Clone)]
pub struct CheckReport {
    diagnostics: Vec<Diagnostic>,
    facts: RangeFacts,
}

impl CheckReport {
    /// All diagnostics, in source order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Whether any error-severity diagnostic was raised.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the run produced no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The facts exported for the inference engine.
    pub fn facts(&self) -> &RangeFacts {
        &self.facts
    }

    /// Consumes the report, keeping only the facts.
    pub fn into_facts(self) -> RangeFacts {
        self.facts
    }

    /// A one-line summary like `2 warnings, 1 error`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, what: &str) -> String {
            format!("{n} {what}{}", if n == 1 { "" } else { "s" })
        }
        match (self.error_count(), self.warning_count()) {
            (0, 0) => "no diagnostics".to_string(),
            (0, w) => plural(w, "warning"),
            (e, 0) => plural(e, "error"),
            (e, w) => format!("{}, {}", plural(e, "error"), plural(w, "warning")),
        }
    }

    /// Renders the report as a JSON object (hand-rolled; the build has no
    /// serde): diagnostics with code/severity/message/span/line/col, plus
    /// counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\
                 \"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
                d.code(),
                d.severity(),
                escape_json(d.message()),
                d.span().start,
                d.span().end,
                d.line_col()
                    .map_or("null".to_string(), |lc| lc.line.to_string()),
                d.line_col()
                    .map_or("null".to_string(), |lc| lc.col.to_string()),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks a program that is already in memory (e.g. builder-constructed).
/// Statements from the builder DSL carry dummy spans, so diagnostics have
/// no line:column and branch facts cannot be keyed — parsing from source
/// via [`check_source`] gives strictly better output.
pub fn check_program(program: &Program, config: &CheckConfig) -> CheckReport {
    run(program, config, None)
}

/// Parses `source` (without upfront validation — the checker reports
/// malformed constructs itself, with spans) and checks it.
///
/// # Errors
///
/// Returns the parse error if `source` is not syntactically valid Appl.
pub fn check_source(source: &str, config: &CheckConfig) -> Result<CheckReport, ParseError> {
    let program = parse_program_unchecked(source)?;
    let map = SourceMap::new(source);
    Ok(run(&program, config, Some(&map)))
}

fn run(program: &Program, config: &CheckConfig, map: Option<&SourceMap>) -> CheckReport {
    let mut diags = Vec::new();
    let mut facts = RangeFacts::new();
    structural::check(program, config, &mut diags);
    init::check(program, config, &mut diags);
    unused::check(program, &mut diags, &mut facts);
    intervals::check(program, &mut diags, &mut facts);
    if let Some(map) = map {
        for d in &mut diags {
            d.resolve(map);
        }
    }
    diags.sort_by_key(|d| (d.span().start, d.span().end, d.code()));
    CheckReport {
        diagnostics: diags,
        facts,
    }
}

/// The analysis units of a program: `main` first, then every function.
pub(crate) fn units(program: &Program) -> Vec<(&str, &Stmt)> {
    let mut units = vec![("main", program.main())];
    for f in program.functions() {
        units.push((f.name(), f.body()));
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_and_triangle_are_clean() {
        let fig2 = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/fig2.appl"
        ))
        .unwrap();
        let report = check_source(&fig2, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");

        let triangle = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/triangle.appl"
        ))
        .unwrap();
        let report = check_source(&triangle, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn diagnostics_carry_line_and_column() {
        let source = "func main() begin\n  x := 1;\n  if x < 0 then tick(9) else tick(1) fi\nend\n";
        let report = check_source(source, &CheckConfig::default()).unwrap();
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        let lc = d.line_col().expect("resolved against the source map");
        assert_eq!((lc.line, lc.col), (3, 3));
        assert!(d.snippet().unwrap().contains("if x < 0"));
    }

    #[test]
    fn report_summary_and_json() {
        let source = "func main() begin\n  w := 1;\n  x ~ uniform(2, 1)\nend\n";
        let report = check_source(source, &CheckConfig::default()).unwrap();
        // CMA003 error (bad uniform) + CMA005 warnings (w and x unused).
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 2);
        assert!(report.has_errors());
        assert_eq!(report.summary(), "1 error, 2 warnings");
        let json = report.to_json();
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"code\":\"CMA003\""), "{json}");
        assert!(json.contains("\"line\":3"), "{json}");
    }

    #[test]
    fn builder_programs_check_without_spans() {
        use cma_appl::build::*;
        let program = ProgramBuilder::new()
            .main(seq([assign("y", v("x")), tick(1.0)]))
            .build()
            .unwrap();
        let report = check_program(&program, &CheckConfig::default());
        // `x` read before init, `y` never read.
        assert_eq!(report.warning_count(), 2);
        assert!(report.diagnostics().iter().all(|d| d.line_col().is_none()));
        // Dummy spans cannot key branch facts, but dead vars still export.
        assert!(report.facts().dead_template_vars().contains(&Var::new("y")));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
