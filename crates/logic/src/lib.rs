//! Logical contexts for the central-moment derivation system.
//!
//! The judgment `Δ ⊢ {Γ; Q} S {Γ'; Q'}` carries a *logical context* `Γ`
//! describing the reachable states at a program point.  The paper recovers
//! these contexts with an interprocedural numeric analysis built on APRON;
//! this crate provides the lightweight substitute described in `DESIGN.md`:
//! contexts are conjunctions of **linear constraints** `e ≥ 0` collected from
//! branch guards, sampling supports, invertible assignments, and user-supplied
//! preconditions.
//!
//! The crate also provides the ingredient needed to discharge the weakening
//! rule `Γ ⊨ Q ⊒ Q'`: the set of products of context constraints (Handelman
//! certificates, the "rewrite functions" of §3.4) against which slack
//! polynomials are expressed.

pub mod constraint;
pub mod context;

pub use constraint::{LinExpr, LinearConstraint};
pub use context::Context;
