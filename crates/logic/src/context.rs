//! Logical contexts `Γ`: conjunctions of linear facts about reachable states.
//!
//! A context is updated *forward* through statements (guards add facts,
//! assignments substitute or drop facts, sampling adds support bounds, calls
//! havoc the callee's modified variables) and consumed by the weakening rule,
//! which expresses slack polynomials as conical combinations of products of
//! the context's constraints (Handelman certificates).

use std::collections::BTreeSet;

use cma_appl::ast::{Cond, Expr, Stmt, StmtKind};
use cma_appl::dist::Dist;
use cma_appl::Program;
use cma_semiring::poly::{Polynomial, Var};

use crate::constraint::{conjuncts_of, LinExpr, LinearConstraint};

/// A logical context: the conjunction of a finite set of linear constraints
/// `eᵢ ≥ 0` over program variables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Context {
    constraints: Vec<LinearConstraint>,
}

impl Context {
    /// The empty (trivially true) context.
    pub fn top() -> Self {
        Context::default()
    }

    /// Builds a context from a conjunction of Appl conditions (non-linear
    /// parts are dropped, which is sound).
    pub fn from_conditions(conds: &[Cond]) -> Self {
        let mut ctx = Context::top();
        for c in conds {
            ctx.assume(c);
        }
        ctx
    }

    /// The constraints of the context.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the context contains no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Adds a raw constraint, dropping trivial duplicates.
    pub fn add_constraint(&mut self, c: LinearConstraint) {
        if c.is_trivial() || self.constraints.contains(&c) {
            return;
        }
        self.constraints.push(c);
    }

    /// Conjoins the linear facts of an Appl condition.
    pub fn assume(&mut self, cond: &Cond) {
        for c in conjuncts_of(cond) {
            self.add_constraint(c);
        }
    }

    /// Returns a copy of the context extended with a condition.
    pub fn and(&self, cond: &Cond) -> Context {
        let mut ctx = self.clone();
        ctx.assume(cond);
        ctx
    }

    /// Removes every constraint that mentions any of `vars`.
    pub fn havoc(&mut self, vars: &BTreeSet<Var>) {
        self.constraints
            .retain(|c| !vars.iter().any(|v| c.mentions(v)));
    }

    /// Updates the context across the assignment `x := e`.
    ///
    /// If `e` is affine with a non-zero coefficient on `x`, the assignment is
    /// invertible and existing facts are rewritten; otherwise facts mentioning
    /// `x` are dropped.  When `e` is affine, the equality `x = e` over the
    /// *old* values is retained in the invertible case and added in the
    /// non-self-referential case.
    pub fn assign(&mut self, x: &Var, e: &Expr) {
        let rhs = LinExpr::from_expr(e);
        match rhs {
            Some(rhs) => {
                let a = rhs.coefficient(x);
                if a != 0.0 {
                    // Invertible update: old_x = (new_x - rest) / a.
                    let mut rest = rhs.clone();
                    let rest_without_x = {
                        let mut r = LinExpr::zero();
                        for v in rest.vars() {
                            if v != x {
                                r = r.add(&LinExpr::var(v.clone()).scale(rest.coefficient(v)));
                            }
                        }
                        r.add(&LinExpr::constant(rest.constant_term()))
                    };
                    rest = rest_without_x;
                    let inverse = LinExpr::var(x.clone()).sub(&rest).scale(1.0 / a);
                    self.constraints = self
                        .constraints
                        .iter()
                        .map(|c| c.substitute(x, &inverse))
                        .filter(|c| !c.is_trivial())
                        .collect();
                } else {
                    // Non-self-referential: drop old facts about x, add x = e.
                    let vars: BTreeSet<Var> = [x.clone()].into_iter().collect();
                    self.havoc(&vars);
                    self.add_constraint(LinearConstraint::nonneg(
                        LinExpr::var(x.clone()).sub(&rhs),
                    ));
                    self.add_constraint(LinearConstraint::nonneg(
                        rhs.sub(&LinExpr::var(x.clone())),
                    ));
                }
            }
            None => {
                let vars: BTreeSet<Var> = [x.clone()].into_iter().collect();
                self.havoc(&vars);
            }
        }
    }

    /// Updates the context across the sampling statement `x ~ d`.
    pub fn sample(&mut self, x: &Var, d: &Dist) {
        let vars: BTreeSet<Var> = [x.clone()].into_iter().collect();
        self.havoc(&vars);
        let (lo, hi) = d.support();
        if lo.is_finite() {
            self.add_constraint(LinearConstraint::nonneg(
                LinExpr::var(x.clone()).sub(&LinExpr::constant(lo)),
            ));
        }
        if hi.is_finite() {
            self.add_constraint(LinearConstraint::nonneg(
                LinExpr::constant(hi).sub(&LinExpr::var(x.clone())),
            ));
        }
    }

    /// The join of two contexts for branch merges: a fact is kept when the
    /// *other* context entails it (so the result holds on both branches).
    pub fn join(&self, other: &Context) -> Context {
        let mut result = Context::top();
        for c in &self.constraints {
            if other.entails(c) {
                result.add_constraint(c.clone());
            }
        }
        for c in &other.constraints {
            if self.entails(c) {
                result.add_constraint(c.clone());
            }
        }
        result
    }

    /// Whether every constraint holds under a valuation.
    pub fn holds(&self, valuation: &dyn Fn(&Var) -> f64) -> bool {
        self.constraints.iter().all(|c| c.holds(valuation))
    }

    /// All products of context constraints (as polynomials) with total degree
    /// at most `degree`, including the constant polynomial `1`.
    ///
    /// Every conical combination of these products is nonnegative wherever the
    /// context holds; the weakening rule searches for slack polynomials in
    /// this cone (Handelman representation).
    pub fn certificate_products(&self, degree: u32) -> Vec<Polynomial> {
        let base: Vec<Polynomial> = self
            .constraints
            .iter()
            .map(|c| c.expr().to_polynomial())
            .collect();
        let mut products = vec![Polynomial::constant(1.0)];
        // Breadth-first expansion by repeatedly multiplying with base factors.
        let mut frontier = vec![Polynomial::constant(1.0)];
        for _ in 0..degree {
            let mut next = Vec::new();
            for p in &frontier {
                for b in &base {
                    let candidate = p.mul(b);
                    if candidate.degree() <= degree
                        && !products.contains(&candidate)
                        && !next.contains(&candidate)
                    {
                        next.push(candidate);
                    }
                }
            }
            products.extend(next.clone());
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        products
    }

    /// Computes the post-context of executing `stmt` from this context.
    ///
    /// Loops and branches are handled conservatively (modified variables are
    /// havocked, guard information is added where sound); calls havoc every
    /// variable the callee may transitively modify.
    pub fn after_stmt(&self, stmt: &Stmt, program: &Program) -> Context {
        match stmt.kind() {
            StmtKind::Skip | StmtKind::Tick(_) => self.clone(),
            StmtKind::Assign(x, e) => {
                let mut ctx = self.clone();
                ctx.assign(x, e);
                ctx
            }
            StmtKind::Sample(x, d) => {
                let mut ctx = self.clone();
                ctx.sample(x, d);
                ctx
            }
            StmtKind::Call(f) => {
                let mut ctx = self.clone();
                ctx.havoc(&transitively_modified(program, f));
                // The callee's own entry precondition does not constrain the
                // *post* state, so nothing is added back.
                ctx
            }
            StmtKind::If(c, s1, s2) => {
                let then_ctx = self.and(c).after_stmt(s1, program);
                let else_ctx = self.and(&c.negate()).after_stmt(s2, program);
                then_ctx.join(&else_ctx)
            }
            StmtKind::IfProb(_, s1, s2) => {
                let a = self.after_stmt(s1, program);
                let b = self.after_stmt(s2, program);
                a.join(&b)
            }
            StmtKind::While(c, body) => {
                // The post-context of a loop is the inferred loop-head
                // invariant conjoined with the negated guard.
                self.loop_head_invariant(c, body, program).and(&c.negate())
            }
            StmtKind::Seq(stmts) => {
                let mut ctx = self.clone();
                for s in stmts {
                    ctx = ctx.after_stmt(s, program);
                }
                ctx
            }
        }
    }

    /// The context available at the head of a loop body: the inferred loop
    /// invariant conjoined with the guard.
    pub fn loop_body_entry(&self, guard: &Cond, body: &Stmt, program: &Program) -> Context {
        self.loop_head_invariant(guard, body, program).and(guard)
    }

    /// Whether the context logically entails `goal` (checked with a small LP:
    /// the minimum of `goal`'s expression over the context is non-negative).
    ///
    /// Returns `true` when the context is infeasible (vacuous entailment) and
    /// `false` when the minimum is negative or unbounded below.
    pub fn entails(&self, goal: &LinearConstraint) -> bool {
        if goal.is_trivial() {
            return true;
        }
        // Collect the variables involved.
        let mut vars: BTreeSet<Var> = goal.expr().vars().cloned().collect();
        for c in &self.constraints {
            vars.extend(c.expr().vars().cloned());
        }
        let mut lp = cma_lp::LpProblem::new();
        let lp_vars: std::collections::BTreeMap<Var, cma_lp::LpVarId> = vars
            .iter()
            .map(|v| (v.clone(), lp.add_var(v.name(), true)))
            .collect();
        let to_terms = |e: &LinExpr| -> Vec<(cma_lp::LpVarId, f64)> {
            e.vars().map(|v| (lp_vars[v], e.coefficient(v))).collect()
        };
        for c in &self.constraints {
            lp.add_constraint(
                to_terms(c.expr()),
                cma_lp::Cmp::Ge,
                -c.expr().constant_term(),
            );
        }
        lp.set_objective(to_terms(goal.expr()));
        let sol = lp.solve();
        match sol.status {
            cma_lp::LpStatus::Optimal => sol.objective + goal.expr().constant_term() >= -1e-7,
            cma_lp::LpStatus::Infeasible => true,
            _ => false,
        }
    }

    /// Infers a loop-head invariant context: the subset of candidate facts
    /// that hold on entry and are preserved by one iteration of the body under
    /// the guard (a fixpoint of the filtering step).
    ///
    /// Candidates are the facts of the incoming context plus guard facts
    /// relaxed by the body's bounded per-iteration change — the role played by
    /// the APRON-based numeric analysis in the paper's implementation.
    pub fn loop_head_invariant(&self, guard: &Cond, body: &Stmt, program: &Program) -> Context {
        let mut candidates: Vec<LinearConstraint> = self.constraints.clone();
        // Relaxed guard facts: if an iteration can decrease a guard expression
        // g by at most δ, then g ≥ −δ holds at every loop head reached from a
        // state inside the loop; it must also hold initially to be invariant,
        // which the fixpoint's entry check establishes.
        let steps = per_iteration_change(body, program);
        for g in conjuncts_of(guard) {
            let mut worst_decrease = 0.0f64;
            let mut bounded = true;
            for v in g.expr().vars() {
                let coeff = g.expr().coefficient(v);
                match steps.get(v) {
                    Some(Some(interval)) => {
                        let delta = if coeff >= 0.0 {
                            coeff * interval.lo()
                        } else {
                            coeff * interval.hi()
                        };
                        worst_decrease += delta.min(0.0);
                    }
                    Some(None) => {
                        bounded = false;
                        break;
                    }
                    None => {}
                }
            }
            if bounded {
                candidates.push(LinearConstraint::nonneg(
                    g.expr().add(&LinExpr::constant(-worst_decrease)),
                ));
            }
        }
        candidates.retain(|c| !c.is_trivial());
        candidates.dedup();

        // Keep only facts that hold on entry.
        candidates.retain(|c| self.entails(c));
        // Filter to an inductive subset.
        loop {
            let head = Context {
                constraints: candidates.clone(),
            };
            let after = head.and(guard).after_stmt(body, program);
            let kept: Vec<LinearConstraint> = candidates
                .iter()
                .filter(|c| after.entails(c))
                .cloned()
                .collect();
            if kept.len() == candidates.len() {
                break;
            }
            candidates = kept;
        }
        Context {
            constraints: candidates,
        }
    }
}

/// The per-iteration change of each variable modified by `body`, as an
/// interval when it is syntactically bounded (`x := x + c`, `x := x + noise`
/// with bounded-support noise), `None` when unbounded.
fn per_iteration_change(
    body: &Stmt,
    program: &Program,
) -> std::collections::BTreeMap<Var, Option<cma_semiring::Interval>> {
    use cma_semiring::Interval;
    // Support intervals of variables sampled within the body.
    let mut sampled: std::collections::BTreeMap<Var, Interval> = Default::default();
    collect_sampled(body, &mut sampled);

    let mut changes: std::collections::BTreeMap<Var, Option<Interval>> = Default::default();
    accumulate_changes(body, program, &sampled, &mut changes);
    changes
}

fn collect_sampled(stmt: &Stmt, out: &mut std::collections::BTreeMap<Var, cma_semiring::Interval>) {
    match stmt.kind() {
        StmtKind::Sample(x, d) => {
            let (lo, hi) = d.support();
            if lo.is_finite() && hi.is_finite() {
                out.insert(x.clone(), cma_semiring::Interval::new(lo, hi));
            }
        }
        StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
            collect_sampled(a, out);
            collect_sampled(b, out);
        }
        StmtKind::While(_, s) => collect_sampled(s, out),
        StmtKind::Seq(ss) => {
            for s in ss {
                collect_sampled(s, out);
            }
        }
        _ => {}
    }
}

fn accumulate_changes(
    stmt: &Stmt,
    program: &Program,
    sampled: &std::collections::BTreeMap<Var, cma_semiring::Interval>,
    out: &mut std::collections::BTreeMap<Var, Option<cma_semiring::Interval>>,
) {
    use cma_semiring::Interval;
    let mut record = |v: &Var, delta: Option<Interval>| {
        let entry = out
            .entry(v.clone())
            .or_insert_with(|| Some(Interval::point(0.0)));
        *entry = match (*entry, delta) {
            (Some(acc), Some(d)) => Some(acc.add(d).join(acc)),
            _ => None,
        };
    };
    match stmt.kind() {
        StmtKind::Assign(x, e) => {
            // delta = e - x must be a constant plus bounded sampled variables.
            let delta_poly = e
                .to_polynomial()
                .sub(&cma_semiring::poly::Polynomial::var(x.clone()));
            if delta_poly.degree() > 1 {
                record(x, None);
                return;
            }
            let mut interval = Interval::point(0.0);
            let mut bounded = true;
            for (m, c) in delta_poly.terms() {
                if m.is_unit() {
                    interval = interval.add(Interval::point(c));
                } else {
                    let v = m.vars().next().expect("degree-1 monomial");
                    match sampled.get(v) {
                        Some(range) => interval = interval.add(range.scale(c)),
                        None => {
                            bounded = false;
                            break;
                        }
                    }
                }
            }
            record(x, if bounded { Some(interval) } else { None });
        }
        StmtKind::Sample(x, _) => {
            // The absolute change of a freshly sampled variable is unbounded in
            // general (it depends on the previous value).
            record(x, None);
        }
        StmtKind::Call(f) => {
            for v in transitively_modified(program, f) {
                record(&v, None);
            }
        }
        StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
            accumulate_changes(a, program, sampled, out);
            accumulate_changes(b, program, sampled, out);
        }
        StmtKind::While(_, s) => {
            // Nested loops can iterate arbitrarily often.
            for v in s.modified_vars() {
                record(&v, None);
            }
        }
        StmtKind::Seq(ss) => {
            for s in ss {
                accumulate_changes(s, program, sampled, out);
            }
        }
        StmtKind::Skip | StmtKind::Tick(_) => {}
    }
}

/// Variables modified by `stmt`, including those modified by called functions.
pub fn modified_with_calls(program: &Program, stmt: &Stmt) -> BTreeSet<Var> {
    let mut vars = stmt.modified_vars();
    for f in stmt.called_functions() {
        vars.extend(transitively_modified(program, &f));
    }
    vars
}

/// Variables transitively modified by the body of function `f`.
pub fn transitively_modified(program: &Program, f: &str) -> BTreeSet<Var> {
    let mut visited = BTreeSet::new();
    let mut result = BTreeSet::new();
    let mut stack = vec![f.to_string()];
    while let Some(name) = stack.pop() {
        if !visited.insert(name.clone()) {
            continue;
        }
        if let Some(func) = program.function(&name) {
            result.extend(func.body().modified_vars());
            stack.extend(func.body().called_functions());
        }
    }
    result
}

impl std::fmt::Display for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn d() -> Var {
        Var::new("d")
    }

    fn empty_program() -> Program {
        ProgramBuilder::new().build().unwrap()
    }

    #[test]
    fn assume_and_holds() {
        let mut ctx = Context::top();
        assert!(ctx.is_empty());
        ctx.assume(&lt(v("x"), v("d")));
        ctx.assume(&ge(v("x"), cst(0.0)));
        assert_eq!(ctx.len(), 2);
        assert!(ctx.holds(&|var| if *var == x() { 1.0 } else { 2.0 }));
        assert!(!ctx.holds(&|var| if *var == x() { -1.0 } else { 2.0 }));
        // Duplicate facts are not added twice.
        ctx.assume(&lt(v("x"), v("d")));
        assert_eq!(ctx.len(), 2);
    }

    #[test]
    fn invertible_assignment_rewrites_facts() {
        // Γ = {d - x >= 0}; after x := x + t the fact becomes d - x + t >= 0.
        let mut ctx = Context::top();
        ctx.assume(&le(v("x"), v("d")));
        ctx.assign(&x(), &add(v("x"), v("t")));
        assert_eq!(ctx.len(), 1);
        let c = &ctx.constraints()[0];
        assert_eq!(c.expr().coefficient(&x()), -1.0);
        assert_eq!(c.expr().coefficient(&Var::new("t")), 1.0);
        assert_eq!(c.expr().coefficient(&d()), 1.0);
    }

    #[test]
    fn non_self_referential_assignment_adds_equality() {
        let mut ctx = Context::top();
        ctx.assume(&le(v("x"), cst(5.0)));
        ctx.assign(&x(), &cst(0.0));
        // Old fact dropped; x = 0 recorded as two inequalities.
        assert_eq!(ctx.len(), 2);
        assert!(ctx.holds(&|_| 0.0));
        assert!(!ctx.holds(&|_| 1.0));
    }

    #[test]
    fn nonlinear_assignment_havocs() {
        let mut ctx = Context::top();
        ctx.assume(&le(v("x"), cst(5.0)));
        ctx.assume(&le(v("y"), cst(2.0)));
        ctx.assign(&x(), &mul(v("x"), v("x")));
        assert_eq!(ctx.len(), 1);
        assert!(!ctx.constraints()[0].mentions(&x()));
    }

    #[test]
    fn sampling_adds_support_bounds() {
        let mut ctx = Context::top();
        ctx.assume(&le(v("t"), cst(100.0)));
        ctx.sample(&Var::new("t"), &Dist::Uniform(-1.0, 2.0));
        assert_eq!(ctx.len(), 2);
        assert!(ctx.holds(&|_| 0.0));
        assert!(!ctx.holds(&|_| 3.0));
    }

    #[test]
    fn join_keeps_common_facts() {
        let mut a = Context::top();
        a.assume(&ge(v("x"), cst(0.0)));
        a.assume(&le(v("x"), cst(5.0)));
        let mut b = Context::top();
        b.assume(&ge(v("x"), cst(0.0)));
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn certificate_products_include_constant_and_pairs() {
        let mut ctx = Context::top();
        ctx.assume(&ge(v("x"), cst(0.0)));
        ctx.assume(&le(v("x"), v("d")));
        let products = ctx.certificate_products(2);
        // 1, x, d-x, x², x(d-x), (d-x)² — six distinct products.
        assert_eq!(products.len(), 6);
        assert!(products.contains(&Polynomial::constant(1.0)));
        // Degree-1 request excludes the quadratic products.
        assert_eq!(ctx.certificate_products(1).len(), 3);
    }

    #[test]
    fn after_stmt_threads_contexts_through_control_flow() {
        let program = ProgramBuilder::new()
            .function("f", assign("x", cst(0.0)))
            .main(skip())
            .build()
            .unwrap();
        let mut ctx = Context::top();
        ctx.assume(&ge(v("d"), cst(1.0)));
        ctx.assume(&ge(v("x"), cst(0.0)));

        // A call havocs variables the callee modifies.
        let after_call = ctx.after_stmt(&call("f"), &program);
        assert_eq!(after_call.len(), 1);

        // A sequence of assignments updates facts.
        let after_seq = ctx.after_stmt(&seq([assign("x", add(v("x"), cst(1.0)))]), &program);
        assert!(after_seq.holds(&|_| 1.0));

        // A conditional joins branch facts; here both branches keep d >= 1.
        let branchy = if_then_else(lt(v("x"), cst(3.0)), assign("x", cst(1.0)), skip());
        let after_if = ctx.after_stmt(&branchy, &program);
        assert!(after_if.constraints().iter().any(|c| c.mentions(&d())));

        // A loop havocs modified variables and adds the negated guard.
        let loop_stmt = while_loop(lt(v("x"), v("d")), assign("x", add(v("x"), cst(1.0))));
        let after_loop = ctx.after_stmt(&loop_stmt, &empty_program());
        assert!(after_loop
            .constraints()
            .iter()
            .any(|c| c.expr().coefficient(&x()) == 1.0 && c.expr().coefficient(&d()) == -1.0));
    }

    #[test]
    fn loop_body_entry_adds_guard() {
        let ctx = Context::from_conditions(&[ge(v("n"), cst(0.0))]);
        let body = assign("x", add(v("x"), cst(1.0)));
        let entry = ctx.loop_body_entry(&lt(v("x"), v("n")), &body, &empty_program());
        assert!(entry
            .constraints()
            .iter()
            .any(|c| c.expr().coefficient(&x()) == -1.0));
    }

    #[test]
    fn transitive_modification_follows_call_chains() {
        let program = ProgramBuilder::new()
            .function("a", seq([assign("x", cst(1.0)), call("b")]))
            .function("b", sample("y", uniform(0.0, 1.0)))
            .main(call("a"))
            .build()
            .unwrap();
        let vars = transitively_modified(&program, "a");
        assert!(vars.contains(&Var::new("x")));
        assert!(vars.contains(&Var::new("y")));
        let vars_b = transitively_modified(&program, "b");
        assert!(!vars_b.contains(&Var::new("x")));
    }

    #[test]
    fn display_renders_conjunction() {
        let ctx = Context::from_conditions(&[ge(v("x"), cst(0.0)), le(v("x"), cst(2.0))]);
        let s = ctx.to_string();
        assert!(s.contains(">= 0"));
        assert!(s.contains("/\\"));
        assert_eq!(Context::top().to_string(), "true");
    }
}
