//! Linear expressions and constraints over program variables.

use std::collections::BTreeMap;
use std::fmt;

use cma_appl::ast::{Cond, Expr};
use cma_semiring::poly::{Monomial, Polynomial, Var};

/// An affine expression `Σ cᵢ·xᵢ + c₀` over program variables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `v`.
    pub fn var(v: Var) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1.0);
        LinExpr {
            coeffs,
            constant: 0.0,
        }
    }

    /// Converts a polynomial of degree ≤ 1 into a linear expression.
    ///
    /// Returns `None` if the polynomial has degree > 1.
    pub fn from_polynomial(p: &Polynomial) -> Option<LinExpr> {
        if p.degree() > 1 {
            return None;
        }
        let mut result = LinExpr::zero();
        for (m, c) in p.terms() {
            if m.is_unit() {
                result.constant += c;
            } else {
                let v = m.vars().next().expect("degree-1 monomial has a variable");
                *result.coeffs.entry(v.clone()).or_insert(0.0) += c;
            }
        }
        result.normalize();
        Some(result)
    }

    /// Converts an Appl expression if it is linear.
    pub fn from_expr(e: &Expr) -> Option<LinExpr> {
        LinExpr::from_polynomial(&e.to_polynomial())
    }

    fn normalize(&mut self) {
        self.coeffs.retain(|_, c| *c != 0.0);
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// The coefficient of a variable (0 if absent).
    pub fn coefficient(&self, v: &Var) -> f64 {
        self.coeffs.get(v).copied().unwrap_or(0.0)
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.coeffs.keys()
    }

    /// Whether the expression mentions `v`.
    pub fn mentions(&self, v: &Var) -> bool {
        self.coeffs.contains_key(v)
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut result = self.clone();
        for (v, c) in &other.coeffs {
            *result.coeffs.entry(v.clone()).or_insert(0.0) += c;
        }
        result.constant += other.constant;
        result.normalize();
        result
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1.0))
    }

    /// Scales the expression by `c`.
    pub fn scale(&self, c: f64) -> LinExpr {
        if c == 0.0 {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, k)| (v.clone(), k * c))
                .collect(),
            constant: self.constant * c,
        }
    }

    /// Substitutes `v := replacement` (the replacement must be affine).
    pub fn substitute(&self, v: &Var, replacement: &LinExpr) -> LinExpr {
        let coeff = self.coefficient(v);
        if coeff == 0.0 {
            return self.clone();
        }
        let mut without = self.clone();
        without.coeffs.remove(v);
        without.add(&replacement.scale(coeff))
    }

    /// Evaluates the expression under a valuation.
    pub fn eval(&self, valuation: &dyn Fn(&Var) -> f64) -> f64 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(v, c)| c * valuation(v))
                .sum::<f64>()
    }

    /// Converts the expression to a polynomial.
    pub fn to_polynomial(&self) -> Polynomial {
        let mut terms: Vec<(Monomial, f64)> = vec![(Monomial::unit(), self.constant)];
        for (v, c) in &self.coeffs {
            terms.push((Monomial::var(v.clone()), *c));
        }
        Polynomial::from_terms(terms)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_polynomial())
    }
}

/// A linear constraint in the normalized form `expr ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    expr: LinExpr,
}

impl LinearConstraint {
    /// The constraint `expr ≥ 0`.
    pub fn nonneg(expr: LinExpr) -> Self {
        LinearConstraint { expr }
    }

    /// The constraint `lhs ≤ rhs` (as `rhs − lhs ≥ 0`), if both are linear.
    pub fn le(lhs: &Expr, rhs: &Expr) -> Option<Self> {
        let l = LinExpr::from_expr(lhs)?;
        let r = LinExpr::from_expr(rhs)?;
        Some(LinearConstraint::nonneg(r.sub(&l)))
    }

    /// The underlying nonnegative expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// Whether the constraint mentions `v`.
    pub fn mentions(&self, v: &Var) -> bool {
        self.expr.mentions(v)
    }

    /// Whether the constraint holds under a valuation (with tolerance).
    pub fn holds(&self, valuation: &dyn Fn(&Var) -> f64) -> bool {
        self.expr.eval(valuation) >= -1e-9
    }

    /// Whether the constraint is trivially true (a nonnegative constant).
    pub fn is_trivial(&self) -> bool {
        self.expr.is_constant() && self.expr.constant_term() >= 0.0
    }

    /// Whether the constraint is trivially false (a negative constant).
    pub fn is_contradiction(&self) -> bool {
        self.expr.is_constant() && self.expr.constant_term() < 0.0
    }

    /// Substitutes `v := replacement` in the constraint.
    pub fn substitute(&self, v: &Var, replacement: &LinExpr) -> LinearConstraint {
        LinearConstraint {
            expr: self.expr.substitute(v, replacement),
        }
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} >= 0", self.expr)
    }
}

/// Extracts the linear facts implied by an Appl condition, dropping anything
/// non-linear or disjunctive (dropping facts is always sound for a context).
///
/// Strict comparisons are relaxed to their non-strict counterparts, matching
/// the treatment of logical contexts in the paper's implementation.
pub fn conjuncts_of(cond: &Cond) -> Vec<LinearConstraint> {
    let mut result = Vec::new();
    collect(cond, false, &mut result);
    result
}

fn collect(cond: &Cond, negated: bool, out: &mut Vec<LinearConstraint>) {
    match cond {
        Cond::True => {}
        Cond::Not(inner) => collect(inner, !negated, out),
        Cond::And(a, b) => {
            if !negated {
                collect(a, false, out);
                collect(b, false, out);
            }
            // A negated conjunction is a disjunction; no linear fact is kept.
        }
        Cond::Le(a, b) | Cond::Lt(a, b) => {
            let (lhs, rhs) = if negated { (&**b, &**a) } else { (&**a, &**b) };
            if let Some(c) = LinearConstraint::le(lhs, rhs) {
                out.push(c);
            }
        }
        Cond::Ge(a, b) | Cond::Gt(a, b) => {
            let (lhs, rhs) = if negated { (&**a, &**b) } else { (&**b, &**a) };
            if let Some(c) = LinearConstraint::le(lhs, rhs) {
                out.push(c);
            }
        }
        Cond::Eq(a, b) => {
            if !negated {
                if let Some(c) = LinearConstraint::le(a, b) {
                    out.push(c);
                }
                if let Some(c) = LinearConstraint::le(b, a) {
                    out.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn d() -> Var {
        Var::new("d")
    }

    #[test]
    fn linexpr_arithmetic() {
        let e = LinExpr::var(x()).scale(2.0).add(&LinExpr::constant(3.0));
        assert_eq!(e.coefficient(&x()), 2.0);
        assert_eq!(e.constant_term(), 3.0);
        let f = e.sub(&LinExpr::var(d()));
        assert_eq!(f.coefficient(&d()), -1.0);
        assert_eq!(f.eval(&|v| if *v == x() { 1.0 } else { 4.0 }), 1.0);
        assert!(f.mentions(&d()));
        assert!(!LinExpr::constant(5.0).mentions(&d()));
        assert!(LinExpr::constant(5.0).is_constant());
    }

    #[test]
    fn from_polynomial_rejects_nonlinear() {
        let quadratic = Polynomial::var(x()).pow(2);
        assert!(LinExpr::from_polynomial(&quadratic).is_none());
        let linear = Polynomial::var(x())
            .scale(3.0)
            .add(&Polynomial::constant(1.0));
        let e = LinExpr::from_polynomial(&linear).unwrap();
        assert_eq!(e.coefficient(&x()), 3.0);
    }

    #[test]
    fn from_expr_and_roundtrip_polynomial() {
        let e = LinExpr::from_expr(&sub(v("d"), v("x"))).unwrap();
        let p = e.to_polynomial();
        assert_eq!(p.eval(&|var| if *var == x() { 2.0 } else { 5.0 }), 3.0);
        assert!(LinExpr::from_expr(&mul(v("x"), v("x"))).is_none());
    }

    #[test]
    fn substitution_is_affine_composition() {
        // e = 2x + y; x := y - 1  =>  2y - 2 + y = 3y - 2
        let e = LinExpr::var(x())
            .scale(2.0)
            .add(&LinExpr::var(Var::new("y")));
        let replacement = LinExpr::var(Var::new("y")).sub(&LinExpr::constant(1.0));
        let s = e.substitute(&x(), &replacement);
        assert_eq!(s.coefficient(&Var::new("y")), 3.0);
        assert_eq!(s.constant_term(), -2.0);
        // Substituting an absent variable is the identity.
        assert_eq!(e.substitute(&Var::new("z"), &replacement), e);
    }

    #[test]
    fn constraint_construction_and_satisfaction() {
        // x < d  =>  d - x >= 0
        let c = conjuncts_of(&lt(v("x"), v("d")));
        assert_eq!(c.len(), 1);
        assert!(c[0].holds(&|var| if *var == x() { 1.0 } else { 3.0 }));
        assert!(!c[0].holds(&|var| if *var == x() { 5.0 } else { 3.0 }));
        assert_eq!(c[0].to_string(), "d - x >= 0");
    }

    #[test]
    fn conjuncts_handle_all_comparison_forms() {
        let cond = and(
            and(ge(v("x"), cst(0.0)), gt(v("d"), cst(1.0))),
            and(le(v("x"), v("d")), eq(v("y"), cst(2.0))),
        );
        let cs = conjuncts_of(&cond);
        // ge, gt, le contribute one each; eq contributes two.
        assert_eq!(cs.len(), 5);
    }

    #[test]
    fn negation_flips_comparisons() {
        // not (x <= d)  =>  x - d >= 0 (relaxed from x > d)
        let cs = conjuncts_of(&not(le(v("x"), v("d"))));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].expr().coefficient(&x()), 1.0);
        assert_eq!(cs[0].expr().coefficient(&d()), -1.0);
        // A negated conjunction yields no facts.
        assert!(conjuncts_of(&not(and(tt(), tt()))).is_empty());
    }

    #[test]
    fn nonlinear_comparisons_are_dropped() {
        let cs = conjuncts_of(&le(mul(v("x"), v("x")), cst(4.0)));
        assert!(cs.is_empty());
    }

    #[test]
    fn trivial_and_contradictory_constraints() {
        assert!(LinearConstraint::nonneg(LinExpr::constant(1.0)).is_trivial());
        assert!(LinearConstraint::nonneg(LinExpr::constant(-1.0)).is_contradiction());
        assert!(!LinearConstraint::nonneg(LinExpr::var(x())).is_trivial());
    }
}
