//! Escalation soundness: in-session degree escalation and the automatic
//! poly-degree retry must be *equally tight* (up to solver tolerance) as a
//! from-scratch analysis at the target degrees.  "Equally tight" is the
//! strongest contract the LP grants: both paths minimize the same aggregated
//! objective (the sum of bound widths at the valuation), so that sum must
//! agree — but on a degenerate optimal face the solver may shuffle slack
//! between individual moments, so per-component bounds are only required to
//! bracket a common truth (overlapping intervals), not to coincide.
//!
//! * **degree escalation** — `escalate_degree(m')` from a degree-`m` session
//!   replays the derivation plan, appends only the new moment components to
//!   the live warm session, and must reproduce the from-scratch degree-`m'`
//!   bounds while reporting nonzero template/column reuse.  Pinned across
//!   the dense/sparse × factor × warm matrix, with a proptest sweeping
//!   fixtures, degree pairs, and valuations.
//! * **poly-degree retry** — an analysis that is infeasible at base degree
//!   `d` and allowed to retry must land on the same bounds as a direct run
//!   at the degree it settles on.

use cma_appl::build::*;
use cma_appl::Program;
use cma_inference::{analyze_session, analyze_with, AnalysisError, AnalysisOptions, SolveMode};
use cma_lp::{FactorKind, LpBackend, SimplexBackend, SparseBackend, WarmStrategy};
use cma_semiring::poly::Var;
use proptest::prelude::*;

const TOL: f64 = 1e-4;

/// One solver configuration of the pinning matrix.
type SolverConfig = (&'static str, Box<dyn LpBackend>, FactorKind, WarmStrategy);

/// A named fixture with the valuation its bounds are compared at.
type Fixture = (&'static str, Program, Vec<(Var, f64)>);

/// The backend × factorization × warm-resolve matrix every pinning runs on.
fn matrix() -> Vec<SolverConfig> {
    let mut configs: Vec<SolverConfig> = Vec::new();
    for factor in [FactorKind::Dense, FactorKind::Lu] {
        for warm in [WarmStrategy::Dual, WarmStrategy::Phase1] {
            configs.push(("dense", Box::new(SimplexBackend), factor, warm));
            configs.push(("sparse", Box::new(SparseBackend), factor, warm));
        }
    }
    configs
}

fn geo() -> Program {
    ProgramBuilder::new()
        .function(
            "geo",
            if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
        )
        .main(call("geo"))
        .build()
        .unwrap()
}

fn coin_pair() -> Program {
    // Two sequenced probabilistic choices plus a conditional join.
    ProgramBuilder::new()
        .main(seq([
            if_prob(0.25, tick(2.0), tick(4.0)),
            if_then_else(le(v("x"), cst(0.0)), tick(1.0), tick(3.0)),
        ]))
        .build()
        .unwrap()
}

fn countdown() -> Program {
    // Deterministic loop: cost exactly n (moments n^k need degree k·d ≥ k).
    ProgramBuilder::new()
        .main(while_loop(
            le(cst(1.0), v("n")),
            seq([tick(1.0), assign("n", sub(v("n"), cst(1.0)))]),
        ))
        .precondition(ge(v("n"), cst(0.0)))
        .build()
        .unwrap()
}

fn triangle() -> Program {
    // Triangular nested loop: cost n(n+1)/2, infeasible at poly degree 1.
    // The canonical fixture lives in examples/ (shared with the CLI and
    // pipeline tests) so the layers cannot drift apart.
    cma_appl::parse_program(include_str!("../../../examples/triangle.appl")).unwrap()
}

fn assert_bounds_match(
    escalated: &cma_inference::AnalysisResult,
    scratch: &cma_inference::AnalysisResult,
    at: &[(Var, f64)],
    context: &str,
) {
    assert_eq!(escalated.degree(), scratch.degree(), "{context}: degree");
    let mut e_width = 0.0f64;
    let mut s_width = 0.0f64;
    let mut scale = 1.0f64;
    for k in 0..=scratch.degree() {
        let e = escalated.raw_moment_at(k, at);
        let s = scratch.raw_moment_at(k, at);
        scale = scale.max(s.lo().abs()).max(s.hi().abs());
        // Both intervals bracket the true moment, so they must overlap.
        assert!(
            e.lo() <= s.hi() + TOL * scale && s.lo() <= e.hi() + TOL * scale,
            "{context}: moment {k} disjoint: escalated [{}, {}] vs scratch [{}, {}]",
            e.lo(),
            e.hi(),
            s.lo(),
            s.hi()
        );
        e_width += e.hi() - e.lo();
        s_width += s.hi() - s.lo();
    }
    // The aggregated objective both paths minimize is the total bound width
    // at the valuation; a degenerate optimal face can redistribute slack
    // between moments, but the totals must agree.
    assert!(
        (e_width - s_width).abs() <= TOL * scale,
        "{context}: total width diverged: escalated {e_width} vs scratch {s_width}"
    );
}

#[test]
fn escalation_matches_from_scratch_across_the_solver_matrix() {
    let fixtures: [Fixture; 3] = [
        ("geo", geo(), vec![]),
        ("coin-pair", coin_pair(), vec![(Var::new("x"), 0.0)]),
        ("countdown", countdown(), vec![(Var::new("n"), 5.0)]),
    ];
    for (name, program, at) in &fixtures {
        for (backend_name, backend, factor, warm) in matrix() {
            let context = format!("{name}/{backend_name}/{}/{}", factor.name(), warm.name());
            let options = AnalysisOptions::degree(2)
                .with_factor(factor)
                .with_warm_resolve(warm)
                .with_valuation(at.clone());
            let (_, mut session) = analyze_session(program, &options, backend.as_ref()).unwrap();
            let escalated = session.escalate_degree(4).unwrap();
            let scratch_options = AnalysisOptions::degree(4)
                .with_factor(factor)
                .with_warm_resolve(warm)
                .with_valuation(at.clone());
            let scratch = analyze_with(program, &scratch_options, backend.as_ref()).unwrap();
            assert_bounds_match(&escalated, &scratch, at, &context);

            let stats = escalated.escalation.expect("escalation stats present");
            assert_eq!(stats.from_degree, 2, "{context}");
            assert_eq!(stats.to_degree, 4, "{context}");
            assert_eq!(stats.cold_restarts, 0, "{context}: warm path");
            assert!(stats.appended_constraints > 0, "{context}: new rows");
            assert!(stats.appended_variables > 0, "{context}: new columns");
            assert!(
                stats.reused_columns > 0,
                "{context}: escalation must reuse template columns"
            );
            assert!(stats.reused_slots > 0, "{context}: slots replayed");
            // No new from-scratch LP solve: the escalation re-minimized the
            // live session (one more minimize, same solve count).
            assert_eq!(escalated.lp_solves, 1, "{context}");
            assert_eq!(session.minimizes(), 2, "{context}");
        }
    }
}

#[test]
fn chained_escalation_reaches_the_same_fixpoint() {
    let program = geo();
    let backend = SparseBackend;
    let (_, mut session) =
        analyze_session(&program, &AnalysisOptions::degree(1), &backend).unwrap();
    session.escalate_degree(2).unwrap();
    let escalated = session.escalate_degree(4).unwrap();
    let scratch = analyze_with(&program, &AnalysisOptions::degree(4), &backend).unwrap();
    assert_bounds_match(&escalated, &scratch, &[], "geo chained 1->2->4");
    assert_eq!(session.minimizes(), 3);
}

#[test]
fn escalation_to_a_non_larger_degree_is_rejected() {
    let program = geo();
    let (_, mut session) =
        analyze_session(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
    match session.escalate_degree(2) {
        Err(AnalysisError::InvalidEscalation { from: 2, to: 2 }) => {}
        other => panic!("expected InvalidEscalation, got {other:?}"),
    }
    // The session is still usable afterwards.
    assert!(session.escalate_degree(3).is_ok());
}

#[test]
fn escalation_after_an_extension_is_rejected() {
    // The documented order — escalate first, then extend — is enforced:
    // an extension's rows and objective terms must not be folded into the
    // escalated optimum.
    let program = geo();
    let (_, mut session) =
        analyze_session(&program, &AnalysisOptions::degree(2), &SparseBackend).unwrap();
    session.extend_and_minimize(&program, 2).unwrap();
    match session.escalate_degree(4) {
        Err(AnalysisError::EscalationAfterExtension) => {}
        other => panic!("expected EscalationAfterExtension, got {other:?}"),
    }
}

#[test]
fn compositional_escalation_falls_back_to_a_cold_rederive() {
    let program = geo();
    let options = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
    let (_, mut session) = analyze_session(&program, &options, &SimplexBackend).unwrap();
    let escalated = session.escalate_degree(4).unwrap();
    let stats = escalated.escalation.expect("stats");
    assert_eq!(stats.cold_restarts, 1, "compositional restarts cold");
    let scratch_options = AnalysisOptions::degree(4).with_mode(SolveMode::Compositional);
    let scratch = analyze_with(&program, &scratch_options, &SimplexBackend).unwrap();
    assert_bounds_match(&escalated, &scratch, &[], "geo compositional");
    // The swapped-in session keeps working (e.g. for a later extension).
    assert!(session.escalate_degree(5).is_ok());
}

#[test]
fn auto_poly_retry_matches_the_direct_higher_degree_run() {
    let program = triangle();
    let at = vec![(Var::new("n"), 4.0)];
    for (backend_name, backend, factor, warm) in matrix() {
        let context = format!("triangle/{backend_name}/{}/{}", factor.name(), warm.name());
        let options = AnalysisOptions::degree(1)
            .with_factor(factor)
            .with_warm_resolve(warm)
            .with_valuation(at.clone())
            .with_max_poly_degree(2);
        let retried = analyze_with(&program, &options, backend.as_ref()).unwrap();
        assert_eq!(retried.poly_retries, 1, "{context}");
        assert_eq!(retried.poly_degree, 2, "{context}");
        assert!(
            retried.plan.slots_reused > 0 && retried.plan.loop_heads_reused > 0,
            "{context}: the retry must replay the recorded plan, got {:?}",
            retried.plan
        );
        let direct_options = AnalysisOptions::degree(1)
            .with_poly_degree(2)
            .with_factor(factor)
            .with_warm_resolve(warm)
            .with_valuation(at.clone());
        let direct = analyze_with(&program, &direct_options, backend.as_ref()).unwrap();
        assert_bounds_match(&retried, &direct, &at, &context);
    }
}

#[test]
fn infeasibility_without_retry_budget_reports_the_failing_degrees() {
    let err = analyze_with(&triangle(), &AnalysisOptions::degree(1), &SimplexBackend).unwrap_err();
    assert_eq!(err.infeasible_at(), Some((1, 1)));
    match err {
        AnalysisError::LpFailed {
            degree: 1,
            poly_degree: 1,
            ..
        } => {}
        other => panic!("expected LpFailed with degrees, got {other:?}"),
    }
}

#[test]
fn escalation_after_poly_retry_keeps_the_settled_poly_degree() {
    // The session settles at d=2 via retry; escalating the degree afterwards
    // must keep deriving with d=2 templates and still match from-scratch.
    let program = triangle();
    let at = vec![(Var::new("n"), 4.0)];
    let options = AnalysisOptions::degree(1)
        .with_max_poly_degree(2)
        .with_valuation(at.clone());
    let (result, mut session) = analyze_session(&program, &options, &SimplexBackend).unwrap();
    assert_eq!(result.poly_degree, 2);
    let escalated = session.escalate_degree(2).unwrap();
    assert_eq!(escalated.poly_degree, 2);
    // The retry spent landing on d = 2 stays visible after the escalation.
    assert_eq!(escalated.poly_retries, 1);
    assert_eq!(escalated.escalation.unwrap().poly_retries, 0);
    let scratch_options = AnalysisOptions::degree(2)
        .with_poly_degree(2)
        .with_valuation(at.clone());
    let scratch = analyze_with(&program, &scratch_options, &SimplexBackend).unwrap();
    assert_bounds_match(&escalated, &scratch, &at, "triangle escalate-after-retry");
}

proptest! {
    /// Randomized sweep: fixture × escalation pair × valuation × solver
    /// configuration; escalated bounds always match from-scratch.
    #[test]
    fn prop_escalated_bounds_match_scratch(
        fixture in 0usize..3,
        from in 1usize..3,
        extra in 1usize..3,
        val in 0.0f64..8.0,
        config in 0usize..4,
    ) {
        let (program, at): (Program, Vec<(Var, f64)>) = match fixture {
            0 => (geo(), vec![]),
            1 => (coin_pair(), vec![(Var::new("x"), val)]),
            _ => (countdown(), vec![(Var::new("n"), val.floor())]),
        };
        let (backend, factor): (Box<dyn LpBackend>, FactorKind) = match config {
            0 => (Box::new(SimplexBackend), FactorKind::Dense),
            1 => (Box::new(SimplexBackend), FactorKind::Lu),
            2 => (Box::new(SparseBackend), FactorKind::Dense),
            _ => (Box::new(SparseBackend), FactorKind::Lu),
        };
        let to = from + extra;
        let options = AnalysisOptions::degree(from)
            .with_factor(factor)
            .with_valuation(at.clone());
        let (_, mut session) = analyze_session(&program, &options, backend.as_ref()).unwrap();
        let escalated = session.escalate_degree(to).unwrap();
        let scratch_options = AnalysisOptions::degree(to)
            .with_factor(factor)
            .with_valuation(at.clone());
        let scratch = analyze_with(&program, &scratch_options, backend.as_ref()).unwrap();
        assert_bounds_match(&escalated, &scratch, &at, &format!("prop f{fixture} {from}->{to} c{config}"));
        prop_assert!(escalated.escalation.unwrap().reused_columns > 0);
    }
}
