//! End-to-end check on the paper's running example (Fig. 2 / Fig. 7):
//! the bounded, biased random walk implemented with non-tail recursion.
//!
//! Paper results (Fig. 1(b)): with initial position `x = 0` and distance `d`,
//!   E[tick]  ≤ 2d + 4,
//!   E[tick²] ≤ 4d² + 22d + 28,
//!   V[tick]  ≤ 22d + 28.

use cma_appl::build::*;
use cma_appl::Program;
use cma_inference::{analyze_with, AnalysisOptions};
use cma_lp::SimplexBackend;
use cma_semiring::poly::Var;
use cma_sim::{simulate, SimConfig};

fn rdwalk_program() -> Program {
    ProgramBuilder::new()
        .function_with_precondition(
            "rdwalk",
            if_then(
                lt(v("x"), v("d")),
                seq([
                    sample("t", uniform(-1.0, 2.0)),
                    assign("x", add(v("x"), v("t"))),
                    call("rdwalk"),
                    tick(1.0),
                ]),
            ),
            [lt(v("x"), add(v("d"), cst(2.0))), gt(v("d"), cst(0.0))],
        )
        .main(seq([assign("x", cst(0.0)), call("rdwalk")]))
        .precondition(gt(v("d"), cst(0.0)))
        .build()
        .unwrap()
}

fn options() -> AnalysisOptions {
    AnalysisOptions::degree(2).with_valuation(vec![(Var::new("d"), 10.0), (Var::new("x"), 0.0)])
}

#[test]
fn rdwalk_first_and_second_moment_bounds_match_the_paper() {
    let program = rdwalk_program();
    let result = analyze_with(&program, &options(), &SimplexBackend).expect("analysis succeeds");
    let d = 10.0;
    let valuation = [(Var::new("d"), d)];

    let e1 = result.raw_moment_at(1, &valuation);
    let e2 = result.raw_moment_at(2, &valuation);

    // Upper bounds at most the paper's (the LP may find tighter ones), and
    // they must be genuine upper bounds on the true moments.
    assert!(e1.hi() <= 2.0 * d + 4.0 + 1e-3, "E[tick] upper {}", e1.hi());
    assert!(
        e2.hi() <= 4.0 * d * d + 22.0 * d + 28.0 + 1e-2,
        "E[tick²] upper {}",
        e2.hi()
    );

    // Cross-check against simulation: true moments lie inside the intervals.
    let stats = simulate(
        &program,
        &SimConfig {
            trials: 30_000,
            seed: 42,
            initial: vec![(Var::new("d"), d)],
            ..Default::default()
        },
    );
    assert!(stats.mean() <= e1.hi() + 0.05);
    assert!(stats.mean() >= e1.lo() - 0.05);
    assert!(stats.raw_moment(2) <= e2.hi() + 5.0);
    assert!(stats.raw_moment(2) >= e2.lo() - 5.0);

    // Variance bound: V[tick] ≤ 22d + 28 (Ex. 2.4).
    let central = result.central_at(&valuation);
    assert!(central.variance_upper() <= 22.0 * d + 28.0 + 1e-2);
    assert!(stats.variance() <= central.variance_upper() + 1.0);
}

#[test]
fn rdwalk_symbolic_variance_bound_is_linear_in_d() {
    let program = rdwalk_program();
    let result = analyze_with(&program, &options(), &SimplexBackend).expect("analysis succeeds");
    // Evaluate the bound at several distances; it must stay an upper bound
    // (checked against simulation) and grow at most linearly.
    let mut previous = 0.0;
    for d in [5.0, 10.0, 20.0] {
        let central = result.central_at(&[(Var::new("d"), d)]);
        let var_ub = central.variance_upper();
        assert!(
            var_ub <= 22.0 * d + 28.0 + 1e-2,
            "V upper {var_ub} at d={d}"
        );
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 20_000,
                seed: 7,
                initial: vec![(Var::new("d"), d)],
                ..Default::default()
            },
        );
        assert!(
            stats.variance() <= var_ub + 1.0,
            "simulated {} vs bound {var_ub}",
            stats.variance()
        );
        assert!(var_ub >= previous);
        previous = var_ub;
    }
}

#[test]
fn rdwalk_function_spec_matches_fig7_shape() {
    let program = rdwalk_program();
    let result = analyze_with(&program, &options(), &SimplexBackend).expect("analysis succeeds");
    // The level-0 specification's first-moment upper bound should be close to
    // 2(d - x) + 4 when evaluated at x = 0, d = 10 (i.e. ≤ 24, ≥ 20).
    let spec = result.spec("rdwalk", 0).expect("spec exists");
    let (_, upper) = &spec.pre[1];
    let value = upper.eval(&|v| if v.name() == "d" { 10.0 } else { 0.0 });
    assert!(value <= 24.0 + 1e-3, "spec upper {value}");
    assert!(value >= 20.0 - 1e-3, "spec upper {value}");
}
