//! Central moments derived from interval bounds on raw moments.
//!
//! A central moment `E[(X − E[X])^k]` is a polynomial in the raw moments
//! `E[X], …, E[X^k]` (§2.1); with *interval* bounds on each raw moment the
//! central moment is bracketed by evaluating that polynomial in interval
//! arithmetic — which is exactly why the analysis must produce upper *and*
//! lower bounds simultaneously.

use cma_semiring::{binomial, Interval};

/// Central-moment information extracted from raw-moment interval bounds.
#[derive(Debug, Clone)]
pub struct CentralMoments {
    raw: Vec<Interval>,
    central: Vec<Interval>,
}

impl CentralMoments {
    /// Computes interval bounds on the central moments `E[(X−E[X])^k]` for all
    /// `k` up to the degree of the supplied raw bounds.
    ///
    /// `raw[k]` must bracket `E[X^k]`; `raw[0]` is the termination-probability
    /// component and is ignored (assumed 1).
    pub fn from_raw_intervals(raw: &[Interval]) -> Self {
        let m = raw.len().saturating_sub(1);
        let mean = if m >= 1 { raw[1] } else { Interval::point(0.0) };
        let mut central = vec![Interval::point(1.0); m + 1];
        if m >= 1 {
            central[1] = Interval::point(0.0);
        }
        for (k, slot) in central.iter_mut().enumerate().take(m + 1).skip(2) {
            // E[(X-μ)^k] written as a polynomial in the raw moments (§2.1),
            // with the j = 0 and j = 1 terms combined exactly:
            //   Σ_{j=2..k} C(k,j) E[X^j] (−μ)^{k−j}  +  (−1)^k (1−k) μ^k.
            // This matches the paper's formulas (e.g. V = E[X²] − E²[X]) and is
            // tighter than the naive term-by-term interval expansion.
            let mut acc = Interval::point(0.0);
            for (j, raw_j) in raw.iter().enumerate().take(k + 1).skip(2) {
                let term = raw_j
                    .mul(mean.neg().powi((k - j) as u32))
                    .scale(binomial(k, j));
                acc = acc.add(term);
            }
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            acc = acc.add(mean.powi(k as u32).scale(sign * (1.0 - k as f64)));
            *slot = acc;
        }
        CentralMoments {
            raw: raw.to_vec(),
            central,
        }
    }

    /// The highest moment degree available.
    pub fn degree(&self) -> usize {
        self.raw.len().saturating_sub(1)
    }

    /// The interval bound on `E[X^k]`.
    pub fn raw(&self, k: usize) -> Interval {
        self.raw[k]
    }

    /// The interval bound on the `k`-th central moment.
    pub fn central(&self, k: usize) -> Interval {
        self.central[k]
    }

    /// The interval bracketing the mean.
    pub fn mean(&self) -> Interval {
        self.raw(1)
    }

    /// Upper bound on the variance (`E[X²]` upper minus squared mean lower).
    pub fn variance_upper(&self) -> f64 {
        self.central(2).hi()
    }

    /// Lower bound on the variance, clamped at 0.
    pub fn variance_lower(&self) -> f64 {
        self.central(2).lo().max(0.0)
    }

    /// Upper bound on the `2k`-th central moment (for Chebyshev bounds).
    pub fn even_central_upper(&self, two_k: usize) -> Option<f64> {
        self.central.get(two_k).map(|i| i.hi())
    }

    /// Upper bound on the skewness `E[(X−μ)³] / V[X]^{3/2}`.
    ///
    /// Returns `None` when the third central moment is unavailable or the
    /// variance lower bound is not strictly positive.
    pub fn skewness_upper(&self) -> Option<f64> {
        let third = self.central.get(3)?;
        let var_lo = self.variance_lower();
        if var_lo <= 0.0 {
            return None;
        }
        Some(third.hi() / var_lo.powf(1.5))
    }

    /// Upper bound on the kurtosis `E[(X−μ)⁴] / V[X]²`.
    pub fn kurtosis_upper(&self) -> Option<f64> {
        let fourth = self.central.get(4)?;
        let var_lo = self.variance_lower();
        if var_lo <= 0.0 {
            return None;
        }
        Some(fourth.hi() / (var_lo * var_lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact(raw: &[f64]) -> CentralMoments {
        CentralMoments::from_raw_intervals(
            &raw.iter().map(|&x| Interval::point(x)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn variance_from_exact_raw_moments() {
        // Bernoulli(1/2): E=0.5, E[X²]=0.5 → V = 0.25.
        let c = exact(&[1.0, 0.5, 0.5]);
        assert!((c.variance_upper() - 0.25).abs() < 1e-9);
        assert!((c.variance_lower() - 0.25).abs() < 1e-9);
        assert_eq!(c.mean(), Interval::point(0.5));
        assert_eq!(c.raw(2), Interval::point(0.5));
    }

    #[test]
    fn fourth_central_moment_of_a_die() {
        // Fair die: E=3.5, E[X²]=15.1667, E[X³]=73.5, E[X⁴]=379.1667
        // → central 4th ≈ 14.7292, variance ≈ 2.9167.
        let c = exact(&[1.0, 3.5, 91.0 / 6.0, 441.0 / 6.0, 2275.0 / 6.0]);
        assert!((c.central(2).mid() - 35.0 / 12.0).abs() < 1e-9);
        assert!((c.central(4).mid() - 14.729166).abs() < 1e-3);
        assert!(c.kurtosis_upper().unwrap() > 1.5);
        // Symmetric distribution: skewness 0.
        assert!(c.skewness_upper().unwrap().abs() < 1e-9);
    }

    #[test]
    fn interval_raw_moments_widen_central_moments() {
        // Paper Ex. 2.4: E[tick] ∈ [2d, 2d+4], E[tick²] ≤ 4d²+22d+28 at d=10:
        // V ≤ (4·100+220+28) − (20)² = 648 − 400 = 248 = 22d+28.
        let d = 10.0;
        let raw = [
            Interval::point(1.0),
            Interval::new(2.0 * d, 2.0 * d + 4.0),
            Interval::new(0.0, 4.0 * d * d + 22.0 * d + 28.0),
        ];
        let c = CentralMoments::from_raw_intervals(&raw);
        assert!((c.variance_upper() - (22.0 * d + 28.0)).abs() < 1e-9);
        assert_eq!(c.variance_lower(), 0.0);
    }

    #[test]
    fn first_central_moment_is_zero_and_zeroth_is_one() {
        let c = exact(&[1.0, 7.0, 50.0]);
        assert_eq!(c.central(0), Interval::point(1.0));
        assert_eq!(c.central(1), Interval::point(0.0));
    }

    #[test]
    fn missing_higher_moments_return_none() {
        let c = exact(&[1.0, 1.0, 2.0]);
        assert!(c.skewness_upper().is_none());
        assert!(c.kurtosis_upper().is_none());
        assert!(c.even_central_upper(2).is_some());
        assert!(c.even_central_upper(4).is_none());
    }

    #[test]
    fn degenerate_variance_disables_ratios() {
        // A deterministic cost: variance 0 → no skewness/kurtosis bound.
        let c = exact(&[1.0, 3.0, 9.0, 27.0, 81.0]);
        assert!(c.variance_upper().abs() < 1e-9);
        assert!(c.skewness_upper().is_none());
        assert!(c.kurtosis_upper().is_none());
    }

    proptest! {
        #[test]
        fn prop_central_intervals_contain_true_central_moments(
            p in 0.05f64..0.95, a in -3.0f64..3.0, b in -3.0f64..3.0, slack in 0.0f64..2.0
        ) {
            // Two-point distribution on {a, b} with prob p on a.
            let raw_exact: Vec<f64> = (0..=4)
                .map(|k| p * a.powi(k) + (1.0 - p) * b.powi(k))
                .collect();
            let mean = raw_exact[1];
            let true_central: Vec<f64> = (0..=4)
                .map(|k| p * (a - mean).powi(k) + (1.0 - p) * (b - mean).powi(k))
                .collect();
            // Widen the raw moments by `slack` on both sides: the central
            // intervals must still contain the truth.
            let raw: Vec<Interval> = raw_exact
                .iter()
                .map(|&x| Interval::new(x - slack, x + slack))
                .collect();
            let c = CentralMoments::from_raw_intervals(&raw);
            for (k, truth) in true_central.iter().enumerate().take(5).skip(2) {
                prop_assert!(c.central(k).lo() <= truth + 1e-7);
                prop_assert!(c.central(k).hi() >= truth - 1e-7);
            }
        }
    }
}
