//! The shared constraint store.
//!
//! One analysis run builds one constraint system per solved group, and —
//! crucially — the soundness side-condition check of Theorem 4.4 *extends*
//! the main group's system instead of re-deriving a fresh one.  The
//! [`ConstraintStore`] makes that sharing explicit: it owns the sparse
//! [`LpProblem`] under construction plus the raw objective terms, tracks how
//! much of it has already been handed to an open [`LpSession`], and can
//! flush just the increment (new variables, new rows) into that session.
//!
//! The store relies on the session contract of `cma-lp`: a session shares
//! the id space of the problem it was opened on, and ids created through
//! `LpSession::add_var` continue that space — so the store can keep
//! allocating variables locally and replay them into the session in order.

use cma_lp::{Cmp, LpBackend, LpProblem, LpSession, LpVarId, SolverTuning};

/// A sparse constraint system under construction, with incremental flushing
/// into an open solver session.
#[derive(Debug, Default)]
pub struct ConstraintStore {
    problem: LpProblem,
    objective: Vec<(LpVarId, f64)>,
    flushed_vars: usize,
    flushed_rows: usize,
}

impl ConstraintStore {
    /// An empty store.
    pub fn new() -> Self {
        ConstraintStore::default()
    }

    /// Adds a variable (non-negative unless `free`).
    pub fn add_var(&mut self, name: impl Into<String>, free: bool) -> LpVarId {
        self.problem.add_var(name, free)
    }

    /// Appends the constraint `Σ coeff·var cmp rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(LpVarId, f64)>, cmp: Cmp, rhs: f64) {
        self.problem.add_constraint(terms, cmp, rhs);
    }

    /// Appends `weight · var` to the (raw, unaggregated) objective.
    pub fn add_objective_term(&mut self, var: LpVarId, weight: f64) {
        self.objective.push((var, weight));
    }

    /// Number of variables in the store.
    pub fn num_vars(&self) -> usize {
        self.problem.num_vars()
    }

    /// Number of constraint rows in the store.
    pub fn num_constraints(&self) -> usize {
        self.problem.num_constraints()
    }

    /// Number of raw objective terms recorded so far (use as a mark to later
    /// aggregate only an extension's objective).
    pub fn objective_len(&self) -> usize {
        self.objective.len()
    }

    /// The objective terms from `from` onward, aggregated by variable (the
    /// form [`LpSession::minimize`] expects).
    pub fn aggregated_objective(&self, from: usize) -> Vec<(LpVarId, f64)> {
        let mut aggregated: std::collections::BTreeMap<LpVarId, f64> = Default::default();
        for &(v, c) in &self.objective[from..] {
            *aggregated.entry(v).or_insert(0.0) += c;
        }
        aggregated.into_iter().collect()
    }

    /// The underlying problem (its objective is whatever was last set; use
    /// [`to_problem`](Self::to_problem) for a solve-ready snapshot).
    pub fn problem(&self) -> &LpProblem {
        &self.problem
    }

    /// A solve-ready snapshot: the constraint system with the full
    /// aggregated objective set (what `solve_batch` consumes).
    pub fn to_problem(&self) -> LpProblem {
        let mut problem = self.problem.clone();
        problem.set_objective(self.aggregated_objective(0));
        problem
    }

    /// Opens a backend session over the current system and marks everything
    /// built so far as flushed.
    pub fn open_session<'a>(&mut self, backend: &'a dyn LpBackend) -> Box<dyn LpSession + 'a> {
        self.open_session_with(backend, &SolverTuning::default())
    }

    /// [`open_session`](Self::open_session) under explicit solver tuning
    /// (pricing rule, presolve).
    pub fn open_session_with<'a>(
        &mut self,
        backend: &'a dyn LpBackend,
        tuning: &SolverTuning,
    ) -> Box<dyn LpSession + 'a> {
        let session = backend.open_with(&self.problem, tuning);
        self.flushed_vars = self.problem.num_vars();
        self.flushed_rows = self.problem.num_constraints();
        session
    }

    /// Extracts everything added after the marks as a standalone problem:
    /// variables `var_mark..` (ids shifted down by `var_mark`), rows
    /// `row_mark..`, and the objective terms `objective_mark..`.
    ///
    /// Returns `None` when some extracted row or objective term references a
    /// pre-mark variable — then the extension is *not* independent of the
    /// base system and must be solved against it (via [`flush`](Self::flush)
    /// into the open session) instead.
    pub fn subproblem(
        &self,
        var_mark: usize,
        row_mark: usize,
        objective_mark: usize,
    ) -> Option<LpProblem> {
        let mut sub = LpProblem::new();
        for index in var_mark..self.problem.num_vars() {
            let var = LpVarId::from_index(index);
            sub.add_var(self.problem.var_name(var), self.problem.is_free(var));
        }
        for row in row_mark..self.problem.num_constraints() {
            let mut terms = Vec::new();
            for (v, c) in self.problem.constraint_terms(row) {
                if v.index() < var_mark {
                    return None;
                }
                terms.push((LpVarId::from_index(v.index() - var_mark), c));
            }
            sub.add_constraint(terms, self.problem.cmp(row), self.problem.rhs(row));
        }
        let mut objective = Vec::new();
        for (v, c) in self.aggregated_objective(objective_mark) {
            if v.index() < var_mark {
                return None;
            }
            objective.push((LpVarId::from_index(v.index() - var_mark), c));
        }
        sub.set_objective(objective);
        Some(sub)
    }

    /// Replays everything added since the last open/flush — new variables
    /// first, then new rows — into the session, preserving the shared id
    /// space.
    pub fn flush(&mut self, session: &mut dyn LpSession) {
        for index in self.flushed_vars..self.problem.num_vars() {
            let var = LpVarId::from_index(index);
            let mirrored = session.add_var(self.problem.var_name(var), self.problem.is_free(var));
            debug_assert_eq!(
                mirrored, var,
                "session id space diverged from the constraint store"
            );
        }
        self.flushed_vars = self.problem.num_vars();
        for row in self.flushed_rows..self.problem.num_constraints() {
            let terms: Vec<(LpVarId, f64)> = self.problem.constraint_terms(row).collect();
            session.add_constraint(&terms, self.problem.cmp(row), self.problem.rhs(row));
        }
        self.flushed_rows = self.problem.num_constraints();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_lp::{LpStatus, SimplexBackend, SparseBackend};

    fn backend_roundtrip(backend: &dyn LpBackend) {
        let mut store = ConstraintStore::new();
        let x = store.add_var("x", false);
        let y = store.add_var("y", false);
        store.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        store.add_objective_term(x, -1.0);
        store.add_objective_term(y, -2.0);
        store.add_objective_term(y, 0.0); // duplicate entries aggregate

        let mut session = store.open_session(backend);
        let first = session.minimize(&store.aggregated_objective(0));
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - (-8.0)).abs() < 1e-6); // y = 4

        // Extend: a new variable, a cutting row, and an extension objective.
        let obj_mark = store.objective_len();
        let z = store.add_var("z", false);
        store.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        store.add_constraint(vec![(z, 1.0), (x, 1.0)], Cmp::Ge, 2.0);
        store.add_objective_term(z, 1.0);
        store.flush(session.as_mut());
        assert_eq!(session.num_vars(), 3);
        assert_eq!(session.num_constraints(), 3);

        let ext = session.minimize(&store.aggregated_objective(obj_mark));
        assert_eq!(ext.status, LpStatus::Optimal);
        // minimize z s.t. x + z >= 2, x + y <= 4, y <= 1: z can reach 0.
        assert!(ext.objective.abs() < 1e-6);

        // The full objective still solves over the extended system.
        let full = session.minimize(&store.aggregated_objective(0));
        assert_eq!(full.status, LpStatus::Optimal);
        assert!((full.objective - (-5.0)).abs() < 1e-6); // x = 3, y = 1, z = 0
    }

    #[test]
    fn store_flush_roundtrips_through_both_backends() {
        backend_roundtrip(&SimplexBackend);
        backend_roundtrip(&SparseBackend);
    }

    #[test]
    fn subproblem_extracts_a_disjoint_extension() {
        let mut store = ConstraintStore::new();
        let x = store.add_var("x", false);
        store.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        store.add_objective_term(x, -1.0);
        let (vmark, rmark, omark) = (
            store.num_vars(),
            store.num_constraints(),
            store.objective_len(),
        );

        let y = store.add_var("y", true);
        let z = store.add_var("z", false);
        store.add_constraint(vec![(y, 1.0), (z, 1.0)], Cmp::Eq, 3.0);
        store.add_constraint(vec![(y, 1.0)], Cmp::Ge, -1.0);
        store.add_objective_term(y, 1.0);

        let sub = store.subproblem(vmark, rmark, omark).expect("disjoint");
        assert_eq!(sub.num_vars(), 2);
        assert_eq!(sub.num_constraints(), 2);
        let sol = sub.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - (-1.0)).abs() < 1e-6); // y = -1, z = 4

        // A row referencing a pre-mark variable makes the extension
        // dependent: no subproblem.
        store.add_constraint(vec![(x, 1.0), (z, 1.0)], Cmp::Le, 10.0);
        assert!(store.subproblem(vmark, rmark, omark).is_none());
    }

    #[test]
    fn to_problem_carries_the_aggregated_objective() {
        let mut store = ConstraintStore::new();
        let x = store.add_var("x", false);
        store.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        store.add_objective_term(x, -0.5);
        store.add_objective_term(x, -0.5);
        let problem = store.to_problem();
        assert_eq!(problem.objective(), &[(x, -1.0)]);
        let sol = problem.solve();
        assert!((sol.value(x) - 5.0).abs() < 1e-6);
    }
}
