//! The analysis driver: call-graph decomposition, specification templates,
//! objectives, LP solving, and bound extraction.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use cma_appl::Program;
use cma_logic::Context;
use cma_lp::{
    FactorKind, LpBackend, LpSession, LpSolution, LpStatus, PricingRule, SolveStats, SolverTuning,
    WarmStrategy,
};
use cma_semiring::poly::{Polynomial, Var};
use cma_semiring::Interval;

use crate::builder::ConstraintBuilder;
use crate::central::CentralMoments;
use crate::derive::{transform, DeriveCtx, DeriveError};
use crate::spec::{ResolvedSpec, SpecEntry, SpecTable};
use crate::template::SymMoment;
use crate::weaken::require_contains;

/// How the per-function specifications are solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// One linear program for the whole program (most precise; the default).
    #[default]
    Global,
    /// One linear program per call-graph SCC, callees first, with resolved
    /// specifications frozen before moving on.  Scales linearly in the number
    /// of functions (Fig. 10) but requires cross-component calls to be in
    /// tail position (see `DESIGN.md`).
    Compositional,
}

/// User-facing options of the analysis.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Target moment degree `m` (2 for variance, 4 for the fourth central
    /// moment, …).
    pub degree: usize,
    /// Base polynomial degree `d`: the `k`-th moment component uses templates
    /// of degree `k·d`.
    pub poly_degree: u32,
    /// Solving strategy.
    pub mode: SolveMode,
    /// Concrete valuation at which imprecision is minimized (§3.4);
    /// unmentioned variables default to 1.
    pub valuation: Vec<(Var, f64)>,
    /// Restrict templates to these variables (default: all program variables).
    pub template_vars: Option<Vec<Var>>,
    /// Worker threads for solving independent compositional SCC groups
    /// concurrently (1 = sequential; only [`SolveMode::Compositional`] has
    /// independent groups to parallelize).
    pub threads: usize,
    /// Pricing rule the LP backends use to choose entering columns (devex by
    /// default; see `cma_lp::PricingRule`).
    pub pricing: PricingRule,
    /// Whether the LP presolve pass runs at session open (on by default).
    pub presolve: bool,
    /// Basis factorization the LP backends solve with (dense `B⁻¹` by
    /// default, Markowitz LU with eta updates via `lu`; see
    /// `cma_lp::FactorKind`).
    pub factor: FactorKind,
    /// How warm LP sessions re-solve after incremental rows — dual-simplex
    /// pivots by default, or the legacy phase-1 restart (see
    /// `cma_lp::WarmStrategy`).  Also selects whether the soundness
    /// extension rides the live main session (dual) or solves its disjoint
    /// subsystem standalone (phase1).
    pub warm_resolve: WarmStrategy,
}

impl AnalysisOptions {
    /// Options for analyzing moments up to degree `m` with linear base
    /// templates.
    pub fn degree(m: usize) -> Self {
        AnalysisOptions {
            degree: m,
            poly_degree: 1,
            mode: SolveMode::Global,
            valuation: Vec::new(),
            template_vars: None,
            threads: 1,
            pricing: PricingRule::default(),
            presolve: true,
            factor: FactorKind::default(),
            warm_resolve: WarmStrategy::default(),
        }
    }

    /// Sets the objective valuation.
    pub fn with_valuation(mut self, valuation: Vec<(Var, f64)>) -> Self {
        self.valuation = valuation;
        self
    }

    /// Sets the solving mode.
    pub fn with_mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the base polynomial degree.
    pub fn with_poly_degree(mut self, d: u32) -> Self {
        self.poly_degree = d;
        self
    }

    /// Restricts the template variables.
    pub fn with_template_vars(mut self, vars: Vec<Var>) -> Self {
        self.template_vars = Some(vars);
        self
    }

    /// Sets the number of worker threads for independent group solves.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the LP pricing rule.
    pub fn with_pricing(mut self, pricing: PricingRule) -> Self {
        self.pricing = pricing;
        self
    }

    /// Enables or disables the LP presolve pass.
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Sets the LP basis factorization.
    pub fn with_factor(mut self, factor: FactorKind) -> Self {
        self.factor = factor;
        self
    }

    /// Sets the warm re-solve strategy for incremental LP rows.
    pub fn with_warm_resolve(mut self, warm: WarmStrategy) -> Self {
        self.warm_resolve = warm;
        self
    }

    /// The solver tuning these options imply.
    pub fn solver_tuning(&self) -> SolverTuning {
        SolverTuning {
            pricing: self.pricing,
            presolve: self.presolve,
            factor: self.factor,
            warm: self.warm_resolve,
        }
    }

    fn valuation_fn(&self) -> impl Fn(&Var) -> f64 + '_ {
        move |v: &Var| {
            self.valuation
                .iter()
                .find(|(var, _)| var == v)
                .map(|(_, value)| *value)
                .unwrap_or(1.0)
        }
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions::degree(2)
    }
}

/// Failures of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The generated LP has no solution: the templates (at the given degree)
    /// cannot express a bound, or a weakening certificate does not exist.
    LpFailed {
        /// Solver status (infeasible, unbounded, iteration limit).
        status: LpStatus,
        /// Functions whose constraints were being solved.
        group: Vec<String>,
    },
    /// Constraint generation failed.
    Derivation(DeriveError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::LpFailed { status, group } => {
                write!(f, "linear program {status} while solving {group:?}")
            }
            AnalysisError::Derivation(e) => write!(f, "derivation failed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<DeriveError> for AnalysisError {
    fn from(e: DeriveError) -> Self {
        AnalysisError::Derivation(e)
    }
}

/// Symbolic interval bound on one raw moment of the accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentBound {
    /// Lower-bound polynomial over the program variables (initial state).
    pub lower: Polynomial,
    /// Upper-bound polynomial over the program variables (initial state).
    pub upper: Polynomial,
}

impl MomentBound {
    /// Evaluates the bound at an initial valuation (unmentioned variables
    /// default to 0, matching the all-zero initial state of the semantics).
    pub fn at(&self, valuation: &[(Var, f64)]) -> Interval {
        let val = |v: &Var| {
            valuation
                .iter()
                .find(|(var, _)| var == v)
                .map(|(_, value)| *value)
                .unwrap_or(0.0)
        };
        Interval::hull(self.lower.eval(&val), self.upper.eval(&val))
    }
}

/// Per-group size and solver-effort statistics of one solved linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLpStats {
    /// Display name of the group (`"global"`, `"main"`, or the functions of
    /// a compositional SCC joined with `+`).
    pub name: String,
    /// The functions whose specifications the group solved (empty for the
    /// final `main`-only group).
    pub functions: Vec<String>,
    /// LP variables of the group's system.
    pub variables: usize,
    /// LP constraint rows of the group's system.
    pub constraints: usize,
    /// Simplex iterations of the group's solve (degeneracy shows up here).
    pub iterations: usize,
    /// Basis refactorizations of the group's solve.
    pub refactorizations: usize,
    /// Constraint rows removed by LP presolve before the solve.
    pub presolve_rows: usize,
    /// LP columns removed by presolve (fixed or unreferenced).
    pub presolve_cols: usize,
    /// Product-form eta updates appended by the LU factorization (0 under
    /// the dense inverse).
    pub etas: usize,
    /// Dual-simplex pivots spent on warm incremental-row re-solves.
    pub dual_pivots: usize,
}

/// The outcome of a successful analysis.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Interval bounds on the raw moments `E[C^k]` for `k = 0..=m`, as
    /// polynomials over the program variables at the start of `main`.
    pub bounds: Vec<MomentBound>,
    /// Resolved per-function specifications (function name, restriction level).
    pub specs: BTreeMap<(String, usize), ResolvedSpec>,
    /// Total number of LP variables generated.
    pub lp_variables: usize,
    /// Total number of LP constraints generated.
    pub lp_constraints: usize,
    /// Number of linear programs handed to the backend (1 in global mode, one
    /// per call-graph SCC plus one for `main` in compositional mode).
    pub lp_solves: usize,
    /// Size statistics of every solved group, in solve order.
    pub groups: Vec<GroupLpStats>,
    /// Wall-clock time spent in the analysis.
    pub elapsed: Duration,
}

impl AnalysisResult {
    /// The target moment degree `m`.
    pub fn degree(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The symbolic bound on the `k`-th raw moment.
    pub fn raw_moment_bound(&self, k: usize) -> &MomentBound {
        &self.bounds[k]
    }

    /// The `k`-th raw moment bound evaluated at an initial valuation.
    pub fn raw_moment_at(&self, k: usize, valuation: &[(Var, f64)]) -> Interval {
        self.bounds[k].at(valuation)
    }

    /// All raw-moment intervals at an initial valuation.
    pub fn raw_intervals_at(&self, valuation: &[(Var, f64)]) -> Vec<Interval> {
        self.bounds.iter().map(|b| b.at(valuation)).collect()
    }

    /// Central-moment information (variance, central 3rd/4th moments,
    /// skewness, kurtosis) at an initial valuation.
    pub fn central_at(&self, valuation: &[(Var, f64)]) -> CentralMoments {
        CentralMoments::from_raw_intervals(&self.raw_intervals_at(valuation))
    }

    /// Symbolic upper bound on the variance: `U₂ − L₁²`
    /// (valid wherever `L₁ ≥ 0`, cf. Ex. 2.4).
    pub fn variance_upper_poly(&self) -> Option<Polynomial> {
        if self.bounds.len() < 3 {
            return None;
        }
        let u2 = &self.bounds[2].upper;
        let l1 = &self.bounds[1].lower;
        Some(u2.sub(&l1.mul(l1)))
    }

    /// The resolved specification of a function at a restriction level.
    pub fn spec(&self, function: &str, level: usize) -> Option<&ResolvedSpec> {
        self.specs.get(&(function.to_string(), level))
    }
}

/// Analyzes a program, deriving symbolic interval bounds on the raw moments
/// `E[C^k]`, `k ≤ m`, of its accumulated cost, solving every generated linear
/// program with the given [`LpBackend`].
///
/// # Errors
///
/// Returns [`AnalysisError`] when constraint generation fails or the LP has no
/// solution under the chosen template degrees.
pub fn analyze_with(
    program: &Program,
    options: &AnalysisOptions,
    backend: &dyn LpBackend,
) -> Result<AnalysisResult, AnalysisError> {
    analyze_session(program, options, backend).map(|(result, _session)| result)
}

/// The engine state kept alive after [`analyze_session`]: the main group's
/// [`ConstraintStore`](crate::store::ConstraintStore) (inside its builder)
/// and the open solver session over it.
///
/// The soundness phase extends this state — appending the step-counting
/// side-condition system and re-minimizing in place — instead of deriving
/// and solving a fresh problem from scratch (see
/// [`soundness_report_in_session`](crate::soundness::soundness_report_in_session)).
pub struct AnalysisSession<'a> {
    builder: ConstraintBuilder,
    session: Box<dyn LpSession + 'a>,
    backend: &'a dyn LpBackend,
    options: AnalysisOptions,
    minimizes: usize,
    extension_variables: usize,
    extension_constraints: usize,
    extension_stats: SolveStats,
}

impl AnalysisSession<'_> {
    /// Total `minimize` calls issued on the main session so far (1 after the
    /// main solve; +1 per soundness extension).
    pub fn minimizes(&self) -> usize {
        self.minimizes
    }

    /// LP variables appended by extensions (0 until an extension runs).
    pub fn extension_variables(&self) -> usize {
        self.extension_variables
    }

    /// LP constraint rows appended by extensions (0 until an extension runs).
    pub fn extension_constraints(&self) -> usize {
        self.extension_constraints
    }

    /// Solver-effort counters of the extension minimizes (in particular
    /// `dual_pivots`: how many dual-simplex pivots the warm re-solves took
    /// instead of a phase-1 restart).
    pub fn extension_stats(&self) -> SolveStats {
        self.extension_stats
    }

    /// Derives `program` (globally, with fresh templates) *into* the existing
    /// constraint store and minimizes the extension's own objective, without
    /// re-deriving or re-solving the main system.
    ///
    /// Under the default dual warm-resolve strategy — and when the open
    /// session actually repairs appended rows in place
    /// ([`LpSession::warm_resolves_in_place`], true for the sparse core) —
    /// the increment is flushed into the open main session and re-minimized
    /// **in place**: the session's optimal basis stays dual feasible when
    /// rows are appended, so the extension solves through dual-simplex
    /// pivots (visible in [`extension_stats`](Self::extension_stats))
    /// instead of a phase-1 restart.  Otherwise a variable-disjoint
    /// extension is extracted and solved as a standalone subsystem of the
    /// shared store ([`ConstraintStore::subproblem`]); an extension that
    /// references main-system variables always takes the flush path.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::LpFailed`] when the extended system has no optimum,
    /// [`AnalysisError::Derivation`] when constraint generation fails.
    pub fn extend_and_minimize(
        &mut self,
        program: &Program,
        degree: usize,
    ) -> Result<(), AnalysisError> {
        let mut options = self.options.clone();
        options.degree = degree;
        // Extensions always derive globally: all fresh templates in one
        // block, no compositional export constraints.
        options.mode = SolveMode::Global;
        if options.template_vars.is_none() {
            // Pin the template variables to the extension's own program.
            options.template_vars = Some(program.vars());
        }
        let vars_before = self.builder.num_vars();
        let rows_before = self.builder.num_constraints();
        let objective_mark = self.builder.store().objective_len();

        let group: Vec<String> = program.functions().map(|f| f.name().to_string()).collect();
        build_group(
            &mut self.builder,
            program,
            &options,
            &group,
            true,
            &BTreeMap::new(),
        )?;
        let sub = if options.warm_resolve == WarmStrategy::Dual
            && self.session.warm_resolves_in_place()
        {
            // Ride the live session: appended rows keep the optimal basis
            // dual feasible, so the warm re-solve is a dual step.  Sessions
            // that would re-solve from scratch (the dense reference) keep
            // the standalone-subsystem fast path below.
            None
        } else {
            self.builder
                .store()
                .subproblem(vars_before, rows_before, objective_mark)
        };
        let solution = match sub {
            Some(sub) => self
                .backend
                .open_with(&sub, &options.solver_tuning())
                .minimize(sub.objective()),
            None => {
                self.builder.store_mut().flush(self.session.as_mut());
                let objective = self.builder.store().aggregated_objective(objective_mark);
                self.session.minimize(&objective)
            }
        };
        self.minimizes += 1;
        self.extension_stats = self.extension_stats.merge(&solution.stats);
        self.extension_variables += self.builder.num_vars() - vars_before;
        self.extension_constraints += self.builder.num_constraints() - rows_before;
        if solution.is_optimal() {
            Ok(())
        } else {
            Err(AnalysisError::LpFailed {
                status: solution.status,
                group: vec!["<extension>".to_string()],
            })
        }
    }
}

/// [`analyze_with`], additionally returning the live [`AnalysisSession`] so
/// later phases (the Thm 4.4 soundness check) can extend the constraint
/// system in place instead of re-deriving it.
///
/// # Errors
///
/// Returns [`AnalysisError`] when constraint generation fails or the LP has no
/// solution under the chosen template degrees.
pub fn analyze_session<'a>(
    program: &Program,
    options: &AnalysisOptions,
    backend: &'a dyn LpBackend,
) -> Result<(AnalysisResult, AnalysisSession<'a>), AnalysisError> {
    let start = Instant::now();
    let mut resolved: BTreeMap<(String, usize), ResolvedSpec> = BTreeMap::new();
    let mut lp_variables = 0usize;
    let mut lp_constraints = 0usize;
    let mut lp_solves = 0usize;
    let mut group_stats: Vec<GroupLpStats> = Vec::new();

    // Solve every non-final group (compositional mode only); groups at the
    // same dependency level are independent and go through `solve_batch`.
    if options.mode == SolveMode::Compositional {
        let groups = call_graph_sccs(program);
        for level in scc_levels(program, &groups) {
            let mut builds = Vec::with_capacity(level.len());
            for &g in &level {
                let mut builder = ConstraintBuilder::new();
                let build =
                    build_group(&mut builder, program, options, &groups[g], false, &resolved)?;
                builds.push((builder, build, groups[g].clone()));
            }
            let problems: Vec<cma_lp::LpProblem> = builds
                .iter()
                .map(|(builder, _, _)| builder.store().to_problem())
                .collect();
            let solutions =
                backend.solve_batch_with(&problems, options.threads, &options.solver_tuning());
            for ((builder, build, group), solution) in builds.into_iter().zip(solutions) {
                lp_variables += builder.num_vars();
                lp_constraints += builder.num_constraints();
                lp_solves += 1;
                group_stats.push(group_lp_stats(
                    group.join("+"),
                    group.clone(),
                    &builder,
                    solution.stats,
                ));
                let outcome = extract_outcome(build, &solution, &group, false)?;
                resolved.extend(outcome.specs);
            }
        }
    }

    // The final group — everything (global mode) or just `main` over the
    // frozen specifications (compositional mode) — is solved through an open
    // session that stays alive for the soundness extension.
    let (final_group, name): (Vec<String>, &str) = match options.mode {
        SolveMode::Global => (
            program.functions().map(|f| f.name().to_string()).collect(),
            "global",
        ),
        SolveMode::Compositional => (Vec::new(), "main"),
    };
    let mut builder = ConstraintBuilder::new();
    let build = build_group(
        &mut builder,
        program,
        options,
        &final_group,
        true,
        &resolved,
    )?;
    lp_variables += builder.num_vars();
    lp_constraints += builder.num_constraints();
    lp_solves += 1;
    let objective = builder.store().aggregated_objective(0);
    let mut session = builder
        .store_mut()
        .open_session_with(backend, &options.solver_tuning());
    let solution = session.minimize(&objective);
    group_stats.push(group_lp_stats(
        name.to_string(),
        final_group.clone(),
        &builder,
        solution.stats,
    ));
    let outcome = extract_outcome(build, &solution, &final_group, true)?;
    resolved.extend(outcome.specs);

    let main_bounds = outcome
        .main_bounds
        .expect("main bounds computed by the final group");
    let bounds = main_bounds
        .into_iter()
        .map(|(lower, upper)| MomentBound { lower, upper })
        .collect();
    let result = AnalysisResult {
        bounds,
        specs: resolved,
        lp_variables,
        lp_constraints,
        lp_solves,
        groups: group_stats,
        elapsed: start.elapsed(),
    };
    Ok((
        result,
        AnalysisSession {
            builder,
            session,
            backend,
            options: options.clone(),
            minimizes: 1,
            extension_variables: 0,
            extension_constraints: 0,
            extension_stats: SolveStats::default(),
        },
    ))
}

/// Assembles one group's LP stats from its builder sizes and the solver
/// counters of its solution.
fn group_lp_stats(
    name: String,
    functions: Vec<String>,
    builder: &ConstraintBuilder,
    stats: SolveStats,
) -> GroupLpStats {
    GroupLpStats {
        name,
        functions,
        variables: builder.num_vars(),
        constraints: builder.num_constraints(),
        iterations: stats.iterations,
        refactorizations: stats.refactorizations,
        presolve_rows: stats.presolve_rows,
        presolve_cols: stats.presolve_cols,
        etas: stats.etas,
        dual_pivots: stats.dual_pivots,
    }
}

/// Dependency levels of the call-graph SCCs: level 0 groups call nothing
/// outside themselves, level `n + 1` groups call only groups of level ≤ `n`.
/// Groups within one level are independent and can be solved concurrently.
fn scc_levels(program: &Program, sccs: &[Vec<String>]) -> Vec<Vec<usize>> {
    let graph = program.call_graph();
    let mut scc_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for f in scc {
            scc_of.insert(f, i);
        }
    }
    let mut level = vec![0usize; sccs.len()];
    // `call_graph_sccs` emits callees first, so every callee SCC's level is
    // final by the time its callers are processed.
    for (i, scc) in sccs.iter().enumerate() {
        for f in scc {
            for callee in graph.get(f.as_str()).into_iter().flatten() {
                if let Some(&j) = scc_of.get(callee.as_str()) {
                    if j != i {
                        level[i] = level[i].max(level[j] + 1);
                    }
                }
            }
        }
    }
    let max_level = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_level];
    for (i, &l) in level.iter().enumerate() {
        buckets[l].push(i);
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

struct GroupOutcome {
    specs: BTreeMap<(String, usize), ResolvedSpec>,
    main_bounds: Option<Vec<(Polynomial, Polynomial)>>,
}

/// Everything `build_group` produces besides the constraints themselves:
/// the fresh specification templates and (for the final group) the derived
/// pre-annotation of `main`, both awaiting a solution to resolve against.
struct GroupBuild {
    specs: SpecTable,
    main_pre: Option<SymMoment>,
}

fn template_vars(program: &Program, options: &AnalysisOptions) -> Vec<Var> {
    options
        .template_vars
        .clone()
        .unwrap_or_else(|| program.vars())
}

/// Emits the constraint system of one group into `builder`: fresh templates
/// for the group's functions, derivation of every body, export constraints
/// (compositional mode), the tightness objective, and — when `include_main`
/// — the derivation of `main` itself.
fn build_group(
    builder: &mut ConstraintBuilder,
    program: &Program,
    options: &AnalysisOptions,
    group: &[String],
    include_main: bool,
    resolved: &BTreeMap<(String, usize), ResolvedSpec>,
) -> Result<GroupBuild, AnalysisError> {
    let m = options.degree;
    let d = options.poly_degree;
    let vars = template_vars(program, options);
    let valuation = options.valuation_fn();

    let mut specs = SpecTable::new();

    // Resolved specifications from earlier groups become constant annotations.
    for ((name, level), spec) in resolved {
        specs.insert(name, *level, spec.to_entry());
    }
    // Fresh templates for the functions of this group.
    for name in group {
        for level in 0..=m {
            let entry = SpecEntry {
                pre: builder.fresh_moment(&format!("{name}.pre{level}"), &vars, m, d, level),
                post: builder.fresh_moment(&format!("{name}.post{level}"), &vars, m, d, level),
            };
            specs.insert(name, level, entry);
        }
    }

    // In compositional mode the exported specifications must stay usable by
    // later callers: the level-0 post must cover the identity annotation and
    // higher-level posts must cover the zero annotation.
    if options.mode == SolveMode::Compositional {
        for name in group {
            for level in 0..=m {
                let post = specs.get(name, level).expect("just inserted").post.clone();
                let target = if level == 0 {
                    SymMoment::one(m)
                } else {
                    SymMoment::zero(m)
                };
                require_contains(
                    builder,
                    &Context::top(),
                    &post,
                    &target,
                    d,
                    &format!("export.{name}.{level}"),
                );
            }
        }
    }

    // Justify every specification of the group by analyzing the body.
    for name in group {
        let function = program
            .function(name)
            .expect("group members are declared functions");
        let ctx = Context::from_conditions(function.precondition());
        for level in 0..=m {
            let entry = specs.get(name, level).expect("just inserted").clone();
            let dctx = DeriveCtx {
                program,
                specs: &specs,
                degree: m,
                poly_degree: d,
                template_vars: vars.clone(),
                level,
            };
            let derived_pre = transform(builder, &dctx, function.body(), &ctx, entry.post.clone())?;
            require_contains(
                builder,
                &ctx,
                &entry.pre,
                &derived_pre,
                d,
                &format!("spec.{name}.{level}"),
            );
            // Reward tight specifications (lower weight for deeper levels).
            let weight = 0.1 / (1.0 + level as f64);
            for k in 0..=m {
                builder.add_objective(&entry.pre.component(k).hi.eval_vars(&valuation), weight);
                builder.add_objective(&entry.pre.component(k).lo.eval_vars(&valuation), -weight);
            }
        }
    }

    // Analyze `main` with the identity post-annotation.
    let main_pre = if include_main {
        let ctx = Context::from_conditions(program.precondition());
        let dctx = DeriveCtx {
            program,
            specs: &specs,
            degree: m,
            poly_degree: d,
            template_vars: vars.clone(),
            level: 0,
        };
        let pre = transform(builder, &dctx, program.main(), &ctx, SymMoment::one(m))?;
        for k in 0..=m {
            builder.add_objective(&pre.component(k).hi.eval_vars(&valuation), 1.0);
            builder.add_objective(&pre.component(k).lo.eval_vars(&valuation), -1.0);
        }
        Some(pre)
    } else {
        None
    };

    Ok(GroupBuild { specs, main_pre })
}

/// Resolves a group's templates against an LP solution (or reports the LP
/// failure for the group).
fn extract_outcome(
    build: GroupBuild,
    solution: &LpSolution,
    group: &[String],
    include_main: bool,
) -> Result<GroupOutcome, AnalysisError> {
    if !solution.is_optimal() {
        return Err(AnalysisError::LpFailed {
            status: solution.status,
            group: if include_main && group.is_empty() {
                vec!["main".to_string()]
            } else {
                group.to_vec()
            },
        });
    }

    let values = |v| solution.value(v);
    let mut resolved_specs = BTreeMap::new();
    for name in group {
        let mut level = 0;
        while let Some(entry) = build.specs.get(name, level) {
            resolved_specs.insert(
                (name.clone(), level),
                ResolvedSpec {
                    pre: entry.pre.resolve(&values),
                    post: entry.post.resolve(&values),
                },
            );
            level += 1;
        }
    }
    let main_bounds = build.main_pre.map(|pre| pre.resolve(&values));

    Ok(GroupOutcome {
        specs: resolved_specs,
        main_bounds,
    })
}

/// Strongly connected components of the call graph in reverse topological
/// order (callees before callers).
pub fn call_graph_sccs(program: &Program) -> Vec<Vec<String>> {
    let graph: BTreeMap<String, BTreeSet<String>> = program.call_graph();
    let nodes: Vec<String> = graph.keys().cloned().collect();
    let mut state = TarjanState {
        graph: &graph,
        index: 0,
        indices: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        sccs: Vec::new(),
    };
    for node in &nodes {
        if !state.indices.contains_key(node) {
            state.strong_connect(node);
        }
    }
    // Tarjan emits SCCs in reverse topological order of the condensation
    // (an SCC is emitted only after all SCCs it can reach), i.e. callees first.
    state.sccs
}

struct TarjanState<'a> {
    graph: &'a BTreeMap<String, BTreeSet<String>>,
    index: usize,
    indices: BTreeMap<String, usize>,
    lowlink: BTreeMap<String, usize>,
    on_stack: BTreeSet<String>,
    stack: Vec<String>,
    sccs: Vec<Vec<String>>,
}

impl TarjanState<'_> {
    fn strong_connect(&mut self, v: &str) {
        self.indices.insert(v.to_string(), self.index);
        self.lowlink.insert(v.to_string(), self.index);
        self.index += 1;
        self.stack.push(v.to_string());
        self.on_stack.insert(v.to_string());

        let successors: Vec<String> = self
            .graph
            .get(v)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for w in successors {
            if !self.graph.contains_key(&w) {
                continue;
            }
            if !self.indices.contains_key(&w) {
                self.strong_connect(&w);
                let low = self.lowlink[&w].min(self.lowlink[v]);
                self.lowlink.insert(v.to_string(), low);
            } else if self.on_stack.contains(&w) {
                let low = self.indices[&w].min(self.lowlink[v]);
                self.lowlink.insert(v.to_string(), low);
            }
        }

        if self.lowlink[v] == self.indices[v] {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack.remove(&w);
                let done = w == v;
                scc.push(w);
                if done {
                    break;
                }
            }
            scc.reverse();
            self.sccs.push(scc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;
    use cma_lp::SimplexBackend;

    #[test]
    fn sccs_are_in_callee_first_order() {
        let program = ProgramBuilder::new()
            .function("a", seq([call("b"), call("c")]))
            .function("b", call("c"))
            .function("c", if_prob(0.5, call("c"), skip()))
            .main(call("a"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        assert_eq!(sccs.len(), 3);
        let pos = |name: &str| {
            sccs.iter()
                .position(|s| s.contains(&name.to_string()))
                .unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn scc_levels_bucket_independent_groups_together() {
        // main → a; a → {b, c}; b → d; c → d: levels d | b,c | a.
        let program = ProgramBuilder::new()
            .function("a", seq([call("b"), call("c")]))
            .function("b", call("d"))
            .function("c", call("d"))
            .function("d", if_prob(0.5, call("d"), skip()))
            .main(call("a"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        let levels = scc_levels(&program, &sccs);
        assert_eq!(levels.len(), 3);
        let names_at = |l: usize| {
            let mut names: Vec<&str> = levels[l]
                .iter()
                .flat_map(|&i| sccs[i].iter().map(String::as_str))
                .collect();
            names.sort_unstable();
            names
        };
        assert_eq!(names_at(0), vec!["d"]);
        assert_eq!(names_at(1), vec!["b", "c"]);
        assert_eq!(names_at(2), vec!["a"]);
    }

    #[test]
    fn parallel_compositional_solves_match_sequential() {
        // Two independent tail-recursive functions (one dependency level with
        // two groups → exercised by `solve_batch`), called from `main` in
        // tail position of a probabilistic branch.
        let program = ProgramBuilder::new()
            .function("b", if_prob(0.5, seq([tick(1.0), call("b")]), skip()))
            .function("c", if_prob(0.25, seq([tick(2.0), call("c")]), tick(1.0)))
            .main(if_prob(0.5, call("b"), call("c")))
            .build()
            .unwrap();
        let sequential = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        let parallel = sequential.clone().with_threads(4);
        let seq_result = analyze_with(&program, &sequential, &SimplexBackend).unwrap();
        let par_result = analyze_with(&program, &parallel, &SimplexBackend).unwrap();
        assert_eq!(seq_result.lp_solves, par_result.lp_solves);
        assert_eq!(seq_result.groups, par_result.groups);
        for (s, p) in seq_result.bounds.iter().zip(&par_result.bounds) {
            assert_eq!(s, p, "parallel bounds diverged from sequential");
        }
    }

    #[test]
    fn result_reports_per_group_stats() {
        let program = ProgramBuilder::new()
            .function("geo", if_prob(0.5, seq([tick(1.0), call("geo")]), skip()))
            .main(call("geo"))
            .build()
            .unwrap();
        let global = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
        assert_eq!(global.groups.len(), 1);
        assert_eq!(global.groups[0].name, "global");
        assert_eq!(global.groups[0].variables, global.lp_variables);
        assert_eq!(global.groups[0].constraints, global.lp_constraints);

        let options = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        let compositional = analyze_with(&program, &options, &SimplexBackend).unwrap();
        assert_eq!(compositional.groups.len(), 2);
        assert_eq!(compositional.groups[0].name, "geo");
        assert_eq!(compositional.groups.last().unwrap().name, "main");
        let total: usize = compositional.groups.iter().map(|g| g.constraints).sum();
        assert_eq!(total, compositional.lp_constraints);
    }

    #[test]
    fn session_extension_layers_onto_the_main_system() {
        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2);
        let backend = SimplexBackend;
        let (result, mut session) = analyze_session(&program, &options, &backend).unwrap();
        assert_eq!(session.minimizes(), 1);
        assert_eq!(session.extension_constraints(), 0);
        // Extend with the program itself (a stand-in for the instrumented
        // program): one more minimize, fresh rows, no new solve-from-scratch.
        session.extend_and_minimize(&program, 2).unwrap();
        assert_eq!(session.minimizes(), 2);
        assert!(session.extension_constraints() > 0);
        assert!(session.extension_variables() > 0);
        // The main result is untouched by the extension.
        let e1 = result.raw_moment_at(1, &[]);
        assert!(e1.lo() <= 2.0 + 1e-6 && e1.hi() >= 2.0 - 1e-6);
    }

    #[test]
    fn mutually_recursive_functions_form_one_scc() {
        let program = ProgramBuilder::new()
            .function("even", if_prob(0.5, call("odd"), skip()))
            .function("odd", call("even"))
            .main(call("even"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
    }

    #[test]
    fn straight_line_program_moments_are_exact() {
        let program = ProgramBuilder::new()
            .main(seq([tick(2.0), tick(3.0)]))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(3), &SimplexBackend).unwrap();
        let intervals = result.raw_intervals_at(&[]);
        assert!((intervals[1].mid() - 5.0).abs() < 1e-6);
        assert!((intervals[2].mid() - 25.0).abs() < 1e-6);
        assert!((intervals[3].mid() - 125.0).abs() < 1e-6);
        assert!(intervals[1].width() < 1e-6);
        assert_eq!(result.degree(), 3);
    }

    #[test]
    fn probabilistic_choice_moments_are_exact() {
        // cost 2 w.p. 1/2, else 4: E = 3, E² = 10, E³ = 36.
        let program = ProgramBuilder::new()
            .main(if_prob(0.5, tick(2.0), tick(4.0)))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(3), &SimplexBackend).unwrap();
        let i = result.raw_intervals_at(&[]);
        assert!((i[1].mid() - 3.0).abs() < 1e-6 && i[1].width() < 1e-6);
        assert!((i[2].mid() - 10.0).abs() < 1e-6);
        assert!((i[3].mid() - 36.0).abs() < 1e-6);
        // Variance = 10 - 9 = 1.
        let central = result.central_at(&[]);
        assert!(central.variance_upper() >= 1.0 - 1e-6);
        assert!(central.variance_upper() <= 1.0 + 1e-4);
    }

    #[test]
    fn geometric_recursion_is_bounded() {
        // Geometric(1/2): E = 2, E[C²] = 6.
        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
        let i = result.raw_intervals_at(&[]);
        assert!(i[1].lo() <= 2.0 + 1e-6 && i[1].hi() >= 2.0 - 1e-6);
        assert!(i[2].hi() >= 6.0 - 1e-6);
        // The bounds should be reasonably tight for this simple program.
        assert!(i[1].hi() <= 2.0 + 1e-4, "upper bound {}", i[1].hi());
        assert!(i[2].hi() <= 6.0 + 1e-3, "upper bound {}", i[2].hi());
    }

    #[test]
    fn unknown_callee_levels_surface_as_errors() {
        // Force an error by requesting a compositional analysis of a program
        // whose cross-group call is *not* in tail position with a large
        // trailing cost — the exported specification cannot cover it exactly
        // when the callee's exported post is too narrow.  The analysis must
        // not panic; it either succeeds (with a valid bound) or reports an
        // LP failure.
        let program = ProgramBuilder::new()
            .function("leaf", tick(1.0))
            .function("wrap", seq([call("leaf"), tick(5.0)]))
            .main(call("wrap"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        match analyze_with(&program, &options, &SimplexBackend) {
            Ok(result) => {
                let i = result.raw_intervals_at(&[]);
                assert!(i[1].hi() >= 6.0 - 1e-6);
            }
            Err(AnalysisError::LpFailed { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn options_builders() {
        let o = AnalysisOptions::degree(4)
            .with_poly_degree(2)
            .with_mode(SolveMode::Compositional)
            .with_valuation(vec![(Var::new("d"), 10.0)])
            .with_template_vars(vec![Var::new("d")]);
        assert_eq!(o.degree, 4);
        assert_eq!(o.poly_degree, 2);
        assert_eq!(o.mode, SolveMode::Compositional);
        assert_eq!((o.valuation_fn())(&Var::new("d")), 10.0);
        assert_eq!((o.valuation_fn())(&Var::new("zzz")), 1.0);
    }
}
