//! The analysis driver: call-graph decomposition, specification templates,
//! objectives, LP solving, and bound extraction.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cma_appl::{Program, RangeFacts};
use cma_logic::Context;
use cma_lp::{
    DualPricing, DualRatio, FactorKind, LpBackend, LpSession, LpSolution, LpStatus, PricingRule,
    SolveBudget, SolveStats, SolverTuning, WarmStrategy, DEADLINE_CHECK_PERIOD,
};
use cma_semiring::poly::{Polynomial, Var};
use cma_semiring::Interval;

use crate::builder::ConstraintBuilder;
use crate::central::CentralMoments;
use crate::derive::{transform, DeriveCtx, DeriveError};
use crate::plan::{DerivationPlan, PlanMode, PlanStats};
use crate::spec::{ResolvedSpec, SpecEntry, SpecTable};
use crate::template::SymMoment;
use crate::weaken::require_contains;

/// How the per-function specifications are solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// One linear program for the whole program (most precise; the default).
    #[default]
    Global,
    /// One linear program per call-graph SCC, callees first, with resolved
    /// specifications frozen before moving on.  Scales linearly in the number
    /// of functions (Fig. 10) but requires cross-component calls to be in
    /// tail position (see `DESIGN.md`).
    Compositional,
}

/// User-facing options of the analysis.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Target moment degree `m` (2 for variance, 4 for the fourth central
    /// moment, …).
    pub degree: usize,
    /// Base polynomial degree `d`: the `k`-th moment component uses templates
    /// of degree `k·d`.
    pub poly_degree: u32,
    /// Solving strategy.
    pub mode: SolveMode,
    /// Concrete valuation at which imprecision is minimized (§3.4);
    /// unmentioned variables default to 1.
    pub valuation: Vec<(Var, f64)>,
    /// Restrict templates to these variables (default: all program variables).
    pub template_vars: Option<Vec<Var>>,
    /// Worker threads for solving independent compositional SCC groups
    /// concurrently (1 = sequential; only [`SolveMode::Compositional`] has
    /// independent groups to parallelize).
    pub threads: usize,
    /// Pricing rule the LP backends use to choose entering columns (devex by
    /// default; see `cma_lp::PricingRule`).
    pub pricing: PricingRule,
    /// Whether the LP presolve pass runs at session open (on by default).
    pub presolve: bool,
    /// Basis factorization the LP backends solve with (dense `B⁻¹` by
    /// default, Markowitz LU with eta updates via `lu`; see
    /// `cma_lp::FactorKind`).
    pub factor: FactorKind,
    /// How warm LP sessions re-solve after incremental rows — dual-simplex
    /// pivots by default, or the legacy phase-1 restart (see
    /// `cma_lp::WarmStrategy`).  Also selects whether the soundness
    /// extension rides the live main session (dual) or solves its disjoint
    /// subsystem standalone (phase1).
    pub warm_resolve: WarmStrategy,
    /// Upper limit for automatic base-polynomial-degree escalation: when the
    /// generated LP is *infeasible* at `poly_degree` (templates too weak to
    /// express a bound), the analysis retries `d → d+1` up to this limit,
    /// re-instantiating the recorded derivation plan instead of re-walking
    /// the program cold.  `None` (the default) disables retries.
    pub max_poly_degree: Option<u32>,
    /// Facts exported by the static checker (`cma-check`): statically
    /// refuted branches are derived one-sided (no join template, no
    /// containment rows), never-entered loops collapse to their
    /// continuation, and templates do not range over variables the checker
    /// proved dead.  The facts must come from a checker run over *this*
    /// program under the same preconditions; `None` (the default) disables
    /// pruning.
    pub range_facts: Option<Arc<RangeFacts>>,
    /// Wall-clock budget for the **whole analysis**: every LP solve — across
    /// compositional groups, poly-degree retries, and degradation rungs —
    /// draws down the one deadline derived from this duration at analysis
    /// start.  Exhaustion surfaces as
    /// [`LpStatus::BudgetExhausted`] inside [`AnalysisError::LpFailed`],
    /// never as infeasibility, so it cannot trigger a poly-degree retry;
    /// [`analyze_session_resilient`] instead trades precision for an answer.
    /// `None` (the default) leaves solves unbudgeted.
    pub timeout: Option<Duration>,
    /// Wall-clock budget for **each LP group solve**, measured from the
    /// moment the group's solver session opens and capped by whatever
    /// remains of [`timeout`](Self::timeout).  `None` (the default) gives
    /// groups no deadline of their own.
    pub group_timeout: Option<Duration>,
    /// How dual warm re-solves price the leaving row (devex by default,
    /// exact steepest-edge via `Steepest`; see `cma_lp::DualPricing`).
    pub dual_pricing: DualPricing,
    /// The dual ratio test: long-step bound-flipping by default, or the
    /// classic Harris min-ratio (see `cma_lp::DualRatio`).
    pub dual_ratio: DualRatio,
}

impl AnalysisOptions {
    /// Options for analyzing moments up to degree `m` with linear base
    /// templates.
    pub fn degree(m: usize) -> Self {
        AnalysisOptions {
            degree: m,
            poly_degree: 1,
            mode: SolveMode::Global,
            valuation: Vec::new(),
            template_vars: None,
            threads: 1,
            pricing: PricingRule::default(),
            presolve: true,
            factor: FactorKind::default(),
            warm_resolve: WarmStrategy::default(),
            max_poly_degree: None,
            range_facts: None,
            timeout: None,
            group_timeout: None,
            dual_pricing: DualPricing::default(),
            dual_ratio: DualRatio::default(),
        }
    }

    /// Sets the objective valuation.
    pub fn with_valuation(mut self, valuation: Vec<(Var, f64)>) -> Self {
        self.valuation = valuation;
        self
    }

    /// Sets the solving mode.
    pub fn with_mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the base polynomial degree.
    pub fn with_poly_degree(mut self, d: u32) -> Self {
        self.poly_degree = d;
        self
    }

    /// Restricts the template variables.
    pub fn with_template_vars(mut self, vars: Vec<Var>) -> Self {
        self.template_vars = Some(vars);
        self
    }

    /// Sets the number of worker threads for independent group solves.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the LP pricing rule.
    pub fn with_pricing(mut self, pricing: PricingRule) -> Self {
        self.pricing = pricing;
        self
    }

    /// Enables or disables the LP presolve pass.
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Sets the LP basis factorization.
    pub fn with_factor(mut self, factor: FactorKind) -> Self {
        self.factor = factor;
        self
    }

    /// Sets the warm re-solve strategy for incremental LP rows.
    pub fn with_warm_resolve(mut self, warm: WarmStrategy) -> Self {
        self.warm_resolve = warm;
        self
    }

    /// Sets the dual leaving-row pricing used by warm re-solves.
    pub fn with_dual_pricing(mut self, pricing: DualPricing) -> Self {
        self.dual_pricing = pricing;
        self
    }

    /// Sets the dual ratio test used by warm re-solves.
    pub fn with_dual_ratio(mut self, ratio: DualRatio) -> Self {
        self.dual_ratio = ratio;
        self
    }

    /// Enables automatic poly-degree escalation on infeasibility, retrying
    /// `d → d+1` up to `max` while reusing the recorded derivation plan.
    pub fn with_max_poly_degree(mut self, max: u32) -> Self {
        self.max_poly_degree = Some(max);
        self
    }

    /// Attaches checker-exported range facts; the derivation then skips
    /// refuted branches and never-entered loops and drops dead template
    /// variables (see [`AnalysisResult::pruning`]).
    pub fn with_range_facts(mut self, facts: Arc<RangeFacts>) -> Self {
        self.range_facts = Some(facts);
        self
    }

    /// Bounds the whole analysis by a wall-clock deadline (see
    /// [`timeout`](Self::timeout)).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Bounds each LP group solve by its own wall-clock deadline (see
    /// [`group_timeout`](Self::group_timeout)).
    pub fn with_group_timeout(mut self, timeout: Duration) -> Self {
        self.group_timeout = Some(timeout);
        self
    }

    /// The solver tuning these options imply (unbudgeted; the engine derives
    /// deadline-carrying tunings from this plus the timeout options).
    pub fn solver_tuning(&self) -> SolverTuning {
        SolverTuning {
            pricing: self.pricing,
            presolve: self.presolve,
            factor: self.factor,
            warm: self.warm_resolve,
            budget: SolveBudget::UNLIMITED,
            dual_pricing: self.dual_pricing,
            dual_ratio: self.dual_ratio,
            deadline_check_period: DEADLINE_CHECK_PERIOD,
        }
    }

    /// [`solver_tuning`](Self::solver_tuning) carrying the budget of one
    /// group solve: the earlier of the whole-analysis deadline (if any) and
    /// a fresh per-group deadline from
    /// [`group_timeout`](Self::group_timeout).
    pub(crate) fn group_tuning(&self, overall_deadline: Option<Instant>) -> SolverTuning {
        let mut tuning = self.solver_tuning();
        let group_deadline = self.group_timeout.map(|t| Instant::now() + t);
        tuning.budget.deadline = match (overall_deadline, group_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        tuning
    }

    fn valuation_fn(&self) -> impl Fn(&Var) -> f64 + '_ {
        move |v: &Var| {
            self.valuation
                .iter()
                .find(|(var, _)| var == v)
                .map(|(_, value)| *value)
                .unwrap_or(1.0)
        }
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions::degree(2)
    }
}

/// Failures of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The generated LP has no solution: the templates (at the given degree)
    /// cannot express a bound, or a weakening certificate does not exist.
    LpFailed {
        /// Solver status (infeasible, unbounded, budget exhausted).
        status: LpStatus,
        /// Functions whose constraints were being solved.
        group: Vec<String>,
        /// Target moment degree `m` of the failed system.
        degree: usize,
        /// Base polynomial degree `d` of the failed templates (an
        /// *infeasible* status at this degree usually means the templates
        /// are too weak — retrying at `d+1` via
        /// [`AnalysisOptions::max_poly_degree`] often succeeds).
        poly_degree: u32,
    },
    /// Constraint generation failed.
    Derivation(DeriveError),
    /// [`AnalysisSession::escalate_degree`] called with a target that does
    /// not exceed the session's current degree.
    InvalidEscalation {
        /// The session's current moment degree.
        from: usize,
        /// The requested target degree.
        to: usize,
    },
    /// [`AnalysisSession::escalate_degree`] called after an extension (the
    /// soundness instrumentation) was already layered onto the session: the
    /// extension's rows and objective terms would skew the escalated
    /// optimum.  Escalate first, then extend.
    EscalationAfterExtension,
    /// A previous failed escalation or extension left rows without an
    /// optimum in the live solver session (appended rows cannot be
    /// retracted); no further in-session operation is possible — start a
    /// fresh [`analyze_session`].
    SessionPoisoned,
}

impl AnalysisError {
    /// Whether the root cause is an *infeasible* LP — the signal that the
    /// templates at the current poly degree cannot express a bound and a
    /// `d → d+1` retry may help.  Returns the failing `(degree, poly_degree)`.
    pub fn infeasible_at(&self) -> Option<(usize, u32)> {
        match self {
            AnalysisError::LpFailed {
                status: LpStatus::Infeasible,
                degree,
                poly_degree,
                ..
            } => Some((*degree, *poly_degree)),
            _ => None,
        }
    }

    /// Whether the root cause is an exhausted [`SolveBudget`] — a statement
    /// about resources, never about feasibility: retrying with more budget
    /// (or degrading via [`analyze_session_resilient`]) may succeed, while
    /// escalating the poly degree will not.
    pub fn budget_exhausted(&self) -> bool {
        matches!(
            self,
            AnalysisError::LpFailed {
                status: LpStatus::BudgetExhausted,
                ..
            }
        )
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::LpFailed {
                status,
                group,
                degree,
                poly_degree,
            } => {
                write!(
                    f,
                    "linear program {status} while solving {group:?} \
                     (moment degree {degree}, poly degree {poly_degree})"
                )
            }
            AnalysisError::Derivation(e) => write!(f, "derivation failed: {e}"),
            AnalysisError::InvalidEscalation { from, to } => write!(
                f,
                "cannot escalate the session from degree {from} to {to} \
                 (the target must be strictly larger)"
            ),
            AnalysisError::EscalationAfterExtension => write!(
                f,
                "cannot escalate a session that already carries an extension \
                 (run escalate_degree before the soundness phase)"
            ),
            AnalysisError::SessionPoisoned => write!(
                f,
                "the session's live LP was left without an optimum by a \
                 failed escalation or extension; start a fresh analysis"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<DeriveError> for AnalysisError {
    fn from(e: DeriveError) -> Self {
        AnalysisError::Derivation(e)
    }
}

/// Symbolic interval bound on one raw moment of the accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentBound {
    /// Lower-bound polynomial over the program variables (initial state).
    pub lower: Polynomial,
    /// Upper-bound polynomial over the program variables (initial state).
    pub upper: Polynomial,
}

impl MomentBound {
    /// Evaluates the bound at an initial valuation (unmentioned variables
    /// default to 0, matching the all-zero initial state of the semantics).
    pub fn at(&self, valuation: &[(Var, f64)]) -> Interval {
        let val = |v: &Var| {
            valuation
                .iter()
                .find(|(var, _)| var == v)
                .map(|(_, value)| *value)
                .unwrap_or(0.0)
        };
        Interval::hull(self.lower.eval(&val), self.upper.eval(&val))
    }
}

/// Per-group size and solver-effort statistics of one solved linear program.
///
/// Equality compares the solver *path* (sizes, pivot and eta counters), not
/// the `*_ns` wall-clock timers — two runs over the same system are equal
/// whenever they pivoted identically, however long the clock said it took.
#[derive(Debug, Clone)]
pub struct GroupLpStats {
    /// Display name of the group (`"global"`, `"main"`, or the functions of
    /// a compositional SCC joined with `+`).
    pub name: String,
    /// The functions whose specifications the group solved (empty for the
    /// final `main`-only group).
    pub functions: Vec<String>,
    /// LP variables of the group's system.
    pub variables: usize,
    /// LP constraint rows of the group's system.
    pub constraints: usize,
    /// Simplex iterations of the group's solve (degeneracy shows up here).
    pub iterations: usize,
    /// Basis refactorizations of the group's solve.
    pub refactorizations: usize,
    /// Constraint rows removed by LP presolve before the solve.
    pub presolve_rows: usize,
    /// LP columns removed by presolve (fixed or unreferenced).
    pub presolve_cols: usize,
    /// Product-form eta updates appended by the LU factorization (0 under
    /// the dense inverse).
    pub etas: usize,
    /// Dual-simplex pivots spent on warm incremental-row re-solves.
    pub dual_pivots: usize,
    /// Nonbasic bound flips (long-step dual ratio test, upper-bounded
    /// columns crossing to their opposite bound without a basis change).
    pub bound_flips: usize,
    /// Forrest–Tomlin eta-file compactions performed by the LU updates.
    pub eta_compactions: usize,
    /// Peak eta-file length between refactorizations.
    pub eta_len: usize,
    /// Nanoseconds spent in forward solves (`ftran`).
    pub ftran_ns: u64,
    /// Nanoseconds spent in backward solves (`btran`).
    pub btran_ns: u64,
    /// Nanoseconds spent pricing entering columns / leaving rows.
    pub pricing_ns: u64,
    /// Nanoseconds spent in primal/dual ratio tests.
    pub ratio_ns: u64,
    /// Forward solves completed on the hyper-sparse kernel path.
    pub hyper_sparse_ftrans: u64,
    /// Backward solves completed on the hyper-sparse kernel path.
    pub hyper_sparse_btrans: u64,
    /// LU kernel solves that ran (or fell back to) the dense scan.
    pub dense_fallbacks: u64,
    /// Kernel workspace growth events after first sizing (0 in steady
    /// state — the hot loop allocates nothing).
    pub kernel_allocs: u64,
}

impl PartialEq for GroupLpStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.functions == other.functions
            && self.variables == other.variables
            && self.constraints == other.constraints
            && self.iterations == other.iterations
            && self.refactorizations == other.refactorizations
            && self.presolve_rows == other.presolve_rows
            && self.presolve_cols == other.presolve_cols
            && self.etas == other.etas
            && self.dual_pivots == other.dual_pivots
            && self.bound_flips == other.bound_flips
            && self.eta_compactions == other.eta_compactions
            && self.eta_len == other.eta_len
    }
}

impl Eq for GroupLpStats {}

/// The outcome of a successful analysis.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Interval bounds on the raw moments `E[C^k]` for `k = 0..=m`, as
    /// polynomials over the program variables at the start of `main`.
    pub bounds: Vec<MomentBound>,
    /// Resolved per-function specifications (function name, restriction level).
    pub specs: BTreeMap<(String, usize), ResolvedSpec>,
    /// Total number of LP variables generated.
    pub lp_variables: usize,
    /// Total number of LP constraints generated.
    pub lp_constraints: usize,
    /// Number of linear programs handed to the backend (1 in global mode, one
    /// per call-graph SCC plus one for `main` in compositional mode).
    pub lp_solves: usize,
    /// Size statistics of every solved group, in solve order (degree
    /// escalations append a pseudo-group carrying the increment's sizes).
    pub groups: Vec<GroupLpStats>,
    /// Base polynomial degree the successful instantiation used (larger than
    /// the requested degree when automatic poly-degree escalation retried).
    pub poly_degree: u32,
    /// Automatic `d → d+1` retries spent before the system became feasible.
    pub poly_retries: usize,
    /// Derivation-plan reuse counters (slots/columns/recipes reused vs
    /// created across instantiations, including poly-degree retries).
    pub plan: PlanStats,
    /// Statistics of the in-session degree escalation that produced this
    /// result (`None` for from-scratch analyses).
    pub escalation: Option<EscalationStats>,
    /// Derivation work skipped thanks to checker-exported range facts
    /// (all-zero when [`AnalysisOptions::range_facts`] is unset).
    pub pruning: PruningStats,
    /// Degradation-ladder rungs descended to produce this result (empty for
    /// a full-precision run; only [`analyze_session_resilient`] ever records
    /// any).
    pub degradation: DegradationStats,
    /// Wall-clock time spent in the analysis.
    pub elapsed: Duration,
}

/// Derivation work skipped thanks to checker-exported range facts
/// ([`AnalysisOptions::with_range_facts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruningStats {
    /// `if` statements derived one-sided because the checker refuted the
    /// other branch: no join template, no containment rows.
    pub refuted_branches: usize,
    /// `while` loops collapsed to their continuation because the guard is
    /// refuted on entry: no invariant template, no body or exit rows.
    pub skipped_loops: usize,
    /// Program variables the moment templates do not range over because the
    /// checker proved them write-only.
    pub dropped_template_vars: usize,
}

impl PruningStats {
    /// Whether any pruning happened at all.
    pub fn any(&self) -> bool {
        self.refuted_branches > 0 || self.skipped_loops > 0 || self.dropped_template_vars > 0
    }

    fn absorb(&mut self, other: &PruningStats) {
        self.refuted_branches += other.refuted_branches;
        self.skipped_loops += other.skipped_loops;
        self.dropped_template_vars += other.dropped_template_vars;
    }
}

/// One precision-for-progress rung of the graceful-degradation ladder,
/// taken by [`analyze_session_resilient`] after an attempt exhausted its
/// [`SolveBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationStep {
    /// Global mode was downgraded to compositional: one small LP per
    /// call-graph SCC instead of one monolithic system.
    CompositionalMode,
    /// The target moment degree was lowered — fewer, cheaper moment
    /// components, so the bounds stop at `to` instead of `from`.
    ReduceDegree {
        /// Moment degree before the reduction.
        from: usize,
        /// Moment degree after the reduction.
        to: usize,
    },
    /// LP presolve was switched on for the retry (smaller systems).
    EnablePresolve,
}

impl std::fmt::Display for DegradationStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationStep::CompositionalMode => write!(f, "global->compositional"),
            DegradationStep::ReduceDegree { from, to } => write!(f, "degree:{from}->{to}"),
            DegradationStep::EnablePresolve => write!(f, "presolve:on"),
        }
    }
}

/// The degradation rungs an analysis descended before producing its result —
/// empty for a full-precision run.  A nonempty value labels the bounds as
/// **degraded**: still sound (every rung re-runs the full analysis under
/// weaker options, it never edits bounds after the fact), but less precise
/// than requested.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegradationStats {
    /// Ladder rungs taken, in the order they were taken.
    pub steps: Vec<DegradationStep>,
}

impl DegradationStats {
    /// Whether any rung was taken at all.
    pub fn degraded(&self) -> bool {
        !self.steps.is_empty()
    }
}

impl std::fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for step in &self.steps {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

/// Observable effort of one [`AnalysisSession::escalate_degree`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EscalationStats {
    /// Moment degree the session was at before the escalation.
    pub from_degree: usize,
    /// Target moment degree after the escalation.
    pub to_degree: usize,
    /// LP columns appended for the new moment components.
    pub appended_variables: usize,
    /// LP constraint rows appended for the new moment components.
    pub appended_constraints: usize,
    /// Template slots replayed from the derivation plan.
    pub reused_slots: usize,
    /// Existing LP template columns the new components ride on.
    pub reused_columns: usize,
    /// Dual-simplex pivots the warm re-solve spent repairing the appended
    /// rows (0 when the open session re-solves from scratch).
    pub dual_pivots: usize,
    /// Simplex iterations of the escalated re-minimize.
    pub iterations: usize,
    /// From-scratch restarts the escalation had to fall back to (0 on the
    /// happy path: compositional sessions and poly-degree bumps restart).
    pub cold_restarts: usize,
    /// Automatic poly-degree retries spent during the escalation.
    pub poly_retries: usize,
}

impl AnalysisResult {
    /// The target moment degree `m`.
    pub fn degree(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The symbolic bound on the `k`-th raw moment.
    pub fn raw_moment_bound(&self, k: usize) -> &MomentBound {
        &self.bounds[k]
    }

    /// The `k`-th raw moment bound evaluated at an initial valuation.
    pub fn raw_moment_at(&self, k: usize, valuation: &[(Var, f64)]) -> Interval {
        self.bounds[k].at(valuation)
    }

    /// All raw-moment intervals at an initial valuation.
    pub fn raw_intervals_at(&self, valuation: &[(Var, f64)]) -> Vec<Interval> {
        self.bounds.iter().map(|b| b.at(valuation)).collect()
    }

    /// Central-moment information (variance, central 3rd/4th moments,
    /// skewness, kurtosis) at an initial valuation.
    pub fn central_at(&self, valuation: &[(Var, f64)]) -> CentralMoments {
        CentralMoments::from_raw_intervals(&self.raw_intervals_at(valuation))
    }

    /// Symbolic upper bound on the variance: `U₂ − L₁²`
    /// (valid wherever `L₁ ≥ 0`, cf. Ex. 2.4).
    pub fn variance_upper_poly(&self) -> Option<Polynomial> {
        if self.bounds.len() < 3 {
            return None;
        }
        let u2 = &self.bounds[2].upper;
        let l1 = &self.bounds[1].lower;
        Some(u2.sub(&l1.mul(l1)))
    }

    /// The resolved specification of a function at a restriction level.
    pub fn spec(&self, function: &str, level: usize) -> Option<&ResolvedSpec> {
        self.specs.get(&(function.to_string(), level))
    }
}

/// Analyzes a program, deriving symbolic interval bounds on the raw moments
/// `E[C^k]`, `k ≤ m`, of its accumulated cost, solving every generated linear
/// program with the given [`LpBackend`].
///
/// # Errors
///
/// Returns [`AnalysisError`] when constraint generation fails or the LP has no
/// solution under the chosen template degrees.
pub fn analyze_with(
    program: &Program,
    options: &AnalysisOptions,
    backend: &dyn LpBackend,
) -> Result<AnalysisResult, AnalysisError> {
    analyze_session(program, options, backend).map(|(result, _session)| result)
}

/// The engine state kept alive after [`analyze_session`]: the main group's
/// [`ConstraintStore`](crate::store::ConstraintStore) (inside its builder)
/// and the open solver session over it.
///
/// The soundness phase extends this state — appending the step-counting
/// side-condition system and re-minimizing in place — instead of deriving
/// and solving a fresh problem from scratch (see
/// [`soundness_report_in_session`](crate::soundness::soundness_report_in_session)).
pub struct AnalysisSession<'a> {
    builder: ConstraintBuilder,
    session: Box<dyn LpSession + 'a>,
    backend: &'a dyn LpBackend,
    options: AnalysisOptions,
    program: &'a Program,
    groups: Vec<GroupLpStats>,
    lp_solves: usize,
    poly_retries: usize,
    pruning: PruningStats,
    poisoned: bool,
    minimizes: usize,
    extension_variables: usize,
    extension_constraints: usize,
    extension_shared_columns: usize,
    extension_stats: SolveStats,
}

impl<'a> AnalysisSession<'a> {
    /// Total `minimize` calls issued on the main session so far (1 after the
    /// main solve; +1 per soundness extension or degree escalation).
    pub fn minimizes(&self) -> usize {
        self.minimizes
    }

    /// The options the session currently runs under (degree reflects the
    /// latest successful escalation, poly degree the latest retry).
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// The LP backend the session solves with.
    pub fn backend(&self) -> &'a dyn LpBackend {
        self.backend
    }

    /// LP variables appended by extensions (0 until an extension runs).
    pub fn extension_variables(&self) -> usize {
        self.extension_variables
    }

    /// LP constraint rows appended by extensions (0 until an extension runs).
    pub fn extension_constraints(&self) -> usize {
        self.extension_constraints
    }

    /// LP template columns extensions *shared* with the main derivation
    /// instead of minting their own (nonzero only when an extension rode the
    /// plan in shadow mode — see [`extend_and_minimize`](Self::extend_and_minimize)).
    pub fn extension_shared_columns(&self) -> usize {
        self.extension_shared_columns
    }

    /// Solver-effort counters of the extension minimizes (in particular
    /// `dual_pivots`: how many dual-simplex pivots the warm re-solves took
    /// instead of a phase-1 restart).
    pub fn extension_stats(&self) -> SolveStats {
        self.extension_stats
    }

    /// Derives `program` (globally, with all-fresh templates) *into* the
    /// existing constraint store and minimizes the extension's own
    /// objective, without re-deriving or re-solving the main system.
    ///
    /// Under the default dual warm-resolve strategy — and when the open
    /// session actually repairs appended rows in place
    /// ([`LpSession::warm_resolves_in_place`], true for the sparse core) —
    /// the increment is flushed into the open main session and re-minimized
    /// **in place**: the session's optimal basis stays dual feasible when
    /// rows are appended, so the extension solves through dual-simplex
    /// pivots (visible in [`extension_stats`](Self::extension_stats))
    /// instead of a phase-1 restart.  Otherwise a variable-disjoint
    /// extension is extracted and solved as a standalone subsystem of the
    /// shared store ([`crate::ConstraintStore::subproblem`]); an extension that
    /// references main-system variables always takes the flush path.
    ///
    /// For extension programs that are *skeleton-preserving rewrites* of the
    /// analyzed program, see
    /// [`extend_and_minimize_shared`](Self::extend_and_minimize_shared).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::LpFailed`] when the extended system has no optimum,
    /// [`AnalysisError::Derivation`] when constraint generation fails.
    pub fn extend_and_minimize(
        &mut self,
        program: &Program,
        degree: usize,
    ) -> Result<(), AnalysisError> {
        self.extend_with(program, degree, false)
    }

    /// [`extend_and_minimize`](Self::extend_and_minimize) for an extension
    /// program that is a **skeleton-preserving rewrite** of the analyzed
    /// program — same functions, same control structure, only statement
    /// costs changed (the Thm 4.4 step-counting instrumentation is the
    /// in-tree example).  When the extension rides the live session (global
    /// mode, dual warm re-solves, in-place row repair), the derivation then
    /// runs as a *plan transformer* in shadow mode: the main derivation's
    /// component-0 template columns (the probability-mass component, which
    /// cost rewriting cannot change) are shared outright and their
    /// constraint rows skipped, so the extension appends strictly fewer
    /// rows and columns than a disjoint derivation
    /// ([`extension_shared_columns`](Self::extension_shared_columns) counts
    /// the sharing).  Sessions that cannot ride warm fall back to the
    /// all-fresh disjoint derivation automatically.
    ///
    /// **The skeleton requirement is the caller's obligation**: sharing
    /// component-0 columns of a structurally *different* program would
    /// silently constrain the wrong templates.  Callers with arbitrary
    /// extension programs must use
    /// [`extend_and_minimize`](Self::extend_and_minimize) instead.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::LpFailed`] when the extended system has no optimum,
    /// [`AnalysisError::Derivation`] when constraint generation fails.
    pub fn extend_and_minimize_shared(
        &mut self,
        program: &Program,
        degree: usize,
    ) -> Result<(), AnalysisError> {
        self.extend_with(program, degree, true)
    }

    fn extend_with(
        &mut self,
        program: &Program,
        degree: usize,
        share: bool,
    ) -> Result<(), AnalysisError> {
        if self.poisoned {
            return Err(AnalysisError::SessionPoisoned);
        }
        let mut options = self.options.clone();
        options.degree = degree;
        // Extensions always derive globally: all fresh templates in one
        // block, no compositional export constraints.
        options.mode = SolveMode::Global;
        // The facts were proved for the *analyzed* program; an extension is
        // a different one (the instrumented rewrite carries dummy spans, so
        // the facts could never fire there anyway).  Dropping them keeps
        // extension walks manifestly unpruned.
        options.range_facts = None;
        if options.template_vars.is_none() {
            // Pin the template variables to the extension's own program.
            options.template_vars = Some(program.vars());
        }
        let vars_before = self.builder.num_vars();
        let rows_before = self.builder.num_constraints();
        let objective_mark = self.builder.store().objective_len();

        let flush_in_place =
            options.warm_resolve == WarmStrategy::Dual && self.session.warm_resolves_in_place();
        // Template sharing additionally needs the main plan to cover the
        // whole program (global mode) *and* the appended rows to land in the
        // live session (otherwise the disjoint subproblem fast path below
        // would be lost).
        let share_plan = share && flush_in_place && self.options.mode == SolveMode::Global;
        let plan_before = self.builder.plan().stats();
        self.builder.plan_mut().set_mode(if share_plan {
            PlanMode::Shadow
        } else {
            PlanMode::Detached
        });
        let group: Vec<String> = program.functions().map(|f| f.name().to_string()).collect();
        let built = build_group(
            &mut self.builder,
            program,
            &options,
            &group,
            true,
            &BTreeMap::new(),
        );
        self.builder.plan_mut().set_mode(PlanMode::Record);
        if let Err(e) = built {
            // Part of the extension may already sit in the store; a later
            // flush would silently inject the half-derived rows into the
            // live session.
            self.poisoned = true;
            return Err(e);
        }
        self.extension_shared_columns += self
            .builder
            .plan()
            .stats()
            .since(&plan_before)
            .columns_reused;
        let sub = if flush_in_place {
            // Ride the live session: appended rows keep the optimal basis
            // dual feasible, so the warm re-solve is a dual step.  Sessions
            // that would re-solve from scratch (the dense reference) keep
            // the standalone-subsystem fast path below.
            None
        } else {
            self.builder
                .store()
                .subproblem(vars_before, rows_before, objective_mark)
        };
        let flushed = sub.is_none();
        let solution = match sub {
            Some(sub) => self
                .backend
                .open_with(&sub, &options.group_tuning(None))
                .minimize(sub.objective()),
            None => {
                self.builder.store_mut().flush(self.session.as_mut());
                let objective = self.builder.store().aggregated_objective(objective_mark);
                self.session.minimize(&objective)
            }
        };
        self.minimizes += 1;
        self.extension_stats = self.extension_stats.merge(&solution.stats);
        self.extension_variables += self.builder.num_vars() - vars_before;
        self.extension_constraints += self.builder.num_constraints() - rows_before;
        if solution.is_optimal() {
            Ok(())
        } else {
            if flushed {
                // The failed extension's rows are irreversibly part of the
                // live session; further in-session work would ride a system
                // without an optimum.
                self.poisoned = true;
            }
            Err(AnalysisError::LpFailed {
                status: solution.status,
                group: vec!["<extension>".to_string()],
                degree: options.degree,
                poly_degree: options.poly_degree,
            })
        }
    }

    /// Escalates the session to moment degree `target` **in place**: the
    /// recorded [`DerivationPlan`] replays in extend mode, so the existing
    /// template columns back the components `≤ m` verbatim and only the new
    /// components `m+1..=target` mint columns and emit rows, which are
    /// flushed into the live solver session and re-minimized warm (dual
    /// pivots from the still-dual-feasible basis — no cold re-derive, no
    /// phase-1 restart on the happy path).
    ///
    /// The escalated system is *identical* (modulo column/row order) to a
    /// from-scratch degree-`target` derivation: component-`k` rows are
    /// degree-invariant because frames are `(h+1)`-restricted (zero on
    /// components `≤ m`), so the old rows are exactly the component-`≤m`
    /// slice of the new system.  Bounds therefore match a cold degree-
    /// `target` analysis within solver tolerance.
    ///
    /// Compositional sessions freeze resolved callee specifications per
    /// degree and cannot extend them in place: they fall back to a cold
    /// re-analysis (reported via [`EscalationStats::cold_restarts`]).  An
    /// infeasible escalated system retries `d → d+1` when
    /// [`AnalysisOptions::max_poly_degree`] allows, re-instantiating the
    /// plan into a fresh session.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidEscalation`] when `target` does not exceed
    /// the current degree, [`AnalysisError::LpFailed`] when the escalated
    /// system has no optimum (after any permitted poly-degree retries).
    pub fn escalate_degree(&mut self, target: usize) -> Result<AnalysisResult, AnalysisError> {
        let from_degree = self.options.degree;
        if target <= from_degree {
            return Err(AnalysisError::InvalidEscalation {
                from: from_degree,
                to: target,
            });
        }
        if self.poisoned {
            return Err(AnalysisError::SessionPoisoned);
        }
        // An already-layered extension (soundness rows + objective terms)
        // would be folded into the escalated optimum; the documented order —
        // escalate first, then extend — is enforced, not just advised.
        if self.extension_constraints > 0 || self.extension_variables > 0 {
            return Err(AnalysisError::EscalationAfterExtension);
        }
        let mut options = self.options.clone();
        options.degree = target;

        if self.options.mode == SolveMode::Compositional {
            // Resolved callee specs have no components above `from_degree`;
            // re-run the compositional pipeline cold at the target degree.
            return self.escalate_cold(options, from_degree, 0);
        }

        let start = Instant::now();
        let vars_before = self.builder.num_vars();
        let rows_before = self.builder.num_constraints();
        let plan_before = self.builder.plan().stats();
        let final_group: Vec<String> = self
            .program
            .functions()
            .map(|f| f.name().to_string())
            .collect();
        self.builder.plan_mut().set_mode(PlanMode::Extend);
        let built = build_group(
            &mut self.builder,
            self.program,
            &options,
            &final_group,
            true,
            &BTreeMap::new(),
        );
        self.builder.plan_mut().set_mode(PlanMode::Record);
        let build = match built {
            Ok(build) => build,
            Err(e) => {
                // The plan advanced mid-walk; further replays would skip
                // rows that were never instantiated.
                self.poisoned = true;
                return Err(e);
            }
        };

        self.builder.store_mut().flush(self.session.as_mut());
        let objective = self.builder.store().aggregated_objective(0);
        let solution = self.session.minimize(&objective);
        self.minimizes += 1;

        if !solution.is_optimal() {
            let max_d = options.max_poly_degree.unwrap_or(options.poly_degree);
            if solution.status == LpStatus::Infeasible && options.poly_degree < max_d {
                // Templates too weak at this poly degree: bump `d` and
                // re-instantiate the plan into a fresh store and session.
                options.poly_degree += 1;
                return self.escalate_cold(options, from_degree, 1);
            }
            // The escalated rows are irreversibly part of the live session
            // and the system has no optimum: the session cannot be ridden
            // any further.
            self.poisoned = true;
            return Err(AnalysisError::LpFailed {
                status: solution.status,
                group: final_group,
                degree: target,
                poly_degree: options.poly_degree,
            });
        }

        let plan_delta = self.builder.plan().stats().since(&plan_before);
        let appended_variables = self.builder.num_vars() - vars_before;
        let appended_constraints = self.builder.num_constraints() - rows_before;
        let escalation = EscalationStats {
            from_degree,
            to_degree: target,
            appended_variables,
            appended_constraints,
            reused_slots: plan_delta.slots_reused,
            reused_columns: plan_delta.columns_reused,
            dual_pivots: solution.stats.dual_pivots,
            iterations: solution.stats.iterations,
            cold_restarts: 0,
            poly_retries: 0,
        };
        self.groups.push(GroupLpStats {
            name: format!("escalate({from_degree}->{target})"),
            functions: final_group.clone(),
            variables: appended_variables,
            constraints: appended_constraints,
            iterations: solution.stats.iterations,
            refactorizations: solution.stats.refactorizations,
            presolve_rows: solution.stats.presolve_rows,
            presolve_cols: solution.stats.presolve_cols,
            etas: solution.stats.etas,
            dual_pivots: solution.stats.dual_pivots,
            bound_flips: solution.stats.bound_flips,
            eta_compactions: solution.stats.eta_compactions,
            eta_len: solution.stats.eta_len,
            ftran_ns: solution.stats.ftran_ns,
            btran_ns: solution.stats.btran_ns,
            pricing_ns: solution.stats.pricing_ns,
            ratio_ns: solution.stats.ratio_ns,
            hyper_sparse_ftrans: solution.stats.hyper_sparse_ftrans,
            hyper_sparse_btrans: solution.stats.hyper_sparse_btrans,
            dense_fallbacks: solution.stats.dense_fallbacks,
            kernel_allocs: solution.stats.kernel_allocs,
        });

        let outcome = extract_outcome(build, &solution, &final_group, true, &options)?;
        let main_bounds = outcome
            .main_bounds
            .expect("main bounds computed by the escalated group");
        let bounds = main_bounds
            .into_iter()
            .map(|(lower, upper)| MomentBound { lower, upper })
            .collect();
        self.options.degree = target;
        Ok(AnalysisResult {
            bounds,
            specs: outcome.specs,
            lp_variables: self.builder.num_vars(),
            lp_constraints: self.builder.num_constraints(),
            lp_solves: self.lp_solves,
            groups: self.groups.clone(),
            poly_degree: options.poly_degree,
            // Cumulative across the session: the lower-degree analysis may
            // already have spent automatic retries landing on this `d`.
            poly_retries: self.poly_retries,
            plan: self.builder.plan().stats(),
            escalation: Some(escalation),
            pruning: self.pruning,
            degradation: DegradationStats::default(),
            elapsed: start.elapsed(),
        })
    }

    /// Cold escalation path: re-analyzes at the target degree (and poly
    /// degree) in a fresh session — seeded with the recorded plan so the
    /// skeleton still replays — and swaps the fresh session into `self`.
    fn escalate_cold(
        &mut self,
        options: AnalysisOptions,
        from_degree: usize,
        extra_poly_retries: usize,
    ) -> Result<AnalysisResult, AnalysisError> {
        let prior_retries = self.poly_retries;
        let mut plans = BTreeMap::new();
        plans.insert(FINAL_PLAN_KEY.to_string(), self.builder.take_plan());
        let (mut result, fresh) =
            match analyze_session_seeded(self.program, &options, self.backend, plans) {
                Ok(ok) => ok,
                Err(e) => {
                    // The plan was consumed by the failed re-analysis; a
                    // later in-place replay against the emptied plan would
                    // re-emit the whole system into the old store.
                    self.poisoned = true;
                    return Err(e);
                }
            };
        // Retries spent *during* this escalation vs the session's cumulative
        // total (which includes the original lower-degree analysis's).
        let during = result.poly_retries + extra_poly_retries;
        result.poly_retries = prior_retries + during;
        result.escalation = Some(EscalationStats {
            from_degree,
            to_degree: options.degree,
            reused_slots: result.plan.slots_reused,
            reused_columns: 0,
            appended_variables: 0,
            appended_constraints: 0,
            dual_pivots: 0,
            iterations: 0,
            cold_restarts: 1,
            poly_retries: during,
        });
        *self = fresh;
        self.poly_retries = result.poly_retries;
        Ok(result)
    }
}

/// [`analyze_with`], additionally returning the live [`AnalysisSession`] so
/// later phases (the Thm 4.4 soundness check) can extend the constraint
/// system in place instead of re-deriving it.
///
/// # Errors
///
/// Returns [`AnalysisError`] when constraint generation fails or the LP has no
/// solution under the chosen template degrees.
pub fn analyze_session<'a>(
    program: &'a Program,
    options: &AnalysisOptions,
    backend: &'a dyn LpBackend,
) -> Result<(AnalysisResult, AnalysisSession<'a>), AnalysisError> {
    analyze_session_seeded(program, options, backend, BTreeMap::new())
}

/// [`analyze_session`] with a **graceful-degradation ladder**: when an
/// attempt fails because its [`SolveBudget`] ran out — never on
/// infeasibility or any other verdict — the analysis retries under
/// progressively cheaper options, each retry under whatever remains of the
/// whole-analysis deadline.  The rungs, in order:
///
/// 1. global → compositional mode (one small LP per SCC instead of one
///    monolithic system);
/// 2. moment degree `m → m−1`, repeated down to degree 1;
/// 3. LP presolve on (when it was off).
///
/// Every rung taken is recorded in [`AnalysisResult::degradation`], so a
/// degraded bound is always labeled, never silent.  Compositional mode is
/// the one rung that can *introduce* failures of its own (it rejects
/// non-tail cross-component calls); if its attempt fails with a non-budget
/// error, the rung is reverted and the descent continues past it.
///
/// # Errors
///
/// Returns [`AnalysisError`] when constraint generation fails or the LP has
/// no solution, and the original budget-exhaustion error when the ladder
/// runs out of rungs (or of wall clock) without landing an answer.
pub fn analyze_session_resilient<'a>(
    program: &'a Program,
    options: &AnalysisOptions,
    backend: &'a dyn LpBackend,
) -> Result<(AnalysisResult, AnalysisSession<'a>), AnalysisError> {
    let deadline = options.timeout.map(|t| Instant::now() + t);
    let mut attempt = options.clone();
    let mut steps: Vec<DegradationStep> = Vec::new();
    let mut mode_rung_tried = attempt.mode != SolveMode::Global;
    loop {
        match analyze_session(program, &attempt, backend) {
            Ok((mut result, session)) => {
                result.degradation = DegradationStats { steps };
                return Ok((result, session));
            }
            Err(e) => {
                if !e.budget_exhausted() {
                    if steps.last() == Some(&DegradationStep::CompositionalMode) {
                        // The mode rung itself broke the analysis — revert
                        // it and keep descending the remaining rungs.
                        attempt.mode = options.mode;
                        steps.pop();
                    } else {
                        return Err(e);
                    }
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(e);
                }
                if !mode_rung_tried {
                    mode_rung_tried = true;
                    attempt.mode = SolveMode::Compositional;
                    steps.push(DegradationStep::CompositionalMode);
                } else if attempt.degree > 1 {
                    steps.push(DegradationStep::ReduceDegree {
                        from: attempt.degree,
                        to: attempt.degree - 1,
                    });
                    attempt.degree -= 1;
                } else if !attempt.presolve {
                    attempt.presolve = true;
                    steps.push(DegradationStep::EnablePresolve);
                } else {
                    return Err(e);
                }
                if let Some(d) = deadline {
                    // The retry gets what is left of the one deadline.
                    attempt.timeout = Some(d.duration_since(Instant::now()));
                }
            }
        }
    }
}

/// Plan key of the final (session-holding) group in the retry plan store.
const FINAL_PLAN_KEY: &str = "<final>";

/// [`analyze_session`] seeded with recorded derivation plans (keyed by group
/// display name, [`FINAL_PLAN_KEY`] for the final group), the engine of both
/// the automatic poly-degree retry loop and cold degree escalations: each
/// attempt re-instantiates the surviving plans in refresh mode instead of
/// recording the skeleton from scratch.
fn analyze_session_seeded<'a>(
    program: &'a Program,
    options: &AnalysisOptions,
    backend: &'a dyn LpBackend,
    mut plans: BTreeMap<String, DerivationPlan>,
) -> Result<(AnalysisResult, AnalysisSession<'a>), AnalysisError> {
    let start = Instant::now();
    // One deadline for the whole analysis, shared by every poly-degree
    // retry: an attempt that exhausts it fails with `BudgetExhausted`,
    // which `infeasible_at` never matches, so the retry loop stops too.
    let deadline = options.timeout.map(|t| start + t);
    let base_d = options.poly_degree;
    let max_d = options.max_poly_degree.unwrap_or(base_d).max(base_d);
    let mut poly_retries = 0usize;
    loop {
        let mut attempt = options.clone();
        attempt.poly_degree = base_d + poly_retries as u32;
        match analyze_attempt(program, &attempt, backend, deadline, &mut plans) {
            Ok((mut result, mut session)) => {
                result.elapsed = start.elapsed();
                result.poly_retries = poly_retries;
                session.poly_retries = poly_retries;
                return Ok((result, session));
            }
            Err(e) if e.infeasible_at().is_some() && base_d + (poly_retries as u32) < max_d => {
                // Templates too weak: escalate the base polynomial degree
                // and re-instantiate the recorded plans.
                poly_retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Installs a saved plan (in refresh mode) into a fresh builder, if one is
/// recorded under `key`.
fn install_saved_plan(
    builder: &mut ConstraintBuilder,
    plans: &mut BTreeMap<String, DerivationPlan>,
    key: &str,
) {
    if let Some(mut plan) = plans.remove(key) {
        plan.set_mode(PlanMode::Refresh);
        builder.install_plan(plan);
    }
}

/// One full derivation + solve pass at fixed options.  Plans of every built
/// group are stashed back into `plans` before any LP failure is reported, so
/// the retry loop can re-instantiate them.
fn analyze_attempt<'a>(
    program: &'a Program,
    options: &AnalysisOptions,
    backend: &'a dyn LpBackend,
    deadline: Option<Instant>,
    plans: &mut BTreeMap<String, DerivationPlan>,
) -> Result<(AnalysisResult, AnalysisSession<'a>), AnalysisError> {
    let start = Instant::now();
    let mut resolved: BTreeMap<(String, usize), ResolvedSpec> = BTreeMap::new();
    let mut lp_variables = 0usize;
    let mut lp_constraints = 0usize;
    let mut lp_solves = 0usize;
    let mut group_stats: Vec<GroupLpStats> = Vec::new();
    let mut plan_stats = PlanStats::default();
    let mut pruning = PruningStats::default();
    if options.template_vars.is_none() && options.range_facts.is_some() {
        pruning.dropped_template_vars =
            program.vars().len() - template_vars(program, options).len();
    }

    // Solve every non-final group (compositional mode only); groups at the
    // same dependency level are independent and go through `solve_batch`.
    if options.mode == SolveMode::Compositional {
        let groups = call_graph_sccs(program);
        for level in scc_levels(program, &groups) {
            let mut builds = Vec::with_capacity(level.len());
            for &g in &level {
                let mut builder = ConstraintBuilder::new();
                install_saved_plan(&mut builder, plans, &groups[g].join("+"));
                let build =
                    build_group(&mut builder, program, options, &groups[g], false, &resolved)?;
                pruning.absorb(&build.pruning);
                builder.plan_mut().set_mode(PlanMode::Record);
                builds.push((builder, build, groups[g].clone()));
            }
            let problems: Vec<cma_lp::LpProblem> = builds
                .iter()
                .map(|(builder, _, _)| builder.store().to_problem())
                .collect();
            let solutions = backend.solve_batch_with(
                &problems,
                options.threads,
                &options.group_tuning(deadline),
            );
            let mut failure = None;
            for ((mut builder, build, group), solution) in builds.into_iter().zip(solutions) {
                lp_variables += builder.num_vars();
                lp_constraints += builder.num_constraints();
                lp_solves += 1;
                group_stats.push(group_lp_stats(
                    group.join("+"),
                    group.clone(),
                    &builder,
                    solution.stats,
                ));
                // Stash the plan before the outcome can fail the attempt.
                plan_stats = plan_stats.merge(&builder.plan().stats());
                plans.insert(group.join("+"), builder.take_plan());
                if failure.is_none() {
                    match extract_outcome(build, &solution, &group, false, options) {
                        Ok(outcome) => resolved.extend(outcome.specs),
                        Err(e) => failure = Some(e),
                    }
                }
            }
            if let Some(e) = failure {
                return Err(e);
            }
        }
    }

    // The final group — everything (global mode) or just `main` over the
    // frozen specifications (compositional mode) — is solved through an open
    // session that stays alive for the soundness extension.
    let (final_group, name): (Vec<String>, &str) = match options.mode {
        SolveMode::Global => (
            program.functions().map(|f| f.name().to_string()).collect(),
            "global",
        ),
        SolveMode::Compositional => (Vec::new(), "main"),
    };
    let mut builder = ConstraintBuilder::new();
    install_saved_plan(&mut builder, plans, FINAL_PLAN_KEY);
    let build = build_group(
        &mut builder,
        program,
        options,
        &final_group,
        true,
        &resolved,
    )?;
    pruning.absorb(&build.pruning);
    builder.plan_mut().set_mode(PlanMode::Record);
    lp_variables += builder.num_vars();
    lp_constraints += builder.num_constraints();
    lp_solves += 1;
    let objective = builder.store().aggregated_objective(0);
    let mut session = builder
        .store_mut()
        .open_session_with(backend, &options.group_tuning(deadline));
    let solution = session.minimize(&objective);
    group_stats.push(group_lp_stats(
        name.to_string(),
        final_group.clone(),
        &builder,
        solution.stats,
    ));
    if !solution.is_optimal() {
        plans.insert(FINAL_PLAN_KEY.to_string(), builder.take_plan());
    }
    let outcome = extract_outcome(build, &solution, &final_group, true, options)?;
    resolved.extend(outcome.specs);

    let main_bounds = outcome
        .main_bounds
        .expect("main bounds computed by the final group");
    let bounds = main_bounds
        .into_iter()
        .map(|(lower, upper)| MomentBound { lower, upper })
        .collect();
    let result = AnalysisResult {
        bounds,
        specs: resolved,
        lp_variables,
        lp_constraints,
        lp_solves,
        groups: group_stats.clone(),
        poly_degree: options.poly_degree,
        poly_retries: 0,
        plan: plan_stats.merge(&builder.plan().stats()),
        escalation: None,
        pruning,
        degradation: DegradationStats::default(),
        elapsed: start.elapsed(),
    };
    Ok((
        result,
        AnalysisSession {
            builder,
            session,
            backend,
            options: options.clone(),
            program,
            groups: group_stats,
            lp_solves,
            poly_retries: 0,
            pruning,
            poisoned: false,
            minimizes: 1,
            extension_variables: 0,
            extension_constraints: 0,
            extension_shared_columns: 0,
            extension_stats: SolveStats::default(),
        },
    ))
}

/// Assembles one group's LP stats from its builder sizes and the solver
/// counters of its solution.
fn group_lp_stats(
    name: String,
    functions: Vec<String>,
    builder: &ConstraintBuilder,
    stats: SolveStats,
) -> GroupLpStats {
    GroupLpStats {
        name,
        functions,
        variables: builder.num_vars(),
        constraints: builder.num_constraints(),
        iterations: stats.iterations,
        refactorizations: stats.refactorizations,
        presolve_rows: stats.presolve_rows,
        presolve_cols: stats.presolve_cols,
        etas: stats.etas,
        dual_pivots: stats.dual_pivots,
        bound_flips: stats.bound_flips,
        eta_compactions: stats.eta_compactions,
        eta_len: stats.eta_len,
        ftran_ns: stats.ftran_ns,
        btran_ns: stats.btran_ns,
        pricing_ns: stats.pricing_ns,
        ratio_ns: stats.ratio_ns,
        hyper_sparse_ftrans: stats.hyper_sparse_ftrans,
        hyper_sparse_btrans: stats.hyper_sparse_btrans,
        dense_fallbacks: stats.dense_fallbacks,
        kernel_allocs: stats.kernel_allocs,
    }
}

/// Dependency levels of the call-graph SCCs: level 0 groups call nothing
/// outside themselves, level `n + 1` groups call only groups of level ≤ `n`.
/// Groups within one level are independent and can be solved concurrently.
fn scc_levels(program: &Program, sccs: &[Vec<String>]) -> Vec<Vec<usize>> {
    let graph = program.call_graph();
    let mut scc_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for f in scc {
            scc_of.insert(f, i);
        }
    }
    let mut level = vec![0usize; sccs.len()];
    // `call_graph_sccs` emits callees first, so every callee SCC's level is
    // final by the time its callers are processed.
    for (i, scc) in sccs.iter().enumerate() {
        for f in scc {
            for callee in graph.get(f.as_str()).into_iter().flatten() {
                if let Some(&j) = scc_of.get(callee.as_str()) {
                    if j != i {
                        level[i] = level[i].max(level[j] + 1);
                    }
                }
            }
        }
    }
    let max_level = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_level];
    for (i, &l) in level.iter().enumerate() {
        buckets[l].push(i);
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

struct GroupOutcome {
    specs: BTreeMap<(String, usize), ResolvedSpec>,
    main_bounds: Option<Vec<(Polynomial, Polynomial)>>,
}

/// Everything `build_group` produces besides the constraints themselves:
/// the fresh specification templates and (for the final group) the derived
/// pre-annotation of `main`, both awaiting a solution to resolve against.
struct GroupBuild {
    specs: SpecTable,
    main_pre: Option<SymMoment>,
    pruning: PruningStats,
}

fn template_vars(program: &Program, options: &AnalysisOptions) -> Vec<Var> {
    if let Some(vars) = &options.template_vars {
        return vars.clone();
    }
    let mut vars = program.vars();
    if let Some(facts) = &options.range_facts {
        // Write-only variables cannot influence cost or control flow;
        // templates need not range over them.
        vars.retain(|v| !facts.dead_template_vars().contains(v));
    }
    vars
}

/// Emits the constraint system of one group into `builder`: fresh templates
/// for the group's functions, derivation of every body, export constraints
/// (compositional mode), the tightness objective, and — when `include_main`
/// — the derivation of `main` itself.
fn build_group(
    builder: &mut ConstraintBuilder,
    program: &Program,
    options: &AnalysisOptions,
    group: &[String],
    include_main: bool,
    resolved: &BTreeMap<(String, usize), ResolvedSpec>,
) -> Result<GroupBuild, AnalysisError> {
    let m = options.degree;
    let d = options.poly_degree;
    let vars = template_vars(program, options);
    let valuation = options.valuation_fn();
    let facts = options.range_facts.as_deref();
    // Per-group walk counters; `dropped_template_vars` is a whole-program
    // property and is filled in once by the caller.
    let mut pruning = PruningStats::default();

    let mut specs = SpecTable::new();

    // Resolved specifications from earlier groups become constant annotations.
    for ((name, level), spec) in resolved {
        specs.insert(name, *level, spec.to_entry());
    }
    // Fresh templates for the functions of this group (plan slots, so a
    // replay — degree escalation, poly-degree refresh, the shadow soundness
    // derivation — reuses the recorded columns instead of minting).
    for name in group {
        for level in 0..=m {
            let entry = SpecEntry {
                pre: builder.planned_moment(
                    &format!("spec.{name}.{level}.pre"),
                    &format!("{name}.pre{level}"),
                    &vars,
                    m,
                    d,
                    level,
                ),
                post: builder.planned_moment(
                    &format!("spec.{name}.{level}.post"),
                    &format!("{name}.post{level}"),
                    &vars,
                    m,
                    d,
                    level,
                ),
            };
            specs.insert(name, level, entry);
        }
    }

    // In compositional mode the exported specifications must stay usable by
    // later callers: the level-0 post must cover the identity annotation and
    // higher-level posts must cover the zero annotation.
    if options.mode == SolveMode::Compositional {
        for name in group {
            for level in 0..=m {
                let post = specs.get(name, level).expect("just inserted").post.clone();
                let target = if level == 0 {
                    SymMoment::one(m)
                } else {
                    SymMoment::zero(m)
                };
                require_contains(
                    builder,
                    &Context::top(),
                    &post,
                    &target,
                    d,
                    &format!("export.{name}.{level}"),
                );
            }
        }
    }

    // Justify every specification of the group by analyzing the body.
    for name in group {
        let function = program
            .function(name)
            .expect("group members are declared functions");
        let ctx = Context::from_conditions(function.precondition());
        for level in 0..=m {
            let entry = specs.get(name, level).expect("just inserted").clone();
            let dctx = DeriveCtx::for_unit(
                program,
                &specs,
                m,
                d,
                vars.clone(),
                level,
                format!("{name}.h{level}"),
            )
            .with_facts(facts);
            let derived_pre = transform(builder, &dctx, function.body(), &ctx, entry.post.clone())?;
            pruning.refuted_branches += dctx.pruned_branches.get();
            pruning.skipped_loops += dctx.pruned_loops.get();
            require_contains(
                builder,
                &ctx,
                &entry.pre,
                &derived_pre,
                d,
                &format!("spec.{name}.{level}"),
            );
            // Reward tight specifications (lower weight for deeper levels);
            // plan replays add terms only for components not yet rewarded.
            let weight = 0.1 / (1.0 + level as f64);
            let from = builder.recipe_gate(&format!("obj.{name}.{level}"), m);
            for k in from..=m {
                builder.add_objective(&entry.pre.component(k).hi.eval_vars(&valuation), weight);
                builder.add_objective(&entry.pre.component(k).lo.eval_vars(&valuation), -weight);
            }
        }
    }

    // Analyze `main` with the identity post-annotation.
    let main_pre = if include_main {
        let ctx = Context::from_conditions(program.precondition());
        let dctx =
            DeriveCtx::for_unit(program, &specs, m, d, vars.clone(), 0, "main").with_facts(facts);
        let pre = transform(builder, &dctx, program.main(), &ctx, SymMoment::one(m))?;
        pruning.refuted_branches += dctx.pruned_branches.get();
        pruning.skipped_loops += dctx.pruned_loops.get();
        let from = builder.recipe_gate("obj.main", m);
        for k in from..=m {
            builder.add_objective(&pre.component(k).hi.eval_vars(&valuation), 1.0);
            builder.add_objective(&pre.component(k).lo.eval_vars(&valuation), -1.0);
        }
        Some(pre)
    } else {
        None
    };

    Ok(GroupBuild {
        specs,
        main_pre,
        pruning,
    })
}

/// Resolves a group's templates against an LP solution (or reports the LP
/// failure for the group).
fn extract_outcome(
    build: GroupBuild,
    solution: &LpSolution,
    group: &[String],
    include_main: bool,
    options: &AnalysisOptions,
) -> Result<GroupOutcome, AnalysisError> {
    if !solution.is_optimal() {
        return Err(AnalysisError::LpFailed {
            status: solution.status,
            group: if include_main && group.is_empty() {
                vec!["main".to_string()]
            } else {
                group.to_vec()
            },
            degree: options.degree,
            poly_degree: options.poly_degree,
        });
    }

    let values = |v| solution.value(v);
    let mut resolved_specs = BTreeMap::new();
    for name in group {
        let mut level = 0;
        while let Some(entry) = build.specs.get(name, level) {
            resolved_specs.insert(
                (name.clone(), level),
                ResolvedSpec {
                    pre: entry.pre.resolve(&values),
                    post: entry.post.resolve(&values),
                },
            );
            level += 1;
        }
    }
    let main_bounds = build.main_pre.map(|pre| pre.resolve(&values));

    Ok(GroupOutcome {
        specs: resolved_specs,
        main_bounds,
    })
}

/// Strongly connected components of the call graph in reverse topological
/// order (callees before callers).
pub fn call_graph_sccs(program: &Program) -> Vec<Vec<String>> {
    let graph: BTreeMap<String, BTreeSet<String>> = program.call_graph();
    let nodes: Vec<String> = graph.keys().cloned().collect();
    let mut state = TarjanState {
        graph: &graph,
        index: 0,
        indices: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        sccs: Vec::new(),
    };
    for node in &nodes {
        if !state.indices.contains_key(node) {
            state.strong_connect(node);
        }
    }
    // Tarjan emits SCCs in reverse topological order of the condensation
    // (an SCC is emitted only after all SCCs it can reach), i.e. callees first.
    state.sccs
}

struct TarjanState<'a> {
    graph: &'a BTreeMap<String, BTreeSet<String>>,
    index: usize,
    indices: BTreeMap<String, usize>,
    lowlink: BTreeMap<String, usize>,
    on_stack: BTreeSet<String>,
    stack: Vec<String>,
    sccs: Vec<Vec<String>>,
}

impl TarjanState<'_> {
    fn strong_connect(&mut self, v: &str) {
        self.indices.insert(v.to_string(), self.index);
        self.lowlink.insert(v.to_string(), self.index);
        self.index += 1;
        self.stack.push(v.to_string());
        self.on_stack.insert(v.to_string());

        let successors: Vec<String> = self
            .graph
            .get(v)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for w in successors {
            if !self.graph.contains_key(&w) {
                continue;
            }
            if !self.indices.contains_key(&w) {
                self.strong_connect(&w);
                let low = self.lowlink[&w].min(self.lowlink[v]);
                self.lowlink.insert(v.to_string(), low);
            } else if self.on_stack.contains(&w) {
                let low = self.indices[&w].min(self.lowlink[v]);
                self.lowlink.insert(v.to_string(), low);
            }
        }

        if self.lowlink[v] == self.indices[v] {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack.remove(&w);
                let done = w == v;
                scc.push(w);
                if done {
                    break;
                }
            }
            scc.reverse();
            self.sccs.push(scc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;
    use cma_lp::SimplexBackend;

    /// A program with one refuted branch (`x < 0` right after `x := 1`), one
    /// never-entered loop, and one write-only variable, plus the facts a
    /// checker run would export for it.  True cost: exactly 1.
    fn pruned_fixture() -> (Program, cma_appl::RangeFacts) {
        let source = "func main() begin\n  x := 1;\n  waste := 7;\n  \
                      if x < 0 then tick(9) else tick(1) fi;\n  \
                      while x < 0 do tick(5) od\nend\n";
        let program = cma_appl::parse_program_unchecked(source).unwrap();
        fn mark(stmt: &cma_appl::Stmt, facts: &mut cma_appl::RangeFacts) {
            use cma_appl::ast::StmtKind;
            match stmt.kind() {
                StmtKind::If(..) => {
                    facts.insert_refuted(stmt.span(), cma_appl::BranchFact::ThenUnreachable)
                }
                StmtKind::While(..) => {
                    facts.insert_refuted(stmt.span(), cma_appl::BranchFact::LoopNeverEntered)
                }
                StmtKind::Seq(ss) => ss.iter().for_each(|s| mark(s, facts)),
                _ => {}
            }
        }
        let mut facts = cma_appl::RangeFacts::new();
        mark(program.main(), &mut facts);
        facts.insert_dead_template_var(Var::new("waste"));
        (program, facts)
    }

    #[test]
    fn range_facts_prune_the_generated_lp() {
        let (program, facts) = pruned_fixture();
        let base = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
        assert!(!base.pruning.any());

        let options = AnalysisOptions::degree(2).with_range_facts(Arc::new(facts));
        let pruned = analyze_with(&program, &options, &SimplexBackend).unwrap();
        assert_eq!(
            pruned.pruning,
            PruningStats {
                refuted_branches: 1,
                skipped_loops: 1,
                dropped_template_vars: 1,
            }
        );
        assert!(
            pruned.lp_constraints < base.lp_constraints,
            "pruned {} vs base {}",
            pruned.lp_constraints,
            base.lp_constraints
        );
        assert!(pruned.lp_variables < base.lp_variables);

        // Only `tick(1)` is live: both analyses must bracket cost 1, and the
        // pruned one is deterministic (no templates left, exact moments).
        for result in [&base, &pruned] {
            let e1 = result.raw_moment_at(1, &[(Var::new("x"), 1.0)]);
            assert!(e1.lo() <= 1.0 + 1e-6 && e1.hi() >= 1.0 - 1e-6, "{e1:?}");
        }
        let e1 = pruned.raw_moment_at(1, &[(Var::new("x"), 1.0)]);
        assert!(e1.width() < 1e-6, "pruned bound not exact: {e1:?}");
    }

    #[test]
    fn pruned_session_escalates_and_extends_consistently() {
        let (program, facts) = pruned_fixture();
        let facts = Arc::new(facts);
        let backend = SimplexBackend;
        let options = AnalysisOptions::degree(1).with_range_facts(facts.clone());
        let (r1, mut session) = analyze_session(&program, &options, &backend).unwrap();
        assert_eq!(r1.pruning.refuted_branches, 1);

        // In-place escalation replays the pruned plan with the same facts.
        let r2 = session.escalate_degree(2).unwrap();
        assert_eq!(r2.pruning, r1.pruning);
        let cold_options = AnalysisOptions::degree(2).with_range_facts(facts);
        let cold = analyze_with(&program, &cold_options, &SimplexBackend).unwrap();
        for k in 1..=2 {
            let hot = r2.raw_moment_at(k, &[(Var::new("x"), 1.0)]);
            let ref_b = cold.raw_moment_at(k, &[(Var::new("x"), 1.0)]);
            assert!(
                (hot.hi() - ref_b.hi()).abs() < 1e-6,
                "k={k}: {hot:?} vs {ref_b:?}"
            );
        }

        // The shadow extension walks the *unpruned* skeleton; skipped-site
        // accounting keeps its keys aligned with the pruned plan, so the
        // shared replay must not collide and the system stays optimal.
        session.extend_and_minimize_shared(&program, 2).unwrap();
        assert!(session.extension_constraints() > 0);
    }

    #[test]
    fn sccs_are_in_callee_first_order() {
        let program = ProgramBuilder::new()
            .function("a", seq([call("b"), call("c")]))
            .function("b", call("c"))
            .function("c", if_prob(0.5, call("c"), skip()))
            .main(call("a"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        assert_eq!(sccs.len(), 3);
        let pos = |name: &str| {
            sccs.iter()
                .position(|s| s.contains(&name.to_string()))
                .unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn scc_levels_bucket_independent_groups_together() {
        // main → a; a → {b, c}; b → d; c → d: levels d | b,c | a.
        let program = ProgramBuilder::new()
            .function("a", seq([call("b"), call("c")]))
            .function("b", call("d"))
            .function("c", call("d"))
            .function("d", if_prob(0.5, call("d"), skip()))
            .main(call("a"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        let levels = scc_levels(&program, &sccs);
        assert_eq!(levels.len(), 3);
        let names_at = |l: usize| {
            let mut names: Vec<&str> = levels[l]
                .iter()
                .flat_map(|&i| sccs[i].iter().map(String::as_str))
                .collect();
            names.sort_unstable();
            names
        };
        assert_eq!(names_at(0), vec!["d"]);
        assert_eq!(names_at(1), vec!["b", "c"]);
        assert_eq!(names_at(2), vec!["a"]);
    }

    #[test]
    fn parallel_compositional_solves_match_sequential() {
        // Two independent tail-recursive functions (one dependency level with
        // two groups → exercised by `solve_batch`), called from `main` in
        // tail position of a probabilistic branch.
        let program = ProgramBuilder::new()
            .function("b", if_prob(0.5, seq([tick(1.0), call("b")]), skip()))
            .function("c", if_prob(0.25, seq([tick(2.0), call("c")]), tick(1.0)))
            .main(if_prob(0.5, call("b"), call("c")))
            .build()
            .unwrap();
        let sequential = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        let parallel = sequential.clone().with_threads(4);
        let seq_result = analyze_with(&program, &sequential, &SimplexBackend).unwrap();
        let par_result = analyze_with(&program, &parallel, &SimplexBackend).unwrap();
        assert_eq!(seq_result.lp_solves, par_result.lp_solves);
        assert_eq!(seq_result.groups, par_result.groups);
        for (s, p) in seq_result.bounds.iter().zip(&par_result.bounds) {
            assert_eq!(s, p, "parallel bounds diverged from sequential");
        }
    }

    #[test]
    fn result_reports_per_group_stats() {
        let program = ProgramBuilder::new()
            .function("geo", if_prob(0.5, seq([tick(1.0), call("geo")]), skip()))
            .main(call("geo"))
            .build()
            .unwrap();
        let global = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
        assert_eq!(global.groups.len(), 1);
        assert_eq!(global.groups[0].name, "global");
        assert_eq!(global.groups[0].variables, global.lp_variables);
        assert_eq!(global.groups[0].constraints, global.lp_constraints);

        let options = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        let compositional = analyze_with(&program, &options, &SimplexBackend).unwrap();
        assert_eq!(compositional.groups.len(), 2);
        assert_eq!(compositional.groups[0].name, "geo");
        assert_eq!(compositional.groups.last().unwrap().name, "main");
        let total: usize = compositional.groups.iter().map(|g| g.constraints).sum();
        assert_eq!(total, compositional.lp_constraints);
    }

    #[test]
    fn session_extension_layers_onto_the_main_system() {
        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2);
        let backend = SimplexBackend;
        let (result, mut session) = analyze_session(&program, &options, &backend).unwrap();
        assert_eq!(session.minimizes(), 1);
        assert_eq!(session.extension_constraints(), 0);
        // Extend with the program itself (a stand-in for the instrumented
        // program): one more minimize, fresh rows, no new solve-from-scratch.
        session.extend_and_minimize(&program, 2).unwrap();
        assert_eq!(session.minimizes(), 2);
        assert!(session.extension_constraints() > 0);
        assert!(session.extension_variables() > 0);
        // The main result is untouched by the extension.
        let e1 = result.raw_moment_at(1, &[]);
        assert!(e1.lo() <= 2.0 + 1e-6 && e1.hi() >= 2.0 - 1e-6);
    }

    #[test]
    fn mutually_recursive_functions_form_one_scc() {
        let program = ProgramBuilder::new()
            .function("even", if_prob(0.5, call("odd"), skip()))
            .function("odd", call("even"))
            .main(call("even"))
            .build()
            .unwrap();
        let sccs = call_graph_sccs(&program);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
    }

    #[test]
    fn straight_line_program_moments_are_exact() {
        let program = ProgramBuilder::new()
            .main(seq([tick(2.0), tick(3.0)]))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(3), &SimplexBackend).unwrap();
        let intervals = result.raw_intervals_at(&[]);
        assert!((intervals[1].mid() - 5.0).abs() < 1e-6);
        assert!((intervals[2].mid() - 25.0).abs() < 1e-6);
        assert!((intervals[3].mid() - 125.0).abs() < 1e-6);
        assert!(intervals[1].width() < 1e-6);
        assert_eq!(result.degree(), 3);
    }

    #[test]
    fn probabilistic_choice_moments_are_exact() {
        // cost 2 w.p. 1/2, else 4: E = 3, E² = 10, E³ = 36.
        let program = ProgramBuilder::new()
            .main(if_prob(0.5, tick(2.0), tick(4.0)))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(3), &SimplexBackend).unwrap();
        let i = result.raw_intervals_at(&[]);
        assert!((i[1].mid() - 3.0).abs() < 1e-6 && i[1].width() < 1e-6);
        assert!((i[2].mid() - 10.0).abs() < 1e-6);
        assert!((i[3].mid() - 36.0).abs() < 1e-6);
        // Variance = 10 - 9 = 1.
        let central = result.central_at(&[]);
        assert!(central.variance_upper() >= 1.0 - 1e-6);
        assert!(central.variance_upper() <= 1.0 + 1e-4);
    }

    #[test]
    fn geometric_recursion_is_bounded() {
        // Geometric(1/2): E = 2, E[C²] = 6.
        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let result = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
        let i = result.raw_intervals_at(&[]);
        assert!(i[1].lo() <= 2.0 + 1e-6 && i[1].hi() >= 2.0 - 1e-6);
        assert!(i[2].hi() >= 6.0 - 1e-6);
        // The bounds should be reasonably tight for this simple program.
        assert!(i[1].hi() <= 2.0 + 1e-4, "upper bound {}", i[1].hi());
        assert!(i[2].hi() <= 6.0 + 1e-3, "upper bound {}", i[2].hi());
    }

    #[test]
    fn unknown_callee_levels_surface_as_errors() {
        // Force an error by requesting a compositional analysis of a program
        // whose cross-group call is *not* in tail position with a large
        // trailing cost — the exported specification cannot cover it exactly
        // when the callee's exported post is too narrow.  The analysis must
        // not panic; it either succeeds (with a valid bound) or reports an
        // LP failure.
        let program = ProgramBuilder::new()
            .function("leaf", tick(1.0))
            .function("wrap", seq([call("leaf"), tick(5.0)]))
            .main(call("wrap"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2).with_mode(SolveMode::Compositional);
        match analyze_with(&program, &options, &SimplexBackend) {
            Ok(result) => {
                let i = result.raw_intervals_at(&[]);
                assert!(i[1].hi() >= 6.0 - 1e-6);
            }
            Err(AnalysisError::LpFailed { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn options_builders() {
        let o = AnalysisOptions::degree(4)
            .with_poly_degree(2)
            .with_mode(SolveMode::Compositional)
            .with_valuation(vec![(Var::new("d"), 10.0)])
            .with_template_vars(vec![Var::new("d")])
            .with_timeout(Duration::from_secs(30))
            .with_group_timeout(Duration::from_secs(5));
        assert_eq!(o.degree, 4);
        assert_eq!(o.poly_degree, 2);
        assert_eq!(o.mode, SolveMode::Compositional);
        assert_eq!((o.valuation_fn())(&Var::new("d")), 10.0);
        assert_eq!((o.valuation_fn())(&Var::new("zzz")), 1.0);
        assert_eq!(o.timeout, Some(Duration::from_secs(30)));
        assert_eq!(o.group_timeout, Some(Duration::from_secs(5)));
    }

    /// An authentic `BudgetExhausted` solution, produced by a real solve
    /// under an already-expired deadline (the [`LpSolution`] constructor is
    /// crate-private to `cma-lp`).
    fn exhausted_solution() -> LpSolution {
        use cma_lp::{Cmp, LpProblem};
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        lp.set_objective(vec![(x, 1.0)]);
        let expired = SolveBudget {
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            ..SolveBudget::UNLIMITED
        };
        SimplexBackend.solve_with(&lp, &SolverTuning::with_budget(expired))
    }

    /// A backend whose first `failures` minimizes come back budget-exhausted
    /// and which then behaves exactly like [`SimplexBackend`] — the
    /// deterministic stand-in for "the deadline fired mid-campaign".
    struct FlakyBudget {
        failures: std::sync::atomic::AtomicUsize,
    }

    impl FlakyBudget {
        fn failing(failures: usize) -> Self {
            FlakyBudget {
                failures: std::sync::atomic::AtomicUsize::new(failures),
            }
        }
    }

    struct FlakySession<'a> {
        inner: Box<dyn LpSession + 'a>,
        failures: &'a std::sync::atomic::AtomicUsize,
    }

    impl LpSession for FlakySession<'_> {
        fn add_var(&mut self, name: &str, free: bool) -> cma_lp::LpVarId {
            self.inner.add_var(name, free)
        }
        fn add_constraint(&mut self, terms: &[(cma_lp::LpVarId, f64)], cmp: cma_lp::Cmp, rhs: f64) {
            self.inner.add_constraint(terms, cmp, rhs)
        }
        fn minimize(&mut self, objective: &[(cma_lp::LpVarId, f64)]) -> LpSolution {
            use std::sync::atomic::Ordering;
            let drained = self
                .failures
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if drained {
                exhausted_solution()
            } else {
                self.inner.minimize(objective)
            }
        }
        fn num_vars(&self) -> usize {
            self.inner.num_vars()
        }
        fn num_constraints(&self) -> usize {
            self.inner.num_constraints()
        }
    }

    impl LpBackend for FlakyBudget {
        fn name(&self) -> &str {
            "flaky-budget"
        }
        fn open<'a>(&'a self, problem: &cma_lp::LpProblem) -> Box<dyn LpSession + 'a> {
            Box::new(FlakySession {
                inner: SimplexBackend.open(problem),
                failures: &self.failures,
            })
        }
    }

    fn coin_program() -> Program {
        cma_appl::parse_program("func main() begin if prob(0.5) then tick(2) else tick(4) fi end")
            .unwrap()
    }

    #[test]
    fn expired_deadline_is_budget_exhaustion_not_infeasibility() {
        let program = coin_program();
        let options = AnalysisOptions::degree(2).with_timeout(Duration::ZERO);
        let err = analyze_with(&program, &options, &SimplexBackend).unwrap_err();
        assert!(err.budget_exhausted(), "{err:?}");
        // The one invariant the whole budget design hangs on: exhaustion is
        // never infeasibility, so it can never trigger a poly-degree retry.
        assert_eq!(err.infeasible_at(), None);
    }

    #[test]
    fn resilient_ladder_degrades_mode_then_degree_and_labels_the_result() {
        let program = coin_program();
        // Two exhausted attempts: global fails, compositional fails, the
        // degree-reduced retry lands.
        let backend = FlakyBudget::failing(2);
        let (result, _session) =
            analyze_session_resilient(&program, &AnalysisOptions::degree(2), &backend).unwrap();
        assert_eq!(
            result.degradation.steps,
            vec![
                DegradationStep::CompositionalMode,
                DegradationStep::ReduceDegree { from: 2, to: 1 },
            ]
        );
        assert!(result.degradation.degraded());
        assert_eq!(result.degree(), 1);
        // Degraded, not wrong: the first moment still brackets E[C] = 3.
        let e1 = result.raw_moment_at(1, &[]);
        assert!(e1.lo() <= 3.0 + 1e-6 && 3.0 - 1e-6 <= e1.hi(), "{e1:?}");
    }

    #[test]
    fn resilient_ladder_out_of_rungs_returns_the_exhaustion() {
        let program = coin_program();
        let backend = FlakyBudget::failing(usize::MAX);
        // Presolve is on by default, so the ladder is mode + one degree drop.
        match analyze_session_resilient(&program, &AnalysisOptions::degree(2), &backend) {
            Err(err) => assert!(err.budget_exhausted(), "{err:?}"),
            Ok(_) => panic!("an always-exhausted backend cannot produce a result"),
        };
    }

    #[test]
    fn resilient_without_exhaustion_records_no_degradation() {
        let program = coin_program();
        let (result, _session) =
            analyze_session_resilient(&program, &AnalysisOptions::degree(2), &SimplexBackend)
                .unwrap();
        assert!(!result.degradation.degraded());
        assert_eq!(result.degradation.to_string(), "");
        assert_eq!(result.degree(), 2);
    }

    #[test]
    fn degradation_steps_display_stable_labels() {
        let stats = DegradationStats {
            steps: vec![
                DegradationStep::CompositionalMode,
                DegradationStep::ReduceDegree { from: 3, to: 2 },
                DegradationStep::EnablePresolve,
            ],
        };
        assert_eq!(
            stats.to_string(),
            "global->compositional, degree:3->2, presolve:on"
        );
    }
}
