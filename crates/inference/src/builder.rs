//! The LP constraint builder.
//!
//! Collects the linear constraints emitted by the derivation rules (§3.4),
//! the objective that rewards tight bounds, and mild regularization bounds on
//! template coefficients that keep the LP bounded.  Rows are emitted sparsely
//! into a shared [`ConstraintStore`], which the engine either snapshots into
//! one [`cma_lp::LpProblem`] per group (batch solving) or flushes
//! incrementally into an open [`cma_lp::LpSession`] (the soundness phase
//! extends the main system this way instead of re-deriving it).

use cma_lp::{Cmp, LpBackend, LpSolution, LpVarId, SimplexBackend};
use cma_semiring::poly::{Monomial, Var};

use crate::plan::DerivationPlan;
use crate::store::ConstraintStore;
use crate::template::{LinCoef, SymInterval, SymMoment, TemplatePoly};

/// Builder that accumulates LP variables, constraints, and the objective.
///
/// The builder also carries the run's [`DerivationPlan`]: the walk records
/// template slots and constraint recipes into it (or replays against it,
/// depending on the plan's mode) through
/// [`planned_moment`](Self::planned_moment) and the gate consulted by
/// [`require_contains`](crate::weaken::require_contains).
#[derive(Debug, Default)]
pub struct ConstraintBuilder {
    store: ConstraintStore,
    fresh_counter: usize,
    plan: DerivationPlan,
}

impl ConstraintBuilder {
    /// Creates an empty builder (with an empty recording plan).
    pub fn new() -> Self {
        ConstraintBuilder {
            plan: DerivationPlan::new(),
            ..ConstraintBuilder::default()
        }
    }

    /// Number of LP variables created so far.
    pub fn num_vars(&self) -> usize {
        self.store.num_vars()
    }

    /// Number of LP constraints emitted so far.
    pub fn num_constraints(&self) -> usize {
        self.store.num_constraints()
    }

    /// The underlying constraint store.
    pub fn store(&self) -> &ConstraintStore {
        &self.store
    }

    /// Mutable access to the underlying constraint store (the engine opens
    /// sessions and flushes increments through it).
    pub fn store_mut(&mut self) -> &mut ConstraintStore {
        &mut self.store
    }

    /// The derivation plan this builder records into / replays against.
    pub fn plan(&self) -> &DerivationPlan {
        &self.plan
    }

    /// Mutable access to the plan (the engine switches modes around walks).
    pub fn plan_mut(&mut self) -> &mut DerivationPlan {
        &mut self.plan
    }

    /// Moves the plan out (for transplanting into a fresh builder on a
    /// poly-degree re-instantiation), leaving an empty recording plan.
    pub fn take_plan(&mut self) -> DerivationPlan {
        std::mem::take(&mut self.plan)
    }

    /// Installs a plan (typically one taken from a previous builder).
    pub fn install_plan(&mut self, plan: DerivationPlan) {
        self.plan = plan;
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh_counter += 1;
        format!("{prefix}#{}", self.fresh_counter)
    }

    /// A fresh free (sign-unrestricted) LP unknown for a template coefficient.
    pub fn fresh_coefficient(&mut self, prefix: &str) -> LpVarId {
        let name = self.fresh_name(prefix);
        self.store.add_var(name, true)
    }

    /// A fresh non-negative LP unknown (used for certificate multipliers).
    pub fn fresh_multiplier(&mut self, prefix: &str) -> LpVarId {
        let name = self.fresh_name(prefix);
        self.store.add_var(name, false)
    }

    /// A fresh template polynomial over `vars` with total degree ≤ `degree`.
    pub fn fresh_poly(&mut self, prefix: &str, vars: &[Var], degree: u32) -> TemplatePoly {
        let monomials = Monomial::all_up_to_degree(vars, degree);
        TemplatePoly::from_terms(
            monomials
                .into_iter()
                .map(|m| (m, LinCoef::var(self.fresh_coefficient(prefix)))),
        )
    }

    /// A fresh symbolic interval whose ends are template polynomials.
    pub fn fresh_interval(&mut self, prefix: &str, vars: &[Var], degree: u32) -> SymInterval {
        SymInterval {
            lo: self.fresh_poly(&format!("{prefix}.lo"), vars, degree),
            hi: self.fresh_poly(&format!("{prefix}.hi"), vars, degree),
        }
    }

    /// A fresh `h`-restricted moment annotation of degree `m`: components
    /// `k < restriction` are the zero interval; component `k ≥ restriction`
    /// is a template of polynomial degree `k · poly_degree`.
    pub fn fresh_moment(
        &mut self,
        prefix: &str,
        vars: &[Var],
        m: usize,
        poly_degree: u32,
        restriction: usize,
    ) -> SymMoment {
        let components = (0..=m)
            .map(|k| {
                if k < restriction {
                    SymInterval::zero()
                } else {
                    self.fresh_interval(
                        &format!("{prefix}.m{k}"),
                        vars,
                        component_degree(k, poly_degree),
                    )
                }
            })
            .collect();
        SymMoment::from_components(components)
    }

    /// A plan-aware [`fresh_moment`](Self::fresh_moment): the template slot
    /// `key` is resolved against the builder's [`DerivationPlan`], so
    /// components an earlier instantiation already minted are *reused* (their
    /// LP columns come back verbatim) and only genuinely new components
    /// allocate fresh coefficients.  In recording mode this behaves exactly
    /// like `fresh_moment` plus bookkeeping.
    pub fn planned_moment(
        &mut self,
        key: &str,
        prefix: &str,
        vars: &[Var],
        m: usize,
        poly_degree: u32,
        restriction: usize,
    ) -> SymMoment {
        let mut plan = self.take_plan();
        let (mut served, record) = plan.slot_components(key, restriction, m);
        let components = (0..=m)
            .map(|k| {
                if let Some(interval) = served[k].take() {
                    return interval;
                }
                let interval = if k < restriction {
                    SymInterval::zero()
                } else {
                    self.fresh_interval(
                        &format!("{prefix}.m{k}"),
                        vars,
                        component_degree(k, poly_degree),
                    )
                };
                if record {
                    plan.record_component(key, k, &interval);
                }
                interval
            })
            .collect();
        self.install_plan(plan);
        SymMoment::from_components(components)
    }

    /// Gate for the constraint recipe `key` about to instantiate components
    /// `0..=m`: the first component whose rows must actually be emitted (see
    /// [`DerivationPlan::recipe_gate`]).
    pub fn recipe_gate(&mut self, key: &str, m: usize) -> usize {
        self.plan.recipe_gate(key, m)
    }

    /// Emits the constraint `coef = 0`.
    pub fn constrain_zero_coef(&mut self, coef: &LinCoef) {
        let terms: Vec<(LpVarId, f64)> = coef.terms().collect();
        if terms.is_empty() {
            // A non-zero constant with no unknowns can never be satisfied; emit
            // an explicitly infeasible constraint so the solver reports it.
            if coef.constant_part().abs() > 1e-9 {
                let dummy = self.fresh_multiplier("infeasible");
                self.store.add_constraint(vec![(dummy, 0.0)], Cmp::Eq, 1.0);
            }
            return;
        }
        self.store
            .add_constraint(terms, Cmp::Eq, -coef.constant_part());
    }

    /// Emits the constraint `coef ≥ 0`.
    pub fn constrain_nonneg_coef(&mut self, coef: &LinCoef) {
        let terms: Vec<(LpVarId, f64)> = coef.terms().collect();
        if terms.is_empty() {
            if coef.constant_part() < -1e-9 {
                let dummy = self.fresh_multiplier("infeasible");
                self.store.add_constraint(vec![(dummy, 0.0)], Cmp::Eq, 1.0);
            }
            return;
        }
        self.store
            .add_constraint(terms, Cmp::Ge, -coef.constant_part());
    }

    /// Emits `poly = 0` coefficient-wise (one equality per monomial).
    pub fn constrain_zero_poly(&mut self, poly: &TemplatePoly) {
        let monomials: Vec<Monomial> = poly.monomials().cloned().collect();
        for m in monomials {
            self.constrain_zero_coef(&poly.coefficient(&m));
        }
    }

    /// Adds `weight · value(coef)` to the minimization objective.
    pub fn add_objective(&mut self, coef: &LinCoef, weight: f64) {
        for (v, c) in coef.terms() {
            self.store.add_objective_term(v, c * weight);
        }
    }

    /// Solves the accumulated problem with the default simplex backend.
    pub fn solve(&mut self) -> LpSolution {
        self.solve_with(&SimplexBackend)
    }

    /// Solves the accumulated problem with the given [`LpBackend`]
    /// (duplicate objective entries aggregate).
    pub fn solve_with(&mut self, backend: &dyn LpBackend) -> LpSolution {
        backend.solve(&self.store.to_problem())
    }
}

/// Template degree of the `k`-th moment component under base degree `d`.
fn component_degree(k: usize, poly_degree: u32) -> u32 {
    (k as u32 * poly_degree).max(if k == 0 { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_semiring::poly::Polynomial;

    #[test]
    fn fresh_poly_has_all_monomials() {
        let mut b = ConstraintBuilder::new();
        let vars = [Var::new("x"), Var::new("y")];
        let p = b.fresh_poly("t", &vars, 2);
        assert_eq!(p.monomials().count(), 6);
        assert_eq!(b.num_vars(), 6);
    }

    #[test]
    fn fresh_moment_respects_restriction() {
        let mut b = ConstraintBuilder::new();
        let vars = [Var::new("x")];
        let q = b.fresh_moment("spec", &vars, 2, 1, 1);
        assert!(q.component(0).is_zero());
        assert!(!q.component(1).is_zero());
        assert!(!q.component(2).is_zero());
        // Degree of the k-th component is k.
        assert_eq!(q.component(2).hi.monomials().count(), 3);
    }

    #[test]
    fn constrain_zero_poly_pins_template_to_concrete_value() {
        // fresh p(x) constrained to equal 3x + 1, objective irrelevant.
        let mut b = ConstraintBuilder::new();
        let x = Var::new("x");
        let p = b.fresh_poly("p", std::slice::from_ref(&x), 1);
        let target = TemplatePoly::from_concrete(
            &Polynomial::var(x.clone())
                .scale(3.0)
                .add(&Polynomial::constant(1.0)),
        );
        b.constrain_zero_poly(&p.sub(&target));
        let sol = b.solve();
        assert!(sol.is_optimal());
        let resolved = p.resolve(&|v| sol.value(v));
        assert!((resolved.coefficient(&Monomial::var(x.clone())) - 3.0).abs() < 1e-6);
        assert!((resolved.coefficient(&Monomial::unit()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn objective_minimizes_upper_end() {
        // p(x) >= 5 at coefficient level (constant term), minimize its value at x=0.
        let mut b = ConstraintBuilder::new();
        let x = Var::new("x");
        let p = b.fresh_poly("p", std::slice::from_ref(&x), 1);
        let five = LinCoef::constant(5.0);
        let diff = p.coefficient(&Monomial::unit()).sub(&five);
        b.constrain_nonneg_coef(&diff);
        // Also force the x coefficient to be exactly 2.
        b.constrain_zero_coef(
            &p.coefficient(&Monomial::var(x.clone()))
                .sub(&LinCoef::constant(2.0)),
        );
        let at_zero = p.eval_vars(&|_| 0.0);
        b.add_objective(&at_zero, 1.0);
        let sol = b.solve();
        assert!(sol.is_optimal());
        let resolved = p.resolve(&|v| sol.value(v));
        assert!((resolved.coefficient(&Monomial::unit()) - 5.0).abs() < 1e-6);
        assert!((resolved.coefficient(&Monomial::var(x)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn impossible_constant_constraint_is_infeasible() {
        let mut b = ConstraintBuilder::new();
        b.constrain_zero_coef(&LinCoef::constant(1.0));
        let sol = b.solve();
        assert!(!sol.is_optimal());
    }

    #[test]
    fn impossible_nonneg_constant_is_infeasible() {
        let mut b = ConstraintBuilder::new();
        b.constrain_nonneg_coef(&LinCoef::constant(-2.0));
        assert!(!b.solve().is_optimal());
        // A nonnegative constant is fine and adds nothing.
        let mut ok = ConstraintBuilder::new();
        ok.constrain_nonneg_coef(&LinCoef::constant(2.0));
        assert_eq!(ok.num_constraints(), 0);
    }
}
