//! Moment-polymorphic function specifications.
//!
//! For every function `f` and restriction level `h ∈ {0, …, m}` the analysis
//! keeps one specification `(QPre_{f,h}, QPost_{f,h})` of `h`-restricted
//! annotations, justified by analyzing the body of `f` at level `h`
//! (rule Q-Call-Poly / Q-Call-Mono and the elimination sequences of Ex. 2.6).
//! Specifications of functions from already-solved call-graph components are
//! *resolved*: their templates have been replaced by concrete polynomials.

use std::collections::BTreeMap;

use cma_semiring::poly::Polynomial;

use crate::template::{SymInterval, SymMoment, TemplatePoly};

/// A (possibly still symbolic) specification of one function at one
/// restriction level.
#[derive(Debug, Clone)]
pub struct SpecEntry {
    /// Annotation holding at the function's entry.
    pub pre: SymMoment,
    /// Annotation holding at the function's exit.
    pub post: SymMoment,
}

/// A specification whose templates have been resolved to concrete interval
/// polynomials `(lower, upper)` per moment component.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSpec {
    /// Entry bounds per component.
    pub pre: Vec<(Polynomial, Polynomial)>,
    /// Exit bounds per component.
    pub post: Vec<(Polynomial, Polynomial)>,
}

impl ResolvedSpec {
    /// Lifts the resolved bounds back into (constant-coefficient) symbolic
    /// annotations so later call sites can use them uniformly.
    pub fn to_entry(&self) -> SpecEntry {
        SpecEntry {
            pre: lift(&self.pre),
            post: lift(&self.post),
        }
    }
}

fn lift(bounds: &[(Polynomial, Polynomial)]) -> SymMoment {
    SymMoment::from_components(
        bounds
            .iter()
            .map(|(lo, hi)| SymInterval {
                lo: TemplatePoly::from_concrete(lo),
                hi: TemplatePoly::from_concrete(hi),
            })
            .collect(),
    )
}

/// The table of specifications available while deriving a group of functions.
#[derive(Debug, Default)]
pub struct SpecTable {
    entries: BTreeMap<(String, usize), SpecEntry>,
}

impl SpecTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SpecTable::default()
    }

    /// Registers the specification of `function` at restriction level `level`.
    pub fn insert(&mut self, function: &str, level: usize, entry: SpecEntry) {
        self.entries.insert((function.to_string(), level), entry);
    }

    /// Looks up the specification of `function` at `level`.
    pub fn get(&self, function: &str, level: usize) -> Option<&SpecEntry> {
        self.entries.get(&(function.to_string(), level))
    }

    /// Whether a specification is registered.
    pub fn contains(&self, function: &str, level: usize) -> bool {
        self.entries.contains_key(&(function.to_string(), level))
    }

    /// Iterates over all `(function, level)` keys.
    pub fn keys(&self) -> impl Iterator<Item = (&str, usize)> {
        self.entries.keys().map(|(f, l)| (f.as_str(), *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_semiring::poly::Var;

    fn resolved_example() -> ResolvedSpec {
        let x = Var::new("x");
        ResolvedSpec {
            pre: vec![
                (Polynomial::constant(1.0), Polynomial::constant(1.0)),
                (Polynomial::var(x.clone()), Polynomial::var(x).scale(2.0)),
            ],
            post: vec![
                (Polynomial::constant(1.0), Polynomial::constant(1.0)),
                (Polynomial::zero(), Polynomial::zero()),
            ],
        }
    }

    #[test]
    fn resolved_spec_lifts_to_constant_templates() {
        let spec = resolved_example();
        let entry = spec.to_entry();
        assert_eq!(entry.pre.degree(), 1);
        let hi = entry.pre.component(1).hi.resolve(&|_| 0.0);
        assert_eq!(hi, Polynomial::var(Var::new("x")).scale(2.0));
        assert!(entry.post.component(1).is_zero());
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut table = SpecTable::new();
        assert!(!table.contains("f", 0));
        table.insert("f", 0, resolved_example().to_entry());
        table.insert("f", 1, resolved_example().to_entry());
        assert!(table.contains("f", 0));
        assert!(table.get("f", 1).is_some());
        assert!(table.get("g", 0).is_none());
        assert_eq!(table.keys().count(), 2);
    }
}
