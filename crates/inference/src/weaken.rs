//! The weakening rule `Γ ⊨ Q ⊒ Q'` discharged by rewrite-function
//! certificates (§3.4).
//!
//! To ensure a polynomial inequality `P ≥ 0` holds wherever the logical
//! context `Γ = {e₁ ≥ 0, …, e_n ≥ 0}` holds, we require that `P` be a conical
//! combination of products of the `eᵢ` (a Handelman certificate): fresh
//! non-negative multipliers `λ` are introduced and coefficients are equated
//! per monomial, which yields linear constraints over the LP unknowns.

use cma_logic::Context;
use cma_semiring::poly::Polynomial;

use crate::builder::ConstraintBuilder;
use crate::template::{LinCoef, SymMoment, TemplatePoly};

/// Emits constraints forcing `bigger ≥ smaller` (as functions of the program
/// variables) wherever every polynomial in `products` is non-negative.
///
/// `products` must contain the constant polynomial `1` so that constant slack
/// is available; [`Context::certificate_products`] always includes it.
pub fn require_poly_geq(
    builder: &mut ConstraintBuilder,
    products: &[Polynomial],
    bigger: &TemplatePoly,
    smaller: &TemplatePoly,
    tag: &str,
) {
    // Debug facility: `CMA_RELAX=<substring>` drops every constraint whose tag
    // contains the substring, which isolates the family responsible for an
    // infeasibility.  Never set in production code paths.
    if let Some(pattern) = std::env::var_os("CMA_RELAX") {
        if !pattern.is_empty() && tag.contains(pattern.to_string_lossy().as_ref()) {
            return;
        }
    }
    // difference = bigger - smaller - Σ λ_i · products_i  must be 0 per monomial.
    let mut difference = bigger.sub(smaller);
    for (i, product) in products.iter().enumerate() {
        let lambda = builder.fresh_multiplier(&format!("λ[{tag}.{i}]"));
        let scaled = TemplatePoly::from_terms(
            product
                .terms()
                .map(|(m, c)| (m.clone(), LinCoef::var(lambda).scale(c))),
        );
        difference = difference.sub(&scaled);
    }
    if std::env::var_os("CMA_LP_DEBUG").is_some() {
        for (m, c) in difference.terms() {
            if c.is_constant() && c.constant_part().abs() > 1e-9 {
                eprintln!(
                    "[cma-inference] unsatisfiable coefficient at `{tag}`, monomial {m}: {}",
                    c.constant_part()
                );
            }
        }
    }
    builder.constrain_zero_poly(&difference);
}

/// Emits constraints for the moment-annotation containment `outer ⊒ inner`
/// under the logical context `ctx`:
/// for every component `k`, `outer.lo_k ≤ inner.lo_k` and
/// `inner.hi_k ≤ outer.hi_k` wherever `ctx` holds.
///
/// `tag` doubles as this containment's *recipe key* in the builder's
/// [`DerivationPlan`](crate::plan::DerivationPlan), so it must be unique and
/// stable across walks of the same program: when the plan replays (degree
/// escalation, the shadow soundness derivation), components whose rows are
/// already in the store are skipped instead of re-emitted.
pub fn require_contains(
    builder: &mut ConstraintBuilder,
    ctx: &Context,
    outer: &SymMoment,
    inner: &SymMoment,
    poly_degree: u32,
    tag: &str,
) {
    assert_eq!(outer.degree(), inner.degree(), "degree mismatch in ⊒");
    let emit_from = builder.recipe_gate(tag, outer.degree());
    for k in emit_from..=outer.degree() {
        let degree = (k as u32 * poly_degree).max(1);
        let products = ctx.certificate_products(degree);
        // Upper ends: outer.hi ≥ inner.hi.
        require_poly_geq(
            builder,
            &products,
            &outer.component(k).hi,
            &inner.component(k).hi,
            &format!("{tag}.hi{k}"),
        );
        // Lower ends: inner.lo ≥ outer.lo, i.e. outer.lo ≤ inner.lo.
        require_poly_geq(
            builder,
            &products,
            &inner.component(k).lo,
            &outer.component(k).lo,
            &format!("{tag}.lo{k}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;
    use cma_semiring::poly::Var;

    fn x() -> Var {
        Var::new("x")
    }

    #[test]
    fn constant_slack_certificate() {
        // Find the least constant c with c ≥ 3 using products = {1}.
        let mut b = ConstraintBuilder::new();
        let template = b.fresh_poly("c", &[], 0);
        let products = vec![Polynomial::constant(1.0)];
        require_poly_geq(
            &mut b,
            &products,
            &template,
            &TemplatePoly::constant(3.0),
            "t",
        );
        b.add_objective(&template.eval_vars(&|_| 0.0), 1.0);
        let sol = b.solve();
        assert!(sol.is_optimal());
        let c = template.resolve(&|v| sol.value(v));
        assert!((c.as_constant().unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn contextual_certificate_uses_guard() {
        // Under Γ = {x ≥ 0, 10 - x ≥ 0}, the least constant c with c ≥ 2x is 20.
        let mut b = ConstraintBuilder::new();
        let ctx = Context::from_conditions(&[ge(v("x"), cst(0.0)), le(v("x"), cst(10.0))]);
        let products = ctx.certificate_products(1);
        let template = b.fresh_poly("c", &[], 0);
        let two_x = TemplatePoly::from_concrete(&Polynomial::var(x()).scale(2.0));
        require_poly_geq(&mut b, &products, &template, &two_x, "t");
        b.add_objective(&template.eval_vars(&|_| 0.0), 1.0);
        let sol = b.solve();
        assert!(sol.is_optimal());
        let c = template.resolve(&|v| sol.value(v)).as_constant().unwrap();
        assert!((c - 20.0).abs() < 1e-5, "got {c}");
    }

    #[test]
    fn quadratic_certificate_bounds_a_square() {
        // Under Γ = {x ≥ 0, 4 - x ≥ 0}, find least constant c ≥ x².
        // Handelman degree 2 gives c = 16 via x² ≤ 4x ≤ 16.
        let mut b = ConstraintBuilder::new();
        let ctx = Context::from_conditions(&[ge(v("x"), cst(0.0)), le(v("x"), cst(4.0))]);
        let products = ctx.certificate_products(2);
        let template = b.fresh_poly("c", &[], 0);
        let square = TemplatePoly::from_concrete(&Polynomial::var(x()).pow(2));
        require_poly_geq(&mut b, &products, &template, &square, "t");
        b.add_objective(&template.eval_vars(&|_| 0.0), 1.0);
        let sol = b.solve();
        assert!(sol.is_optimal());
        let c = template.resolve(&|v| sol.value(v)).as_constant().unwrap();
        assert!((16.0 - 1e-5..=16.0 + 1e-5).contains(&c), "got {c}");
    }

    #[test]
    fn infeasible_when_no_certificate_exists() {
        // A constant cannot dominate x on an unbounded context.
        let mut b = ConstraintBuilder::new();
        let ctx = Context::from_conditions(&[ge(v("x"), cst(0.0))]);
        let products = ctx.certificate_products(1);
        let template = TemplatePoly::constant(100.0);
        let xx = TemplatePoly::from_concrete(&Polynomial::var(x()));
        require_poly_geq(&mut b, &products, &template, &xx, "t");
        assert!(!b.solve().is_optimal());
    }

    #[test]
    fn containment_of_moment_annotations() {
        // outer must contain inner = ⟨[1,1],[x, 2x+3]⟩ under Γ = {x ≥ 0, 5 - x ≥ 0};
        // minimizing outer's width at x = 5 recovers the inner bounds exactly.
        let mut b = ConstraintBuilder::new();
        let ctx = Context::from_conditions(&[ge(v("x"), cst(0.0)), le(v("x"), cst(5.0))]);
        let inner = SymMoment::from_components(vec![
            crate::template::SymInterval::point(1.0),
            crate::template::SymInterval {
                lo: TemplatePoly::from_concrete(&Polynomial::var(x())),
                hi: TemplatePoly::from_concrete(
                    &Polynomial::var(x())
                        .scale(2.0)
                        .add(&Polynomial::constant(3.0)),
                ),
            },
        ]);
        let outer = b.fresh_moment("outer", &[x()], 1, 1, 0);
        require_contains(&mut b, &ctx, &outer, &inner, 1, "contain");
        for k in 0..=1 {
            b.add_objective(&outer.component(k).hi.eval_vars(&|_| 5.0), 1.0);
            b.add_objective(&outer.component(k).lo.eval_vars(&|_| 5.0), -1.0);
        }
        let sol = b.solve();
        assert!(sol.is_optimal());
        let resolved = outer.resolve(&|v| sol.value(v));
        // Component 1 upper bound at x = 5 must be at least 13, lower at most 5.
        let hi_at_5 = resolved[1].1.eval(&|_| 5.0);
        let lo_at_5 = resolved[1].0.eval(&|_| 5.0);
        assert!(hi_at_5 >= 13.0 - 1e-5);
        assert!(lo_at_5 <= 5.0 + 1e-5);
        // Objective pushed them to be tight.
        assert!(hi_at_5 <= 13.0 + 1e-4);
        assert!(lo_at_5 >= 5.0 - 1e-4);
    }
}
