//! Derivation plans: the degree-independent skeleton of one constraint
//! derivation, recorded once and re-instantiated per `(m, d)`.
//!
//! The paper derives bounds on *all* moments up to degree `m` simultaneously:
//! the degree-`k` component of every annotation rides on the components below
//! it, and the constraint system is emitted per component (the weakening rule
//! compares component `k` of two annotations, never mixes components).  That
//! makes the derivation *sliceable by component*: the rows of component `k`
//! are identical at every target degree `m ≥ k`, provided the same template
//! columns back the components below.
//!
//! A [`DerivationPlan`] exploits this.  One walk of the program records the
//! degree-independent skeleton:
//!
//! * **template slots** — every program point that allocates a fresh moment
//!   annotation (function pre/post specifications, conditional joins, loop
//!   invariants), keyed by a stable path through the walk, together with the
//!   LP columns minted per component;
//! * **constraint recipes** — every containment `Γ ⊨ Q ⊒ Q'` the walk
//!   discharges, keyed the same way, together with how many components have
//!   been instantiated into the store so far;
//! * **loop-head contexts** — the fixpoint invariant contexts of `while`
//!   loops, which depend only on the program, cached so re-instantiations
//!   never recompute them.
//!
//! Re-walking the program against the recorded plan then *reuses* instead of
//! re-deriving, under one of four modes:
//!
//! * [`PlanMode::Record`] — the first instantiation: mint every column, emit
//!   every row, record the skeleton (the default; plan-unaware callers see
//!   exactly the old behavior).
//! * [`PlanMode::Extend`] — in-session degree escalation `m → m'`: recorded
//!   slots contribute their existing component columns and only components
//!   `m+1..=m'` are minted; recorded recipes emit rows only for the new
//!   components (the old rows are already in the live solver session and are
//!   *exactly* the component-`≤m` slice of the degree-`m'` system).
//! * [`PlanMode::Refresh`] — re-instantiation at a new base polynomial
//!   degree `d`: template supports change, so every column is minted fresh
//!   and every row emitted into a fresh store, but the skeleton (slot keys,
//!   loop-head contexts) is reused.
//! * [`PlanMode::Shadow`] — the soundness transformer: a *different* program
//!   with the *same* control skeleton (the Thm 4.4 step-counting
//!   instrumentation) derives against the plan, sharing the component-0
//!   columns of recorded slots (component 0 is the probability-mass
//!   component, untouched by `tick`, so its constraint system is identical
//!   in both derivations) and skipping the component-0 rows entirely.
//!   Nothing is recorded back, so the main plan stays replayable.
//! * [`PlanMode::Detached`] — a derivation that shares the builder but must
//!   not touch the plan at all (the disjoint-by-construction soundness
//!   extension used when the open session cannot warm re-solve in place).
//!
//! The plan lives inside the
//! [`ConstraintBuilder`](crate::builder::ConstraintBuilder); the engine
//! switches modes around the walks it replays (see
//! [`AnalysisSession::escalate_degree`](crate::engine::AnalysisSession::escalate_degree)
//! and the automatic poly-degree retry in
//! [`analyze_session`](crate::engine::analyze_session)).

use std::collections::BTreeMap;

use cma_logic::Context;

use crate::template::SymInterval;

/// How a walk instantiates against the recorded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// First walk: mint every column, emit every row, record the skeleton.
    #[default]
    Record,
    /// Degree escalation: reuse recorded component columns, mint and emit
    /// only components above what each slot/recipe already instantiated.
    Extend,
    /// Poly-degree re-instantiation: reuse the skeleton (keys, loop-head
    /// contexts) but mint all columns fresh and emit all rows.
    Refresh,
    /// Instrumented shadow derivation: share component-0 columns of recorded
    /// slots, skip component-0 rows of recorded recipes, record nothing.
    Shadow,
    /// Plan-oblivious derivation: mint and emit everything, record nothing
    /// (loop-head contexts may still be read).
    Detached,
}

/// One recorded template allocation point: the interval templates minted per
/// moment component so far.
#[derive(Debug, Clone)]
pub struct TemplateSlot {
    /// Restriction level `h` of the slot (components `< h` are zero).
    pub restriction: usize,
    /// Component templates instantiated so far (index = component `k`).
    pub components: Vec<SymInterval>,
}

/// Reuse counters of one plan across its instantiations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Template slots recorded by first instantiations.
    pub slots_created: usize,
    /// Template slots found in the plan and replayed.
    pub slots_reused: usize,
    /// LP template columns minted across all instantiations.
    pub columns_created: usize,
    /// LP template columns contributed by the plan instead of being minted
    /// (degree escalation) or shared across derivations (shadow mode).
    pub columns_reused: usize,
    /// Constraint recipes recorded by first instantiations.
    pub recipes_recorded: usize,
    /// Constraint recipes replayed against the plan.
    pub recipes_replayed: usize,
    /// Component instances whose rows were *skipped* because an earlier
    /// instantiation already emitted them into the store.
    pub components_skipped: usize,
    /// Loop-head invariant contexts served from the plan cache.
    pub loop_heads_reused: usize,
}

impl PlanStats {
    /// Component-wise sum (for totaling the plans of several groups).
    pub fn merge(&self, other: &PlanStats) -> PlanStats {
        PlanStats {
            slots_created: self.slots_created + other.slots_created,
            slots_reused: self.slots_reused + other.slots_reused,
            columns_created: self.columns_created + other.columns_created,
            columns_reused: self.columns_reused + other.columns_reused,
            recipes_recorded: self.recipes_recorded + other.recipes_recorded,
            recipes_replayed: self.recipes_replayed + other.recipes_replayed,
            components_skipped: self.components_skipped + other.components_skipped,
            loop_heads_reused: self.loop_heads_reused + other.loop_heads_reused,
        }
    }

    /// Component-wise difference (`self` minus an earlier snapshot), for
    /// reporting what one instantiation contributed.
    pub fn since(&self, earlier: &PlanStats) -> PlanStats {
        PlanStats {
            slots_created: self.slots_created - earlier.slots_created,
            slots_reused: self.slots_reused - earlier.slots_reused,
            columns_created: self.columns_created - earlier.columns_created,
            columns_reused: self.columns_reused - earlier.columns_reused,
            recipes_recorded: self.recipes_recorded - earlier.recipes_recorded,
            recipes_replayed: self.recipes_replayed - earlier.recipes_replayed,
            components_skipped: self.components_skipped - earlier.components_skipped,
            loop_heads_reused: self.loop_heads_reused - earlier.loop_heads_reused,
        }
    }
}

/// The recorded skeleton of one derivation plus its instantiation state.
#[derive(Debug, Clone)]
pub struct DerivationPlan {
    mode: PlanMode,
    /// Components of recorded slots shared with a [`PlanMode::Shadow`] walk
    /// (component 0, the probability-mass component).
    shared_components: usize,
    slots: BTreeMap<String, TemplateSlot>,
    /// Recipe key → number of components already instantiated into the store.
    recipes: BTreeMap<String, usize>,
    loop_heads: BTreeMap<String, Context>,
    stats: PlanStats,
}

/// Number of LP columns an interval template owns (one per monomial per end).
fn interval_columns(interval: &SymInterval) -> usize {
    interval.lo.terms().count() + interval.hi.terms().count()
}

impl Default for DerivationPlan {
    fn default() -> Self {
        DerivationPlan::new()
    }
}

impl DerivationPlan {
    /// An empty plan in [`PlanMode::Record`].
    pub fn new() -> Self {
        DerivationPlan {
            mode: PlanMode::Record,
            // Component 0 is the probability-mass component shadow walks
            // share (deliberately part of every construction path so a
            // `Default`-built plan behaves identically).
            shared_components: 1,
            slots: BTreeMap::new(),
            recipes: BTreeMap::new(),
            loop_heads: BTreeMap::new(),
            stats: PlanStats::default(),
        }
    }

    /// The current instantiation mode.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// Switches the instantiation mode for the next walk.
    pub fn set_mode(&mut self, mode: PlanMode) {
        self.mode = mode;
    }

    /// Reuse counters accumulated so far.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Number of template slots recorded.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Resolves the moment annotation of the slot `key` for a walk at target
    /// degree `m`: components served by the plan come back as `Some(_)` (to
    /// be cloned by the caller), components the caller must mint come back as
    /// `None`.  `record` says whether the caller should report the minted
    /// components back via [`record_component`](Self::record_component).
    ///
    /// The exact split depends on the [mode](Self::mode): `Record`/`Detached`
    /// mint everything, `Extend` serves every recorded component, `Refresh`
    /// re-mints everything (dropping the recorded columns), `Shadow` serves
    /// only the shared components.
    pub fn slot_components(
        &mut self,
        key: &str,
        restriction: usize,
        m: usize,
    ) -> (Vec<Option<SymInterval>>, bool) {
        let mode = self.mode;
        match mode {
            PlanMode::Record => {
                self.stats.slots_created += 1;
                self.slots.insert(
                    key.to_string(),
                    TemplateSlot {
                        restriction,
                        components: Vec::new(),
                    },
                );
                (vec![None; m + 1], true)
            }
            PlanMode::Detached => (vec![None; m + 1], false),
            PlanMode::Refresh => {
                let replaced = self.slots.remove(key).is_some();
                if replaced {
                    self.stats.slots_reused += 1;
                } else {
                    self.stats.slots_created += 1;
                }
                self.slots.insert(
                    key.to_string(),
                    TemplateSlot {
                        restriction,
                        components: Vec::new(),
                    },
                );
                (vec![None; m + 1], true)
            }
            PlanMode::Extend => match self.slots.get(key) {
                Some(slot) => {
                    debug_assert_eq!(
                        slot.restriction, restriction,
                        "slot `{key}` replayed at a different restriction level"
                    );
                    self.stats.slots_reused += 1;
                    let mut components = Vec::with_capacity(m + 1);
                    for k in 0..=m {
                        match slot.components.get(k) {
                            Some(interval) => {
                                self.stats.columns_reused += interval_columns(interval);
                                components.push(Some(interval.clone()));
                            }
                            None => components.push(None),
                        }
                    }
                    (components, true)
                }
                None => {
                    self.stats.slots_created += 1;
                    self.slots.insert(
                        key.to_string(),
                        TemplateSlot {
                            restriction,
                            components: Vec::new(),
                        },
                    );
                    (vec![None; m + 1], true)
                }
            },
            PlanMode::Shadow => match self.slots.get(key) {
                Some(slot) => {
                    let shared = self.shared_components;
                    let mut components = Vec::with_capacity(m + 1);
                    for k in 0..=m {
                        match slot.components.get(k) {
                            Some(interval) if k < shared => {
                                self.stats.columns_reused += interval_columns(interval);
                                components.push(Some(interval.clone()));
                            }
                            _ => components.push(None),
                        }
                    }
                    (components, false)
                }
                None => (vec![None; m + 1], false),
            },
        }
    }

    /// Records a component the caller just minted for the slot `key`
    /// (only meaningful after [`slot_components`](Self::slot_components)
    /// returned `record = true`; components must be reported in order).
    pub fn record_component(&mut self, key: &str, k: usize, interval: &SymInterval) {
        self.stats.columns_created += interval_columns(interval);
        if let Some(slot) = self.slots.get_mut(key) {
            debug_assert_eq!(
                slot.components.len(),
                k,
                "slot `{key}` recorded out of order"
            );
            slot.components.push(interval.clone());
        }
    }

    /// Gate for the constraint recipe `key` about to instantiate components
    /// `0..=m`: returns the first component whose rows must actually be
    /// emitted (components below it are already in the store, or shared).
    pub fn recipe_gate(&mut self, key: &str, m: usize) -> usize {
        match self.mode {
            PlanMode::Record => {
                self.stats.recipes_recorded += 1;
                self.recipes.insert(key.to_string(), m + 1);
                0
            }
            PlanMode::Detached => 0,
            PlanMode::Refresh => {
                if self.recipes.insert(key.to_string(), m + 1).is_some() {
                    self.stats.recipes_replayed += 1;
                } else {
                    self.stats.recipes_recorded += 1;
                }
                0
            }
            PlanMode::Extend => match self.recipes.insert(key.to_string(), m + 1) {
                Some(prev) => {
                    self.stats.recipes_replayed += 1;
                    self.stats.components_skipped += prev.min(m + 1);
                    prev
                }
                None => {
                    self.stats.recipes_recorded += 1;
                    0
                }
            },
            PlanMode::Shadow => {
                if self.recipes.contains_key(key) {
                    self.stats.recipes_replayed += 1;
                    let shared = self.shared_components.min(m + 1);
                    self.stats.components_skipped += shared;
                    shared
                } else {
                    0
                }
            }
        }
    }

    /// The cached loop-head invariant context for the loop at `key`, or
    /// `compute()`.
    ///
    /// Loop-head invariants depend only on the program and the incoming
    /// context — both identical across re-instantiations of one plan — so
    /// the fixpoint is computed once per loop, not once per `(m, d)`.
    /// Shadow walks may read the cache too (their caller attests the
    /// extension program preserves the recorded control skeleton), but a
    /// *detached* walk derives an arbitrary program whose sites merely
    /// happen to share key shapes: it must never be served another
    /// program's invariant, so it always computes (and records nothing).
    pub fn loop_head(&mut self, key: &str, compute: impl FnOnce() -> Context) -> Context {
        if self.mode != PlanMode::Detached {
            if let Some(ctx) = self.loop_heads.get(key) {
                self.stats.loop_heads_reused += 1;
                return ctx.clone();
            }
        }
        let ctx = compute();
        if !matches!(self.mode, PlanMode::Shadow | PlanMode::Detached) {
            self.loop_heads.insert(key.to_string(), ctx.clone());
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplatePoly;

    fn unit_interval() -> SymInterval {
        SymInterval {
            lo: TemplatePoly::constant(1.0),
            hi: TemplatePoly::constant(1.0),
        }
    }

    #[test]
    fn record_then_extend_serves_old_components() {
        let mut plan = DerivationPlan::new();
        let (components, record) = plan.slot_components("s", 0, 2);
        assert!(record);
        assert!(components.iter().all(Option::is_none));
        for k in 0..=2 {
            plan.record_component("s", k, &unit_interval());
        }
        assert_eq!(plan.recipe_gate("r", 2), 0);

        plan.set_mode(PlanMode::Extend);
        let (components, record) = plan.slot_components("s", 0, 4);
        assert!(record);
        assert!(components[0].is_some() && components[2].is_some());
        assert!(components[3].is_none() && components[4].is_none());
        plan.record_component("s", 3, &unit_interval());
        plan.record_component("s", 4, &unit_interval());
        // The recipe resumes at the first new component.
        assert_eq!(plan.recipe_gate("r", 4), 3);
        // Unknown keys (new restriction levels) instantiate in full.
        assert_eq!(plan.recipe_gate("r-new", 4), 0);
        let (fresh, _) = plan.slot_components("s-new", 3, 4);
        assert!(fresh.iter().all(Option::is_none));
        assert!(plan.stats().slots_reused >= 1);
        assert!(plan.stats().columns_reused > 0);
        assert_eq!(plan.stats().components_skipped, 3);
    }

    #[test]
    fn shadow_shares_component_zero_and_records_nothing() {
        let mut plan = DerivationPlan::new();
        plan.slot_components("s", 0, 2);
        for k in 0..=2 {
            plan.record_component("s", k, &unit_interval());
        }
        plan.recipe_gate("r", 2);
        let slots_before = plan.num_slots();

        plan.set_mode(PlanMode::Shadow);
        let (components, record) = plan.slot_components("s", 0, 2);
        assert!(!record);
        assert!(components[0].is_some(), "component 0 is shared");
        assert!(components[1].is_none() && components[2].is_none());
        assert_eq!(plan.recipe_gate("r", 2), 1, "component 0 rows are skipped");
        // Unknown keys fall back to a fully fresh derivation.
        let (fresh, record) = plan.slot_components("other", 0, 2);
        assert!(!record && fresh.iter().all(Option::is_none));
        assert_eq!(plan.recipe_gate("other-r", 2), 0);
        assert_eq!(plan.num_slots(), slots_before, "shadow records nothing");
    }

    #[test]
    fn refresh_reuses_the_skeleton_but_mints_fresh_columns() {
        let mut plan = DerivationPlan::new();
        plan.slot_components("s", 1, 2);
        for k in 0..=2 {
            plan.record_component("s", k, &unit_interval());
        }
        plan.recipe_gate("r", 2);

        plan.set_mode(PlanMode::Refresh);
        let (components, record) = plan.slot_components("s", 1, 2);
        assert!(record);
        assert!(components.iter().all(Option::is_none), "columns re-minted");
        assert_eq!(plan.recipe_gate("r", 2), 0, "rows re-emitted");
        assert_eq!(plan.stats().slots_reused, 1);
        assert_eq!(plan.stats().recipes_replayed, 1);
    }

    #[test]
    fn loop_head_cache_serves_repeat_lookups() {
        let mut plan = DerivationPlan::new();
        let mut computed = 0;
        let ctx = plan.loop_head("w", || {
            computed += 1;
            Context::top()
        });
        assert_eq!(ctx, Context::top());
        plan.set_mode(PlanMode::Refresh);
        let again = plan.loop_head("w", || {
            computed += 1;
            Context::top()
        });
        assert_eq!(again, Context::top());
        assert_eq!(computed, 1);
        assert_eq!(plan.stats().loop_heads_reused, 1);
    }

    #[test]
    fn detached_walks_never_read_the_loop_head_cache() {
        // A detached walk derives an *arbitrary* program whose site keys may
        // collide with the recorded ones; serving it the analyzed program's
        // invariant would emit constraints under a wrong logical context.
        let mut plan = DerivationPlan::new();
        plan.loop_head("w", Context::top);
        plan.set_mode(PlanMode::Detached);
        let mut computed = 0;
        plan.loop_head("w", || {
            computed += 1;
            Context::top()
        });
        assert_eq!(computed, 1, "detached lookups must recompute");
        assert_eq!(plan.stats().loop_heads_reused, 0);
    }
}
