//! Tail bounds from moment bounds (§5 of the paper).
//!
//! Given (interval) bounds on raw and central moments of a nonnegative cost
//! `X`, concentration-of-measure inequalities yield upper bounds on tail
//! probabilities `P[X ≥ d]`:
//!
//! * **Markov** (Prop. 5.1) from upper bounds on raw moments,
//! * **Cantelli** (Prop. 5.2) from an upper bound on the variance and bounds
//!   on the mean,
//! * **Chebyshev** (Prop. 5.3) from upper bounds on even central moments.
//!
//! These are the three families plotted in Fig. 1(c) and Fig. 9.

use cma_semiring::Interval;

use crate::central::CentralMoments;

/// A single tail-bound evaluation `P[X ≥ threshold] ≤ probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBound {
    /// The threshold `d`.
    pub threshold: f64,
    /// The derived upper bound on `P[X ≥ d]`, clamped to `[0, 1]`.
    pub probability: f64,
}

fn clamp(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// Markov's inequality using the `k`-th raw moment:
/// `P[X ≥ d] ≤ E[X^k] / d^k` for a nonnegative `X`.
pub fn markov_tail(raw_moment_upper: f64, k: u32, threshold: f64) -> f64 {
    if threshold <= 0.0 {
        return 1.0;
    }
    clamp(raw_moment_upper / threshold.powi(k as i32))
}

/// Cantelli's (one-sided Chebyshev) inequality:
/// `P[X − E[X] ≥ a] ≤ V[X] / (V[X] + a²)`.
///
/// To bound `P[X ≥ d]` soundly we use the *upper* bound on the mean:
/// `P[X ≥ d] ≤ P[X − E[X] ≥ d − ub(E[X])]` whenever `d > ub(E[X])`;
/// otherwise the trivial bound 1 is returned.
pub fn cantelli_upper_tail(variance_upper: f64, mean: Interval, threshold: f64) -> f64 {
    let a = threshold - mean.hi();
    if a <= 0.0 {
        return 1.0;
    }
    clamp(variance_upper / (variance_upper + a * a))
}

/// Chebyshev's inequality with the `2k`-th central moment:
/// `P[|X − E[X]| ≥ a] ≤ E[(X−E[X])^{2k}] / a^{2k}`.
///
/// As for Cantelli, the one-sided bound on `P[X ≥ d]` uses `a = d − ub(E[X])`.
pub fn chebyshev_tail(central_even_upper: f64, two_k: u32, mean: Interval, threshold: f64) -> f64 {
    let a = threshold - mean.hi();
    if a <= 0.0 {
        return 1.0;
    }
    clamp(central_even_upper / a.powi(two_k as i32))
}

/// The best (smallest) available tail bound at a threshold, combining Markov
/// bounds from every raw moment with Cantelli and Chebyshev bounds from the
/// central moments — this is the quantity plotted per-curve in Fig. 9.
pub fn best_tail_bound(moments: &CentralMoments, threshold: f64) -> TailBound {
    let mut best = 1.0f64;
    let degree = moments.degree();
    for k in 1..=degree {
        best = best.min(markov_tail(moments.raw(k).hi(), k as u32, threshold));
    }
    if degree >= 2 {
        best = best.min(cantelli_upper_tail(
            moments.variance_upper(),
            moments.mean(),
            threshold,
        ));
    }
    let mut two_k = 4;
    while two_k <= degree {
        if let Some(c) = moments.even_central_upper(two_k) {
            best = best.min(chebyshev_tail(c, two_k as u32, moments.mean(), threshold));
        }
        two_k += 2;
    }
    TailBound {
        threshold,
        probability: best,
    }
}

/// Evaluates a tail-bound family over a range of thresholds, producing the
/// series plotted in Fig. 1(c)/Fig. 9.
pub fn tail_curve(
    moments: &CentralMoments,
    thresholds: impl IntoIterator<Item = f64>,
) -> Vec<TailBound> {
    thresholds
        .into_iter()
        .map(|d| best_tail_bound(moments, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_matches_paper_running_example() {
        // Fig. 1(b): E[tick] ≤ 2d+4 gives P[tick ≥ 4d] ≤ (2d+4)/(4d) → 1/2.
        let d = 1000.0;
        let p = markov_tail(2.0 * d + 4.0, 1, 4.0 * d);
        assert!((p - 0.5).abs() < 1e-2);
        // Second raw moment ≤ 4d²+22d+28 gives ≈ 1/4.
        let p2 = markov_tail(4.0 * d * d + 22.0 * d + 28.0, 2, 4.0 * d);
        assert!((p2 - 0.25).abs() < 1e-2);
    }

    #[test]
    fn cantelli_matches_paper_running_example() {
        // Eq. (10): with V[tick] ≤ 22d+28 and E[tick] ≤ 2d+4,
        // P[tick ≥ 4d] ≤ (22d+28)/((22d+28) + (2d−4)²) → 0 as d → ∞.
        let d = 50.0;
        let p = cantelli_upper_tail(
            22.0 * d + 28.0,
            cma_semiring::Interval::new(2.0 * d, 2.0 * d + 4.0),
            4.0 * d,
        );
        let expected = (22.0 * d + 28.0) / (22.0 * d + 28.0 + (2.0 * d - 4.0).powi(2));
        assert!((p - expected).abs() < 1e-9);
        let d_large = 1.0e6;
        assert!(
            cantelli_upper_tail(
                22.0 * d_large + 28.0,
                cma_semiring::Interval::new(2.0 * d_large, 2.0 * d_large + 4.0),
                4.0 * d_large
            ) < 1e-4
        );
    }

    #[test]
    fn chebyshev_uses_even_central_moments() {
        let mean = cma_semiring::Interval::new(10.0, 12.0);
        // 4th central moment ≤ 100, threshold 22: a = 10, bound = 100/10⁴ = 0.01.
        let p = chebyshev_tail(100.0, 4, mean, 22.0);
        assert!((p - 0.01).abs() < 1e-12);
        // Below the mean upper bound the bound degenerates to 1.
        assert_eq!(chebyshev_tail(100.0, 4, mean, 11.0), 1.0);
    }

    #[test]
    fn bounds_are_clamped_to_probabilities() {
        assert_eq!(markov_tail(50.0, 1, 10.0), 1.0);
        assert_eq!(markov_tail(50.0, 1, 0.0), 1.0);
        assert_eq!(markov_tail(0.0, 2, 10.0), 0.0);
        assert_eq!(
            cantelli_upper_tail(4.0, cma_semiring::Interval::point(5.0), 4.0),
            1.0
        );
    }

    #[test]
    fn best_tail_bound_picks_the_tightest_family() {
        // Geometric(1/2)-like moments: E=2, E[X²]=6, V=2.
        let moments = CentralMoments::from_raw_intervals(&[
            cma_semiring::Interval::point(1.0),
            cma_semiring::Interval::point(2.0),
            cma_semiring::Interval::point(6.0),
        ]);
        let far = best_tail_bound(&moments, 20.0);
        // Cantelli: 2/(2+18²) ≈ 0.0061; Markov deg 2: 6/400 = 0.015.
        assert!(far.probability < 0.01);
        let near = best_tail_bound(&moments, 3.0);
        assert!(near.probability <= 1.0);
        assert_eq!(far.threshold, 20.0);
    }

    #[test]
    fn tail_curve_is_monotone_nonincreasing() {
        let moments = CentralMoments::from_raw_intervals(&[
            cma_semiring::Interval::point(1.0),
            cma_semiring::Interval::point(4.0),
            cma_semiring::Interval::point(20.0),
            cma_semiring::Interval::point(120.0),
            cma_semiring::Interval::point(850.0),
        ]);
        let curve = tail_curve(&moments, (1..=20).map(|i| i as f64 * 2.0));
        assert_eq!(curve.len(), 20);
        for pair in curve.windows(2) {
            assert!(pair[1].probability <= pair[0].probability + 1e-12);
        }
        // With the 4th central moment available, far tails decay fast.
        assert!(curve.last().unwrap().probability < 0.05);
    }
}
