//! The backward annotation transformer implementing the syntax-directed
//! derivation rules of Fig. 6 / Fig. 14.
//!
//! Given a statement, the logical context holding *before* it, and the
//! annotation bounding the moments of the cost of the computation *after* it,
//! [`transform`] produces an annotation bounding the moments of the whole
//! computation, emitting LP constraints along the way (fresh templates at
//! joins and loop heads, weakening certificates, call-site requirements).

use cma_appl::ast::{Stmt, StmtKind};
use cma_appl::{BranchFact, Program, RangeFacts};
use cma_logic::Context;
use cma_semiring::poly::Var;

use crate::builder::ConstraintBuilder;
use crate::spec::SpecTable;
use crate::template::SymMoment;
use crate::weaken::require_contains;

/// Errors raised during constraint generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeriveError {
    /// No specification is available for a called function at some level.
    MissingSpec(String, usize),
}

impl std::fmt::Display for DeriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeriveError::MissingSpec(name, level) => {
                write!(f, "no specification for function `{name}` at level {level}")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// Static information threaded through a derivation.
pub struct DeriveCtx<'a> {
    /// The program being analyzed.
    pub program: &'a Program,
    /// Specifications available for function calls.
    pub specs: &'a SpecTable,
    /// Target moment degree `m`.
    pub degree: usize,
    /// Base polynomial degree `d` (the `k`-th component uses degree `k·d`).
    pub poly_degree: u32,
    /// Variables over which fresh templates range.
    pub template_vars: Vec<Var>,
    /// Restriction level `h` of the current derivation.
    pub level: usize,
    /// Stable key prefix of this derivation unit (one function body at one
    /// restriction level, or `main`) in the builder's
    /// [`DerivationPlan`](crate::plan::DerivationPlan).  Walks of the same
    /// unit produce the same site keys, which is what lets a plan replay
    /// reuse the unit's template slots and constraint recipes.
    pub unit: String,
    /// Per-unit counter minting stable site keys along the walk (joins,
    /// loop invariants, call containments).  Reset per unit; the statement
    /// walk is deterministic, so re-walks reproduce the same keys.
    pub site: std::cell::Cell<usize>,
    /// Checker-exported range facts (refuted branches, never-entered loops)
    /// keyed by source span; `None` disables pruning.
    pub facts: Option<&'a RangeFacts>,
    /// `if` statements whose refuted side this walk skipped.
    pub pruned_branches: std::cell::Cell<usize>,
    /// `while` loops this walk replaced by their continuation because the
    /// guard is refuted on entry.
    pub pruned_loops: std::cell::Cell<usize>,
}

impl<'a> DeriveCtx<'a> {
    /// A derivation context for one unit (function body at a level, or main).
    #[allow(clippy::too_many_arguments)]
    pub fn for_unit(
        program: &'a Program,
        specs: &'a SpecTable,
        degree: usize,
        poly_degree: u32,
        template_vars: Vec<Var>,
        level: usize,
        unit: impl Into<String>,
    ) -> Self {
        DeriveCtx {
            program,
            specs,
            degree,
            poly_degree,
            template_vars,
            level,
            unit: unit.into(),
            site: std::cell::Cell::new(0),
            facts: None,
            pruned_branches: std::cell::Cell::new(0),
            pruned_loops: std::cell::Cell::new(0),
        }
    }

    /// Attaches checker-exported facts: the walk then derives only the live
    /// side of statically-refuted `if`s and drops never-entered loops.
    pub fn with_facts(mut self, facts: Option<&'a RangeFacts>) -> Self {
        self.facts = facts;
        self
    }

    fn refuted_at(&self, stmt: &Stmt) -> Option<BranchFact> {
        self.facts.and_then(|f| f.refuted_at(stmt.span()))
    }

    /// Advances the site counter past the `n` keys a skipped subtree would
    /// have consumed.  Keys of the rest of the walk thereby stay aligned
    /// with *unpruned* walks of the same skeleton — the shadow soundness
    /// derivation replays the recorded plan by site key against the
    /// uninstrumented walk, and a shifted sequence would silently share
    /// template columns across different program points.
    fn skip_sites(&self, n: usize) {
        self.site.set(self.site.get() + n);
    }

    /// The next stable site key of this unit's walk.
    fn next_site(&self, kind: &str) -> String {
        let n = self.site.get();
        self.site.set(n + 1);
        format!("{}.s{n}.{kind}", self.unit)
    }

    fn spec_pair(&self, name: &str) -> Result<(SymMoment, SymMoment), DeriveError> {
        let h = self.level;
        let base = self
            .specs
            .get(name, h)
            .ok_or_else(|| DeriveError::MissingSpec(name.to_string(), h))?;
        if h < self.degree {
            let frame = self
                .specs
                .get(name, h + 1)
                .ok_or_else(|| DeriveError::MissingSpec(name.to_string(), h + 1))?;
            Ok((base.pre.combine(&frame.pre), base.post.combine(&frame.post)))
        } else {
            Ok((base.pre.clone(), base.post.clone()))
        }
    }
}

/// Number of site keys a full (unpruned) walk of `stmt` consumes: one per
/// `if` join, loop invariant, and call containment.
fn site_count(stmt: &Stmt) -> usize {
    match stmt.kind() {
        StmtKind::Call(_) => 1,
        StmtKind::If(_, a, b) => 1 + site_count(a) + site_count(b),
        StmtKind::IfProb(_, a, b) => site_count(a) + site_count(b),
        StmtKind::While(_, body) => 1 + site_count(body),
        StmtKind::Seq(ss) => ss.iter().map(site_count).sum(),
        _ => 0,
    }
}

/// Transforms the post-annotation of `stmt` into a pre-annotation, emitting
/// constraints into `builder`.
///
/// # Errors
///
/// Returns [`DeriveError::MissingSpec`] when a call has no registered
/// specification at the required level.
pub fn transform(
    builder: &mut ConstraintBuilder,
    dctx: &DeriveCtx<'_>,
    stmt: &Stmt,
    ctx: &Context,
    post: SymMoment,
) -> Result<SymMoment, DeriveError> {
    match stmt.kind() {
        StmtKind::Skip => Ok(post),
        StmtKind::Tick(c) => Ok(post.prepend_cost(*c)),
        StmtKind::Assign(x, e) => Ok(post.substitute(x, &e.to_polynomial())),
        StmtKind::Sample(x, dist) => {
            let max_power = post.max_power(x);
            let moments: Vec<f64> = (0..=max_power).map(|j| dist.raw_moment(j)).collect();
            Ok(post.expect_over(x, &moments))
        }
        StmtKind::Call(name) => {
            // Q-Call-Poly / Q-Call-Mono: the pre-annotation is the (framed)
            // specification's pre; the specification's post must cover the
            // annotation required by the continuation after the call.
            let site = dctx.next_site(&format!("call.{name}"));
            let (pre, spec_post) = dctx.spec_pair(name)?;
            let ctx_after = ctx.after_stmt(stmt, dctx.program);
            require_contains(
                builder,
                &ctx_after,
                &spec_post,
                &post,
                dctx.poly_degree,
                &site,
            );
            Ok(pre)
        }
        StmtKind::If(cond, s1, s2) => {
            // A branch the checker refuted is never executed: derive only
            // the live side, under the context the refutation implies, and
            // skip the join template and both containment rows entirely.
            match dctx.refuted_at(stmt) {
                Some(BranchFact::ThenUnreachable) => {
                    dctx.pruned_branches.set(dctx.pruned_branches.get() + 1);
                    dctx.skip_sites(1 + site_count(s1));
                    return transform(builder, dctx, s2, &ctx.and(&cond.negate()), post);
                }
                Some(BranchFact::ElseUnreachable) => {
                    dctx.pruned_branches.set(dctx.pruned_branches.get() + 1);
                    dctx.skip_sites(1);
                    let pre = transform(builder, dctx, s1, &ctx.and(cond), post)?;
                    dctx.skip_sites(site_count(s2));
                    return Ok(pre);
                }
                _ => {}
            }
            // Q-Cond + Q-Weaken: analyze both branches, then take a fresh
            // annotation containing both branch pre-annotations.
            let site = dctx.next_site("if");
            let ctx_then = ctx.and(cond);
            let ctx_else = ctx.and(&cond.negate());
            let pre_then = transform(builder, dctx, s1, &ctx_then, post.clone())?;
            let pre_else = transform(builder, dctx, s2, &ctx_else, post)?;
            let joined = builder.planned_moment(
                &site,
                "if",
                &dctx.template_vars,
                dctx.degree,
                dctx.poly_degree,
                dctx.level,
            );
            require_contains(
                builder,
                &ctx_then,
                &joined,
                &pre_then,
                dctx.poly_degree,
                &format!("{site}.then"),
            );
            require_contains(
                builder,
                &ctx_else,
                &joined,
                &pre_else,
                dctx.poly_degree,
                &format!("{site}.else"),
            );
            Ok(joined)
        }
        StmtKind::IfProb(p, s1, s2) => {
            // Q-Prob: the pre-annotation is the probability-weighted ⊕ of the
            // two branch pre-annotations.
            let pre_then = transform(builder, dctx, s1, ctx, post.clone())?;
            let pre_else = transform(builder, dctx, s2, ctx, post)?;
            Ok(pre_then
                .scale_probability(*p)
                .combine(&pre_else.scale_probability(1.0 - *p)))
        }
        StmtKind::While(cond, body) => {
            // A loop whose guard the checker refuted on entry exits
            // immediately: no invariant template, no body or exit rows.
            if dctx.refuted_at(stmt) == Some(BranchFact::LoopNeverEntered) {
                dctx.pruned_loops.set(dctx.pruned_loops.get() + 1);
                dctx.skip_sites(1 + site_count(body));
                return Ok(post);
            }
            // Q-Loop: a fresh invariant annotation that (i) is preserved by
            // the body under the guard and (ii) covers the continuation when
            // the guard fails.
            let site = dctx.next_site("loop");
            let invariant = builder.planned_moment(
                &site,
                "loop",
                &dctx.template_vars,
                dctx.degree,
                dctx.poly_degree,
                dctx.level,
            );
            // The loop-head fixpoint depends only on the program and the
            // incoming context, so plan replays serve it from cache.
            let head_ctx = builder
                .plan_mut()
                .loop_head(&site, || ctx.loop_head_invariant(cond, body, dctx.program));
            let body_ctx = head_ctx.and(cond);
            let exit_ctx = head_ctx.and(&cond.negate());
            let body_pre = transform(builder, dctx, body, &body_ctx, invariant.clone())?;
            require_contains(
                builder,
                &body_ctx,
                &invariant,
                &body_pre,
                dctx.poly_degree,
                &format!("{site}.body"),
            );
            require_contains(
                builder,
                &exit_ctx,
                &invariant,
                &post,
                dctx.poly_degree,
                &format!("{site}.exit"),
            );
            Ok(invariant)
        }
        StmtKind::Seq(stmts) => {
            // Contexts flow forward; annotations flow backward.
            let mut contexts = Vec::with_capacity(stmts.len());
            let mut current = ctx.clone();
            for s in stmts {
                contexts.push(current.clone());
                current = current.after_stmt(s, dctx.program);
            }
            let mut annotation = post;
            for (s, c) in stmts.iter().zip(contexts.iter()).rev() {
                annotation = transform(builder, dctx, s, c, annotation)?;
            }
            Ok(annotation)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;
    use cma_semiring::poly::{Monomial, Polynomial};

    fn dctx<'a>(program: &'a Program, specs: &'a SpecTable, m: usize) -> DeriveCtx<'a> {
        DeriveCtx::for_unit(program, specs, m, 1, program.vars(), 0, "test")
    }

    fn empty_program() -> Program {
        ProgramBuilder::new().main(skip()).build().unwrap()
    }

    fn resolve_constant(q: &SymMoment, k: usize) -> (f64, f64) {
        let lo = q.component(k).lo.resolve(&|_| 0.0);
        let hi = q.component(k).hi.resolve(&|_| 0.0);
        (
            lo.as_constant().unwrap_or(f64::NAN),
            hi.as_constant().unwrap_or(f64::NAN),
        )
    }

    #[test]
    fn tick_accumulates_binomially() {
        let program = empty_program();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let d = dctx(&program, &specs, 2);
        let pre = transform(
            &mut b,
            &d,
            &seq([tick(1.0), tick(2.0)]),
            &Context::top(),
            SymMoment::one(2),
        )
        .unwrap();
        // Total cost 3 deterministically: moments 1, 3, 9.
        assert_eq!(resolve_constant(&pre, 0), (1.0, 1.0));
        assert_eq!(resolve_constant(&pre, 1), (3.0, 3.0));
        assert_eq!(resolve_constant(&pre, 2), (9.0, 9.0));
    }

    #[test]
    fn probabilistic_branch_mixes_moments() {
        // cost 2 with prob 0.5, cost 4 otherwise: E = 3, E[C²] = 10.
        let program = empty_program();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let d = dctx(&program, &specs, 2);
        let stmt = if_prob(0.5, tick(2.0), tick(4.0));
        let pre = transform(&mut b, &d, &stmt, &Context::top(), SymMoment::one(2)).unwrap();
        assert_eq!(resolve_constant(&pre, 0), (1.0, 1.0));
        assert_eq!(resolve_constant(&pre, 1), (3.0, 3.0));
        assert_eq!(resolve_constant(&pre, 2), (10.0, 10.0));
    }

    #[test]
    fn sampling_then_branching_uses_distribution_moments() {
        // t ~ uniform(-1, 2); cost = t via assignment is not expressible with
        // tick, so check the annotation arithmetic directly:
        // post second component x², assignment x := x + t, sampling t.
        let program = empty_program();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let d = dctx(&program, &specs, 2);
        let x = Var::new("x");
        let post = SymMoment::from_components(vec![
            crate::template::SymInterval::point(1.0),
            crate::template::SymInterval::point_poly(&Polynomial::var(x.clone())),
            crate::template::SymInterval::point_poly(&Polynomial::var(x.clone()).pow(2)),
        ]);
        let stmt = seq([
            sample("t", uniform(-1.0, 2.0)),
            assign("x", add(v("x"), v("t"))),
        ]);
        let pre = transform(&mut b, &d, &stmt, &Context::top(), post).unwrap();
        // E[(x+t)²] = x² + x + 1 with E[t]=1/2, E[t²]=1.
        let hi2 = pre.component(2).hi.resolve(&|_| 0.0);
        assert_eq!(hi2.coefficient(&Monomial::var_pow(x.clone(), 2)), 1.0);
        assert_eq!(hi2.coefficient(&Monomial::var(x.clone())), 1.0);
        assert_eq!(hi2.coefficient(&Monomial::unit()), 1.0);
        // First component: x + 1/2.
        let hi1 = pre.component(1).hi.resolve(&|_| 0.0);
        assert_eq!(hi1.coefficient(&Monomial::unit()), 0.5);
    }

    #[test]
    fn missing_spec_is_reported() {
        let program = ProgramBuilder::new()
            .function("f", tick(1.0))
            .main(call("f"))
            .build()
            .unwrap();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let d = dctx(&program, &specs, 1);
        let err = transform(
            &mut b,
            &d,
            program.main(),
            &Context::top(),
            SymMoment::one(1),
        )
        .unwrap_err();
        assert_eq!(err, DeriveError::MissingSpec("f".into(), 0));
        assert!(err.to_string().contains('f'));
    }

    #[test]
    fn conditional_join_produces_sound_bounds_after_solving() {
        // if x <= 0 then tick(1) else tick(5): bounds must contain [1, 5].
        let program = empty_program();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let d = DeriveCtx::for_unit(&program, &specs, 1, 1, vec![Var::new("x")], 0, "test");
        let stmt = if_then_else(le(v("x"), cst(0.0)), tick(1.0), tick(5.0));
        let pre = transform(&mut b, &d, &stmt, &Context::top(), SymMoment::one(1)).unwrap();
        // Minimize the width of the first component at x = 0 and x = 3.
        for val in [0.0, 3.0] {
            b.add_objective(&pre.component(1).hi.eval_vars(&|_| val), 1.0);
            b.add_objective(&pre.component(1).lo.eval_vars(&|_| val), -1.0);
        }
        let sol = b.solve();
        assert!(sol.is_optimal());
        let hi = pre.component(1).hi.resolve(&|v| sol.value(v));
        let lo = pre.component(1).lo.resolve(&|v| sol.value(v));
        for x_val in [-2.0, 0.0, 1.0, 4.0] {
            assert!(hi.eval(&|_| x_val) >= 5.0 - 1e-5 || x_val <= 0.0);
            assert!(hi.eval(&|_| x_val) >= 1.0 - 1e-5);
            assert!(lo.eval(&|_| x_val) <= 1.0 + 1e-5 || x_val > 0.0);
            assert!(lo.eval(&|_| x_val) <= 5.0 + 1e-5);
        }
    }

    #[test]
    fn loop_invariant_bounds_a_deterministic_loop() {
        // while 1 <= n do tick(1); n := n - 1 od  with n >= 0: cost is exactly n.
        let program = empty_program();
        let specs = SpecTable::new();
        let mut b = ConstraintBuilder::new();
        let n = Var::new("n");
        let d = DeriveCtx::for_unit(&program, &specs, 1, 1, vec![n.clone()], 0, "test");
        let stmt = while_loop(
            le(cst(1.0), v("n")),
            seq([tick(1.0), assign("n", sub(v("n"), cst(1.0)))]),
        );
        let ctx = Context::from_conditions(&[ge(v("n"), cst(0.0))]);
        let pre = transform(&mut b, &d, &stmt, &ctx, SymMoment::one(1)).unwrap();
        b.add_objective(&pre.component(1).hi.eval_vars(&|_| 10.0), 1.0);
        b.add_objective(&pre.component(1).lo.eval_vars(&|_| 10.0), -1.0);
        let sol = b.solve();
        assert!(sol.is_optimal());
        let hi = pre.component(1).hi.resolve(&|v| sol.value(v));
        let lo = pre.component(1).lo.resolve(&|v| sol.value(v));
        // At n = 10 the true cost is 10; bounds must bracket it and, thanks to
        // the objective, tightly so.
        assert!(hi.eval(&|_| 10.0) >= 10.0 - 1e-4);
        assert!(hi.eval(&|_| 10.0) <= 10.0 + 1e-3);
        assert!(lo.eval(&|_| 10.0) <= 10.0 + 1e-4);
    }
}
