//! Template-based derivation system for interval bounds on higher (central)
//! moments of cost accumulators in probabilistic programs.
//!
//! This is the core of the reproduction of *Central Moment Analysis for Cost
//! Accumulators in Probabilistic Programs* (PLDI 2021).  The crate turns an
//! [`cma_appl::Program`] into a linear program whose solutions are symbolic
//! interval bounds `[L_k, U_k]` on every raw moment `E[C^k]` of the accumulated
//! cost `C`, following the paper's derivation system (Fig. 6/14):
//!
//! * [`template`] — symbolic interval moment vectors whose polynomial
//!   coefficients are LP unknowns;
//! * [`builder`] — the LP constraint builder (substitute for Gurobi models);
//! * [`weaken`] — the rewrite-function certificates that discharge the
//!   weakening rule `Γ ⊨ Q ⊒ Q'`;
//! * [`spec`] — moment-polymorphic function specifications (restriction
//!   levels, frame rule, elimination sequences);
//! * [`derive`](mod@derive) — the backward transformer implementing the syntax-directed
//!   rules (Q-Tick, Q-Sample, Q-Assign, Q-Seq, Q-Cond, Q-Prob, Q-Loop,
//!   Q-Call-Poly, Q-Call-Mono);
//! * [`engine`] — the analysis driver (call-graph SCCs, objectives, solving,
//!   bound extraction, in-session degree escalation, poly-degree retries);
//! * [`plan`] — derivation plans: the degree-independent skeleton of a
//!   derivation (template slots, constraint recipes, loop-head contexts),
//!   recorded once and re-instantiated per `(m, d)`;
//! * [`central`] — central moments, variance, skewness and kurtosis derived
//!   from raw-moment interval bounds;
//! * [`tail`] — Markov / Cantelli / Chebyshev tail bounds (§5);
//! * [`soundness`] — the algorithmic side conditions of Theorem 4.4
//!   (bounded updates and finiteness of `E[T^{md}]`).
//!
//! # Quick start
//!
//! ```
//! use cma_appl::parse_program;
//! use cma_inference::{analyze_with, AnalysisOptions};
//! use cma_lp::SimplexBackend;
//!
//! let program = parse_program(r#"
//!     func main() begin
//!       if prob(0.5) then tick(2) else tick(4) fi
//!     end
//! "#).unwrap();
//! let result = analyze_with(&program, &AnalysisOptions::degree(2), &SimplexBackend).unwrap();
//! // E[C] = 3, E[C^2] = 10 exactly; the analysis brackets both.
//! let e1 = result.raw_moment_at(1, &[]);
//! let e2 = result.raw_moment_at(2, &[]);
//! assert!(e1.lo() <= 3.0 + 1e-6 && 3.0 - 1e-6 <= e1.hi());
//! assert!(e2.lo() <= 10.0 + 1e-6 && 10.0 - 1e-6 <= e2.hi());
//! ```
//!
//! Downstream users should prefer the `Analysis` pipeline facade of the
//! umbrella `central_moment_analysis` crate, which wires parsing, inference,
//! central moments, tail bounds, and soundness checking into one call.

pub mod builder;
pub mod central;
pub mod derive;
pub mod engine;
pub mod plan;
pub mod soundness;
pub mod spec;
pub mod store;
pub mod tail;
pub mod template;
pub mod weaken;

pub use central::CentralMoments;
pub use engine::{
    analyze_session, analyze_session_resilient, analyze_with, AnalysisError, AnalysisOptions,
    AnalysisResult, AnalysisSession, DegradationStats, DegradationStep, EscalationStats,
    GroupLpStats, MomentBound, PruningStats, SolveMode,
};
pub use plan::{DerivationPlan, PlanMode, PlanStats};
pub use soundness::{
    check_bounded_update, check_termination_moment, check_termination_moment_in_session,
    check_termination_moment_with, soundness_report, soundness_report_in_session,
    soundness_report_with, SoundnessReport,
};
pub use store::ConstraintStore;
pub use tail::{
    best_tail_bound, cantelli_upper_tail, chebyshev_tail, markov_tail, tail_curve, TailBound,
};
