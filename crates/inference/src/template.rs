//! Symbolic templates: polynomials, intervals, and moment vectors whose
//! coefficients are *linear expressions over LP unknowns*.
//!
//! Every inference rule of the paper transforms potential annotations in ways
//! that are linear in the template coefficients (the composition operator `⊗`
//! is only ever applied with a concrete left operand), which is exactly what
//! makes the reduction to linear programming possible (§3.4).

use std::collections::BTreeMap;

use cma_lp::LpVarId;
use cma_semiring::binomial;
use cma_semiring::poly::{Monomial, Polynomial, Var};

/// An affine expression `c₀ + Σ cᵢ·vᵢ` over LP unknowns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinCoef {
    constant: f64,
    terms: BTreeMap<LpVarId, f64>,
}

impl LinCoef {
    /// The zero coefficient.
    pub fn zero() -> Self {
        LinCoef::default()
    }

    /// A constant coefficient.
    pub fn constant(c: f64) -> Self {
        LinCoef {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The coefficient consisting of a single LP unknown.
    pub fn var(v: LpVarId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1.0);
        LinCoef {
            constant: 0.0,
            terms,
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The LP-variable terms.
    pub fn terms(&self) -> impl Iterator<Item = (LpVarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Whether the coefficient is syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0.0 && self.terms.is_empty()
    }

    /// Whether the coefficient involves no LP unknowns.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of two coefficients.
    pub fn add(&self, other: &LinCoef) -> LinCoef {
        let mut result = self.clone();
        result.constant += other.constant;
        for (v, c) in &other.terms {
            let entry = result.terms.entry(*v).or_insert(0.0);
            *entry += c;
            if *entry == 0.0 {
                result.terms.remove(v);
            }
        }
        result
    }

    /// Difference of two coefficients.
    pub fn sub(&self, other: &LinCoef) -> LinCoef {
        self.add(&other.scale(-1.0))
    }

    /// Scales the coefficient by a real constant.
    pub fn scale(&self, c: f64) -> LinCoef {
        if c == 0.0 {
            return LinCoef::zero();
        }
        LinCoef {
            constant: self.constant * c,
            terms: self.terms.iter().map(|(v, k)| (*v, k * c)).collect(),
        }
    }

    /// Evaluates the coefficient under an assignment of the LP unknowns.
    pub fn eval(&self, values: &dyn Fn(LpVarId) -> f64) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values(*v)).sum::<f64>()
    }
}

/// A polynomial over program variables whose coefficients are [`LinCoef`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplatePoly {
    terms: BTreeMap<Monomial, LinCoef>,
}

impl TemplatePoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        TemplatePoly::default()
    }

    /// A concrete constant polynomial.
    pub fn constant(c: f64) -> Self {
        TemplatePoly::from_concrete(&Polynomial::constant(c))
    }

    /// Lifts a concrete polynomial into a template with constant coefficients.
    pub fn from_concrete(p: &Polynomial) -> Self {
        let mut terms = BTreeMap::new();
        for (m, c) in p.terms() {
            terms.insert(m.clone(), LinCoef::constant(c));
        }
        TemplatePoly { terms }
    }

    /// Builds a template from `(monomial, coefficient)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, LinCoef)>) -> Self {
        let mut result = TemplatePoly::zero();
        for (m, c) in terms {
            result.add_term(m, c);
        }
        result
    }

    /// Adds `coef · monomial` to the polynomial.
    pub fn add_term(&mut self, m: Monomial, coef: LinCoef) {
        if coef.is_zero() {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert_with(LinCoef::zero);
        *entry = entry.add(&coef);
        if entry.is_zero() {
            self.terms.remove(&m);
        }
    }

    /// Iterates over the `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &LinCoef)> {
        self.terms.iter()
    }

    /// The coefficient of a monomial (zero if absent).
    pub fn coefficient(&self, m: &Monomial) -> LinCoef {
        self.terms.get(m).cloned().unwrap_or_else(LinCoef::zero)
    }

    /// The monomials with non-zero coefficients.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.terms.keys()
    }

    /// Whether the polynomial is syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of two template polynomials.
    pub fn add(&self, other: &TemplatePoly) -> TemplatePoly {
        let mut result = self.clone();
        for (m, c) in other.terms() {
            result.add_term(m.clone(), c.clone());
        }
        result
    }

    /// Difference of two template polynomials.
    pub fn sub(&self, other: &TemplatePoly) -> TemplatePoly {
        self.add(&other.scale(-1.0))
    }

    /// Scales every coefficient by a real constant.
    pub fn scale(&self, c: f64) -> TemplatePoly {
        if c == 0.0 {
            return TemplatePoly::zero();
        }
        TemplatePoly {
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), k.scale(c)))
                .collect(),
        }
    }

    /// Multiplies the template by a *concrete* polynomial (coefficients stay
    /// linear in the LP unknowns).
    pub fn mul_concrete(&self, p: &Polynomial) -> TemplatePoly {
        let mut result = TemplatePoly::zero();
        for (m1, coef) in self.terms() {
            for (m2, c) in p.terms() {
                result.add_term(m1.mul(m2), coef.scale(c));
            }
        }
        result
    }

    /// Substitutes a program variable by a concrete polynomial
    /// (the `Q-Assign` rule).
    pub fn substitute(&self, v: &Var, replacement: &Polynomial) -> TemplatePoly {
        let mut result = TemplatePoly::zero();
        for (m, coef) in self.terms() {
            let (e, rest) = m.split_var(v);
            if e == 0 {
                result.add_term(rest, coef.clone());
            } else {
                let expanded = replacement.pow(e);
                for (m2, c) in expanded.terms() {
                    result.add_term(rest.mul(m2), coef.scale(c));
                }
            }
        }
        result
    }

    /// Replaces every power `v^j` by the constant `moments[j]`
    /// (the expectation computation of the `Q-Sample` rule).
    ///
    /// # Panics
    ///
    /// Panics if a power of `v` exceeds the supplied moments.
    pub fn expect_powers(&self, v: &Var, moments: &[f64]) -> TemplatePoly {
        let mut result = TemplatePoly::zero();
        for (m, coef) in self.terms() {
            let (e, rest) = m.split_var(v);
            let factor = moments[e as usize];
            result.add_term(rest, coef.scale(factor));
        }
        result
    }

    /// The highest power of `v` appearing in the polynomial.
    pub fn max_power(&self, v: &Var) -> u32 {
        self.terms.keys().map(|m| m.exponent(v)).max().unwrap_or(0)
    }

    /// Evaluates the program variables at a concrete valuation, leaving an
    /// affine expression over the LP unknowns (used for objectives).
    pub fn eval_vars(&self, valuation: &dyn Fn(&Var) -> f64) -> LinCoef {
        let mut acc = LinCoef::zero();
        for (m, coef) in self.terms() {
            acc = acc.add(&coef.scale(m.eval(valuation)));
        }
        acc
    }

    /// Resolves the LP unknowns with a solution, yielding a concrete
    /// polynomial (tiny coefficients are rounded away for readability).
    pub fn resolve(&self, values: &dyn Fn(LpVarId) -> f64) -> Polynomial {
        let mut p = Polynomial::zero();
        for (m, coef) in self.terms() {
            let mut c = coef.eval(values);
            if c.abs() < 1e-9 {
                c = 0.0;
            }
            p.add_term(m.clone(), c);
        }
        p
    }

    /// The union of monomials of `self` and `other`.
    pub fn monomial_union(&self, other: &TemplatePoly) -> Vec<Monomial> {
        let mut ms: Vec<Monomial> = self.monomials().cloned().collect();
        ms.extend(other.monomials().cloned());
        ms.sort();
        ms.dedup();
        ms
    }
}

/// A symbolic interval `[lo, hi]` whose ends are template polynomials.
#[derive(Debug, Clone, PartialEq)]
pub struct SymInterval {
    /// Lower-bound polynomial.
    pub lo: TemplatePoly,
    /// Upper-bound polynomial.
    pub hi: TemplatePoly,
}

impl SymInterval {
    /// The zero interval `[0, 0]`.
    pub fn zero() -> Self {
        SymInterval {
            lo: TemplatePoly::zero(),
            hi: TemplatePoly::zero(),
        }
    }

    /// The point interval `[c, c]`.
    pub fn point(c: f64) -> Self {
        SymInterval {
            lo: TemplatePoly::constant(c),
            hi: TemplatePoly::constant(c),
        }
    }

    /// The point interval with both ends the given concrete polynomial.
    pub fn point_poly(p: &Polynomial) -> Self {
        SymInterval {
            lo: TemplatePoly::from_concrete(p),
            hi: TemplatePoly::from_concrete(p),
        }
    }

    /// Interval addition (ends add pointwise).
    pub fn add(&self, other: &SymInterval) -> SymInterval {
        SymInterval {
            lo: self.lo.add(&other.lo),
            hi: self.hi.add(&other.hi),
        }
    }

    /// Scales by a real constant, flipping the ends when negative.
    pub fn scale(&self, c: f64) -> SymInterval {
        if c >= 0.0 {
            SymInterval {
                lo: self.lo.scale(c),
                hi: self.hi.scale(c),
            }
        } else {
            SymInterval {
                lo: self.hi.scale(c),
                hi: self.lo.scale(c),
            }
        }
    }

    /// Whether both ends are syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.lo.is_zero() && self.hi.is_zero()
    }

    /// Applies a transformation to both ends.
    pub fn map(&self, f: impl Fn(&TemplatePoly) -> TemplatePoly) -> SymInterval {
        SymInterval {
            lo: f(&self.lo),
            hi: f(&self.hi),
        }
    }
}

/// A symbolic moment annotation `Q ∈ M(m)_PI`: an `(m+1)`-vector of symbolic
/// intervals.  This is the quantity transformed by the derivation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMoment {
    components: Vec<SymInterval>,
}

impl SymMoment {
    /// The identity annotation `1 = ⟨[1,1],[0,0],…⟩` of degree `m`.
    pub fn one(degree: usize) -> Self {
        let mut components = vec![SymInterval::zero(); degree + 1];
        components[0] = SymInterval::point(1.0);
        SymMoment { components }
    }

    /// The all-zero annotation of degree `m`.
    pub fn zero(degree: usize) -> Self {
        SymMoment {
            components: vec![SymInterval::zero(); degree + 1],
        }
    }

    /// Builds an annotation from its components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn from_components(components: Vec<SymInterval>) -> Self {
        assert!(!components.is_empty());
        SymMoment { components }
    }

    /// The degree `m`.
    pub fn degree(&self) -> usize {
        self.components.len() - 1
    }

    /// The `k`-th component.
    pub fn component(&self, k: usize) -> &SymInterval {
        &self.components[k]
    }

    /// All components.
    pub fn components(&self) -> &[SymInterval] {
        &self.components
    }

    /// Mutable access to the `k`-th component.
    pub fn component_mut(&mut self, k: usize) -> &mut SymInterval {
        &mut self.components[k]
    }

    /// The combination operator `⊕` (pointwise interval addition).
    pub fn combine(&self, other: &SymMoment) -> SymMoment {
        assert_eq!(self.degree(), other.degree(), "degree mismatch in ⊕");
        SymMoment {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// Prepends a deterministic cost `c`:
    /// `⟨[c⁰,c⁰],…,[c^m,c^m]⟩ ⊗ self` (the `Q-Tick` rule).
    pub fn prepend_cost(&self, c: f64) -> SymMoment {
        let m = self.degree();
        let mut components = Vec::with_capacity(m + 1);
        for k in 0..=m {
            let mut acc = SymInterval::zero();
            for i in 0..=k {
                let factor = binomial(k, i) * c.powi(i as i32);
                acc = acc.add(&self.components[k - i].scale(factor));
            }
            components.push(acc);
        }
        SymMoment { components }
    }

    /// Scales every component by a probability `p ∈ [0, 1]`
    /// (`⟨[p,p],[0,0],…⟩ ⊗ self`, used by the `Q-Prob` rule).
    pub fn scale_probability(&self, p: f64) -> SymMoment {
        SymMoment {
            components: self.components.iter().map(|c| c.scale(p)).collect(),
        }
    }

    /// Substitutes a program variable by a concrete polynomial in every end
    /// (the `Q-Assign` rule).
    pub fn substitute(&self, v: &Var, replacement: &Polynomial) -> SymMoment {
        SymMoment {
            components: self
                .components
                .iter()
                .map(|c| c.map(|p| p.substitute(v, replacement)))
                .collect(),
        }
    }

    /// Takes the expectation over a sampled variable whose raw moments are
    /// `moments[j] = E[v^j]` (the `Q-Sample` rule).
    pub fn expect_over(&self, v: &Var, moments: &[f64]) -> SymMoment {
        SymMoment {
            components: self
                .components
                .iter()
                .map(|c| c.map(|p| p.expect_powers(v, moments)))
                .collect(),
        }
    }

    /// The highest power of `v` appearing anywhere in the annotation.
    pub fn max_power(&self, v: &Var) -> u32 {
        self.components
            .iter()
            .flat_map(|c| [c.lo.max_power(v), c.hi.max_power(v)])
            .max()
            .unwrap_or(0)
    }

    /// Resolves all LP unknowns, producing concrete interval polynomials
    /// `(lower, upper)` per component.
    pub fn resolve(&self, values: &dyn Fn(LpVarId) -> f64) -> Vec<(Polynomial, Polynomial)> {
        self.components
            .iter()
            .map(|c| (c.lo.resolve(values), c.hi.resolve(values)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn lp_var(i: usize) -> LpVarId {
        // LpVarId construction goes through an LpProblem in production code;
        // for unit tests we mint ids from a scratch problem.
        let mut lp = cma_lp::LpProblem::new();
        let mut id = None;
        for j in 0..=i {
            id = Some(lp.add_var(format!("v{j}"), true));
        }
        id.unwrap()
    }

    #[test]
    fn lincoef_arithmetic() {
        let a = LinCoef::constant(2.0).add(&LinCoef::var(lp_var(0)).scale(3.0));
        assert_eq!(a.constant_part(), 2.0);
        assert!(!a.is_constant());
        let b = a.sub(&LinCoef::var(lp_var(0)).scale(3.0));
        assert!(b.is_constant());
        assert_eq!(b.constant_part(), 2.0);
        assert!(LinCoef::zero().is_zero());
        let vals = |_: LpVarId| 5.0;
        assert_eq!(a.eval(&vals), 17.0);
    }

    #[test]
    fn template_from_concrete_and_resolve_roundtrip() {
        let p = Polynomial::var(x())
            .scale(2.0)
            .add(&Polynomial::constant(4.0));
        let t = TemplatePoly::from_concrete(&p);
        let back = t.resolve(&|_| 0.0);
        assert_eq!(back, p);
        assert!(t.coefficient(&Monomial::var(x())).is_constant());
    }

    #[test]
    fn template_add_sub_scale() {
        let v0 = lp_var(0);
        let t = TemplatePoly::from_terms([(Monomial::var(x()), LinCoef::var(v0))]);
        let u = t.add(&TemplatePoly::constant(1.0)).scale(2.0);
        let resolved = u.resolve(&|_| 3.0);
        // 2*(3x + 1) = 6x + 2
        assert_eq!(resolved.coefficient(&Monomial::var(x())), 6.0);
        assert_eq!(resolved.coefficient(&Monomial::unit()), 2.0);
        assert!(u.sub(&u).is_zero());
    }

    #[test]
    fn substitution_matches_concrete_polynomials() {
        // t = x^2 + 3; substitute x := y + 1.
        let t = TemplatePoly::from_concrete(
            &Polynomial::var(x()).pow(2).add(&Polynomial::constant(3.0)),
        );
        let replacement = Polynomial::var(Var::new("y")).add(&Polynomial::constant(1.0));
        let s = t.substitute(&x(), &replacement).resolve(&|_| 0.0);
        let expected = Polynomial::var(x())
            .pow(2)
            .add(&Polynomial::constant(3.0))
            .substitute(&x(), &replacement);
        assert_eq!(s, expected);
    }

    #[test]
    fn expectation_replaces_powers_by_moments() {
        // t = x^2*y + 2x + 5; with E[x]=0.5, E[x^2]=1 → y + 1 + 5 + ... = y + 6.
        let y = Var::new("y");
        let t = TemplatePoly::from_concrete(
            &Polynomial::var(x())
                .pow(2)
                .mul(&Polynomial::var(y.clone()))
                .add(&Polynomial::var(x()).scale(2.0))
                .add(&Polynomial::constant(5.0)),
        );
        let moments = [1.0, 0.5, 1.0];
        let e = t.expect_powers(&x(), &moments).resolve(&|_| 0.0);
        assert_eq!(e.coefficient(&Monomial::var(y.clone())), 1.0);
        assert_eq!(e.coefficient(&Monomial::unit()), 6.0);
        assert_eq!(t.max_power(&x()), 2);
    }

    #[test]
    fn eval_vars_leaves_lp_unknowns() {
        let v0 = lp_var(0);
        let t = TemplatePoly::from_terms([
            (Monomial::var(x()), LinCoef::var(v0)),
            (Monomial::unit(), LinCoef::constant(1.0)),
        ]);
        let coef = t.eval_vars(&|_| 4.0);
        // value = 4*v0 + 1
        assert_eq!(coef.constant_part(), 1.0);
        assert_eq!(coef.eval(&|_| 2.0), 9.0);
    }

    #[test]
    fn interval_scale_flips_on_negative() {
        let i = SymInterval {
            lo: TemplatePoly::constant(1.0),
            hi: TemplatePoly::constant(2.0),
        };
        let s = i.scale(-3.0);
        assert_eq!(s.lo.resolve(&|_| 0.0).as_constant(), Some(-6.0));
        assert_eq!(s.hi.resolve(&|_| 0.0).as_constant(), Some(-3.0));
        assert!(SymInterval::zero().is_zero());
    }

    #[test]
    fn prepend_cost_matches_moment_semiring() {
        // post = ⟨1, 0, 0⟩, cost 1  → ⟨1, 1, 1⟩ (Ex. 2.3, tick(1)).
        let post = SymMoment::one(2);
        let pre = post.prepend_cost(1.0);
        for k in 0..=2 {
            assert_eq!(
                pre.component(k).hi.resolve(&|_| 0.0).as_constant(),
                Some(1.0)
            );
            assert_eq!(
                pre.component(k).lo.resolve(&|_| 0.0).as_constant(),
                Some(1.0)
            );
        }
        // Negative costs flip nothing structurally but produce signed powers:
        // cost -1 on ⟨1,0,0⟩ gives ⟨1,-1,1⟩.
        let neg = post.prepend_cost(-1.0);
        assert_eq!(
            neg.component(1).hi.resolve(&|_| 0.0).as_constant(),
            Some(-1.0)
        );
        assert_eq!(
            neg.component(2).hi.resolve(&|_| 0.0).as_constant(),
            Some(1.0)
        );
    }

    #[test]
    fn prepend_cost_uses_binomial_cross_terms() {
        // post with first moment r and second moment s (concrete): cost c.
        // New second component must be c² + 2c·r + s.
        let post = SymMoment::from_components(vec![
            SymInterval::point(1.0),
            SymInterval::point(3.0),
            SymInterval::point(11.0),
        ]);
        let pre = post.prepend_cost(2.0);
        assert_eq!(
            pre.component(1).hi.resolve(&|_| 0.0).as_constant(),
            Some(5.0)
        );
        assert_eq!(
            pre.component(2).hi.resolve(&|_| 0.0).as_constant(),
            Some(4.0 + 2.0 * 2.0 * 3.0 + 11.0)
        );
    }

    #[test]
    fn combine_and_scale_probability() {
        let a = SymMoment::from_components(vec![SymInterval::point(1.0), SymInterval::point(2.0)]);
        let b = SymMoment::from_components(vec![SymInterval::point(1.0), SymInterval::point(6.0)]);
        let mix = a
            .scale_probability(0.25)
            .combine(&b.scale_probability(0.75));
        assert_eq!(
            mix.component(0).hi.resolve(&|_| 0.0).as_constant(),
            Some(1.0)
        );
        assert_eq!(
            mix.component(1).hi.resolve(&|_| 0.0).as_constant(),
            Some(5.0)
        );
    }

    #[test]
    fn symmoment_substitute_and_expect() {
        // ⟨1, x, x²⟩ after x := x + t, then expectation over t ~ uniform(-1,2).
        let comp = |p: Polynomial| SymInterval::point_poly(&p);
        let q = SymMoment::from_components(vec![
            comp(Polynomial::constant(1.0)),
            comp(Polynomial::var(x())),
            comp(Polynomial::var(x()).pow(2)),
        ]);
        let t = Var::new("t");
        let after_assign =
            q.substitute(&x(), &Polynomial::var(x()).add(&Polynomial::var(t.clone())));
        // E[t] = 1/2, E[t²] = 1.
        let after_sample = after_assign.expect_over(&t, &[1.0, 0.5, 1.0]);
        let second = after_sample.component(2).hi.resolve(&|_| 0.0);
        // E[(x+t)²] = x² + 2x·E[t] + E[t²] = x² + x + 1.
        assert_eq!(second.coefficient(&Monomial::var_pow(x(), 2)), 1.0);
        assert_eq!(second.coefficient(&Monomial::var(x())), 1.0);
        assert_eq!(second.coefficient(&Monomial::unit()), 1.0);
        assert_eq!(after_assign.max_power(&t), 2);
    }

    #[test]
    fn one_and_zero_have_expected_shape() {
        let one = SymMoment::one(3);
        assert_eq!(one.degree(), 3);
        assert_eq!(
            one.component(0).hi.resolve(&|_| 0.0).as_constant(),
            Some(1.0)
        );
        assert!(one.component(1).is_zero());
        let zero = SymMoment::zero(2);
        assert!(zero.components().iter().all(SymInterval::is_zero));
    }
}
