//! Algorithmic checks of the soundness side conditions of Theorem 4.4 (§4.3).
//!
//! The expected-potential method is sound for a program and target degree `m`
//! whenever
//!
//! 1. `E[T^{m·d}] < ∞` — the `(m·d)`-th moment of the stopping time is finite,
//!    checked by re-running the bound inference on a *step-counting*
//!    instrumentation of the program (every statement ticks 1), and
//! 2. the program has **bounded updates** — every assignment changes the
//!    assigned variable by an almost-surely bounded amount, so that
//!    `∥Y_n∥∞ ∈ O((n+1)^{m·d})` (Lemma F.3).

use cma_appl::ast::{Expr, Function, Program, Stmt, StmtKind};
use cma_lp::{LpBackend, SimplexBackend};
use cma_semiring::poly::Var;

use crate::engine::{analyze_with, AnalysisError, AnalysisOptions, AnalysisSession};

/// The outcome of the combined soundness check.
#[derive(Debug, Clone)]
pub struct SoundnessReport {
    /// Whether the bounded-update check passed.
    pub bounded_updates: bool,
    /// Offending statements reported by the bounded-update check.
    pub violations: Vec<String>,
    /// Whether a finite bound on `E[T^k]` was derived (and for which `k`).
    pub termination_moment: Option<usize>,
    /// Whether the termination check extended the main analysis's constraint
    /// store in place (no re-derivation, no from-scratch solve) instead of
    /// running a standalone analysis.
    pub reused_constraint_store: bool,
    /// LP variables the in-session extension appended (0 for standalone runs).
    pub extension_variables: usize,
    /// LP constraint rows the in-session extension appended (0 for
    /// standalone runs).
    pub extension_constraints: usize,
    /// Dual-simplex pivots the in-session warm re-solve took (0 for
    /// standalone runs and the legacy phase-1 strategy): the observable
    /// that the extension rode the live session instead of restarting
    /// phase 1.
    pub extension_dual_pivots: usize,
    /// Whether the termination verdict was established by an instrumented
    /// derivation running as a plan transformer over the main derivation's
    /// templates (component 0, the probability-mass component, shared), so
    /// the extension appended strictly fewer rows and columns than the
    /// disjoint-by-construction derivation.  `false` when the shared
    /// extension failed and a standalone re-analysis rescued the verdict.
    pub shared_templates: bool,
    /// LP template columns the in-session extension shared with the main
    /// derivation instead of minting (0 for disjoint and standalone runs).
    /// Describes the in-session attempt even if the verdict ultimately came
    /// from the standalone fallback.
    pub shared_template_columns: usize,
}

impl SoundnessReport {
    /// Whether both side conditions hold.
    pub fn is_sound(&self) -> bool {
        self.bounded_updates && self.termination_moment.is_some()
    }
}

/// Checks the bounded-update property (§4.3, Lemma F.3).
///
/// An assignment `x := e` has bounded update when `e − x` is a constant, or
/// `e` is a constant, or `e − x` is a sum of a constant and variables that are
/// only ever assigned by bounded-support sampling ("noise variables").
/// A sampling statement has bounded update when its support is bounded.
///
/// Returns the list of violating statements (empty means the check passed).
pub fn check_bounded_update(program: &Program) -> Vec<String> {
    let noise_vars = noise_variables(program);
    let mut violations = Vec::new();
    let mut check_body = |body: &Stmt| collect_violations(body, &noise_vars, &mut violations);
    check_body(program.main());
    for f in program.functions() {
        check_body(f.body());
    }
    violations
}

/// Variables that are only ever assigned through bounded-support sampling.
fn noise_variables(program: &Program) -> Vec<Var> {
    let mut sampled: Vec<Var> = Vec::new();
    let mut assigned_otherwise: Vec<Var> = Vec::new();
    let mut scan = |stmt: &Stmt| {
        visit(stmt, &mut |s| match s.kind() {
            StmtKind::Sample(x, d) => {
                let (lo, hi) = d.support();
                if lo.is_finite() && hi.is_finite() {
                    sampled.push(x.clone());
                } else {
                    assigned_otherwise.push(x.clone());
                }
            }
            StmtKind::Assign(x, _) => assigned_otherwise.push(x.clone()),
            _ => {}
        });
    };
    scan(program.main());
    for f in program.functions() {
        scan(f.body());
    }
    sampled
        .into_iter()
        .filter(|v| !assigned_otherwise.contains(v))
        .collect()
}

fn visit(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match stmt.kind() {
        StmtKind::If(_, a, b) | StmtKind::IfProb(_, a, b) => {
            visit(a, f);
            visit(b, f);
        }
        StmtKind::While(_, s) => visit(s, f),
        StmtKind::Seq(ss) => {
            for s in ss {
                visit(s, f);
            }
        }
        _ => {}
    }
}

fn collect_violations(stmt: &Stmt, noise_vars: &[Var], out: &mut Vec<String>) {
    visit(stmt, &mut |s| match s.kind() {
        StmtKind::Assign(x, e) if !assignment_is_bounded(x, e, noise_vars) => {
            out.push(format!("{x} := {e}"));
        }
        StmtKind::Sample(x, d) => {
            let (lo, hi) = d.support();
            if !(lo.is_finite() && hi.is_finite()) {
                out.push(format!("{x} ~ {d}"));
            }
        }
        _ => {}
    });
}

fn assignment_is_bounded(x: &Var, e: &Expr, noise_vars: &[Var]) -> bool {
    let poly = e.to_polynomial();
    // e constant: the variable jumps to a fixed value.
    if poly.as_constant().is_some() {
        return true;
    }
    // Otherwise require e − x to be affine in noise variables plus a constant.
    let delta = poly.sub(&cma_semiring::poly::Polynomial::var(x.clone()));
    if delta.degree() > 1 {
        return false;
    }
    delta.vars().iter().all(|v| noise_vars.contains(v))
}

/// Checks condition (i) of Theorem 4.4: derives an upper bound on `E[T^k]`
/// for the *step-counting* instrumentation of the program (every statement is
/// charged one unit of cost).  Returns `Ok(())` when a finite bound exists.
///
/// # Errors
///
/// Propagates the underlying [`AnalysisError`] when no bound can be derived,
/// which means the soundness of moment bounds of degree `k` is not
/// established for this program.
pub fn check_termination_moment(
    program: &Program,
    k: usize,
    options: &AnalysisOptions,
) -> Result<(), AnalysisError> {
    check_termination_moment_with(program, k, options, &SimplexBackend)
}

/// [`check_termination_moment`] with an explicit [`LpBackend`].
///
/// # Errors
///
/// Propagates the underlying [`AnalysisError`] when no bound can be derived.
pub fn check_termination_moment_with(
    program: &Program,
    k: usize,
    options: &AnalysisOptions,
    backend: &dyn LpBackend,
) -> Result<(), AnalysisError> {
    let instrumented = step_counting_instrumentation(program);
    let mut opts = options.clone();
    opts.degree = k;
    analyze_with(&instrumented, &opts, backend).map(|_| ())
}

/// [`check_termination_moment`] performed *inside* an existing analysis
/// session: the step-counting system is derived into the main pass's
/// constraint store and layered onto its open solver session (fresh
/// variables, appended rows, one extra `minimize`) instead of building and
/// solving a standalone problem.
///
/// # Errors
///
/// Propagates the underlying [`AnalysisError`] when no bound can be derived.
pub fn check_termination_moment_in_session(
    session: &mut AnalysisSession<'_>,
    program: &Program,
    k: usize,
) -> Result<(), AnalysisError> {
    let instrumented = step_counting_instrumentation(program);
    // The instrumentation is a skeleton-preserving rewrite (only statement
    // costs change), so the extension may share the main derivation's
    // component-0 templates when the session supports it.
    session.extend_and_minimize_shared(&instrumented, k)
}

/// Runs both soundness checks and assembles a report.
pub fn soundness_report(
    program: &Program,
    degree: usize,
    options: &AnalysisOptions,
) -> SoundnessReport {
    soundness_report_with(program, degree, options, &SimplexBackend)
}

/// [`soundness_report`] with an explicit [`LpBackend`] (standalone: derives
/// and solves the instrumented program from scratch).
pub fn soundness_report_with(
    program: &Program,
    degree: usize,
    options: &AnalysisOptions,
    backend: &dyn LpBackend,
) -> SoundnessReport {
    let violations = check_bounded_update(program);
    let termination_moment = check_termination_moment_with(program, degree, options, backend)
        .ok()
        .map(|_| degree);
    SoundnessReport {
        bounded_updates: violations.is_empty(),
        violations,
        termination_moment,
        reused_constraint_store: false,
        extension_variables: 0,
        extension_constraints: 0,
        extension_dual_pivots: 0,
        shared_templates: false,
        shared_template_columns: 0,
    }
}

/// [`soundness_report`] reusing the main analysis's live session: the
/// termination side condition extends the already-built constraint store (see
/// [`check_termination_moment_in_session`]) rather than re-deriving it, so
/// the report's LP statistics show no duplicated derivation solves.  When the
/// session supports it, the instrumented derivation additionally shares the
/// main derivation's templates ([`SoundnessReport::shared_templates`]); if
/// that shared extension comes back without a bound, the verdict is
/// double-checked by a standalone analysis before being reported negative,
/// so template sharing can only ever shrink the extension, never flip a
/// sound program to unsound.
pub fn soundness_report_in_session(
    session: &mut AnalysisSession<'_>,
    program: &Program,
    degree: usize,
) -> SoundnessReport {
    let violations = check_bounded_update(program);
    let shared_before = session.extension_shared_columns();
    let in_session = check_termination_moment_in_session(session, program, degree)
        .ok()
        .map(|_| degree);
    let shared_template_columns = session.extension_shared_columns() - shared_before;
    let rescued = in_session.is_none() && shared_template_columns > 0;
    let termination_moment = if rescued {
        // The shared extension found no bound; confirm against a standalone
        // derivation so sharing never weakens the verdict.
        let options = session.options().clone();
        check_termination_moment_with(program, degree, &options, session.backend())
            .ok()
            .map(|_| degree)
    } else {
        in_session
    };
    SoundnessReport {
        bounded_updates: violations.is_empty(),
        violations,
        termination_moment,
        // When the standalone fallback had to establish the verdict, the
        // in-place extension did *not* produce it — report that honestly
        // (the extension_* counters still describe the in-session attempt).
        reused_constraint_store: !rescued,
        extension_variables: session.extension_variables(),
        extension_constraints: session.extension_constraints(),
        extension_dual_pivots: session.extension_stats().dual_pivots,
        // Attribute the verdict to sharing only when the shared in-session
        // extension itself established it.
        shared_templates: shared_template_columns > 0 && in_session.is_some(),
        shared_template_columns,
    }
}

/// The step-counting instrumentation: replaces every `tick(c)` by `tick(1)`
/// and charges one unit before every other primitive statement, loop
/// iteration, and branch — an over-approximation of the number of evaluation
/// steps of the Markov-chain semantics.
pub fn step_counting_instrumentation(program: &Program) -> Program {
    let functions = program
        .functions()
        .map(|f| {
            let mut new_f = Function::new(f.name(), instrument(f.body()));
            for c in f.precondition() {
                new_f.add_precondition(c.clone());
            }
            new_f
        })
        .collect();
    Program::new(
        functions,
        instrument(program.main()),
        program.precondition().to_vec(),
    )
    .expect("instrumentation preserves validity")
}

fn instrument(stmt: &Stmt) -> Stmt {
    let tick = || Stmt::new(StmtKind::Tick(1.0));
    let kind = match stmt.kind() {
        StmtKind::Skip | StmtKind::Tick(_) => StmtKind::Tick(1.0),
        StmtKind::Assign(..) | StmtKind::Sample(..) | StmtKind::Call(_) => {
            StmtKind::Seq(vec![tick(), stmt.clone()])
        }
        StmtKind::If(c, a, b) => StmtKind::Seq(vec![
            tick(),
            Stmt::new(StmtKind::If(
                c.clone(),
                Box::new(instrument(a)),
                Box::new(instrument(b)),
            )),
        ]),
        StmtKind::IfProb(p, a, b) => StmtKind::Seq(vec![
            tick(),
            Stmt::new(StmtKind::IfProb(
                *p,
                Box::new(instrument(a)),
                Box::new(instrument(b)),
            )),
        ]),
        StmtKind::While(c, body) => StmtKind::Seq(vec![
            tick(),
            Stmt::new(StmtKind::While(
                c.clone(),
                Box::new(Stmt::new(StmtKind::Seq(vec![tick(), instrument(body)]))),
            )),
        ]),
        StmtKind::Seq(ss) => StmtKind::Seq(ss.iter().map(instrument).collect()),
    };
    Stmt::new(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;

    #[test]
    fn bounded_update_accepts_paper_style_programs() {
        // x := x + t with t ~ uniform(-1, 2): bounded.
        let program = ProgramBuilder::new()
            .function(
                "rdwalk",
                if_then(
                    lt(v("x"), v("d")),
                    seq([
                        sample("t", uniform(-1.0, 2.0)),
                        assign("x", add(v("x"), v("t"))),
                        call("rdwalk"),
                        tick(1.0),
                    ]),
                ),
            )
            .main(seq([assign("x", cst(0.0)), call("rdwalk")]))
            .build()
            .unwrap();
        assert!(check_bounded_update(&program).is_empty());
    }

    #[test]
    fn bounded_update_accepts_constant_steps_and_rejects_doubling() {
        let ok = ProgramBuilder::new()
            .main(seq([
                assign("x", cst(5.0)),
                assign("x", sub(v("x"), cst(1.0))),
                assign("y", add(v("y"), cst(3.0))),
            ]))
            .build()
            .unwrap();
        assert!(check_bounded_update(&ok).is_empty());

        let doubling = ProgramBuilder::new()
            .main(assign("x", mul(v("x"), cst(2.0))))
            .build()
            .unwrap();
        let violations = check_bounded_update(&doubling);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("x :="));
    }

    #[test]
    fn bounded_update_rejects_copying_unbounded_variables() {
        // y is assigned from x (not a noise variable): rejected because the
        // jump |y' - y| is unbounded in general.
        let program = ProgramBuilder::new()
            .main(assign("y", add(v("y"), v("x"))))
            .build()
            .unwrap();
        assert_eq!(check_bounded_update(&program).len(), 1);
    }

    #[test]
    fn noise_variables_must_not_be_reassigned() {
        // t is sampled but also assigned from x + x, so x := x + t is rejected.
        let program = ProgramBuilder::new()
            .main(seq([
                sample("t", uniform(0.0, 1.0)),
                assign("t", add(v("x"), v("x"))),
                assign("x", add(v("x"), v("t"))),
            ]))
            .build()
            .unwrap();
        let violations = check_bounded_update(&program);
        assert!(violations.iter().any(|s| s.starts_with("x :=")));
    }

    #[test]
    fn step_counting_instrumentation_charges_every_step() {
        let program = ProgramBuilder::new()
            .main(seq([
                assign("n", cst(3.0)),
                while_loop(
                    gt(v("n"), cst(0.0)),
                    seq([assign("n", sub(v("n"), cst(1.0))), tick(5.0)]),
                ),
            ]))
            .build()
            .unwrap();
        let instrumented = step_counting_instrumentation(&program);
        // The instrumented program charges 1 per step; simulating it counts
        // statements rather than the original cost.
        let stats = cma_sim::simulate(
            &instrumented,
            &cma_sim::SimConfig {
                trials: 1,
                seed: 0,
                ..Default::default()
            },
        );
        assert!(stats.mean() >= 8.0);
        // The original cost (15) is replaced by unit costs.
        assert!(stats.mean() < 15.0 + 8.0);
    }

    #[test]
    fn termination_moment_check_succeeds_for_geometric() {
        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2);
        assert!(check_termination_moment(&program, 2, &options).is_ok());
        let report = soundness_report(&program, 2, &options);
        assert!(report.is_sound());
        assert_eq!(report.termination_moment, Some(2));
    }

    #[test]
    fn in_session_report_reuses_the_constraint_store() {
        use crate::engine::analyze_session;
        use cma_lp::SparseBackend;

        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();
        let options = AnalysisOptions::degree(2);
        for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
            let (result, mut session) = analyze_session(&program, &options, backend).unwrap();
            let report = soundness_report_in_session(&mut session, &program, 2);
            assert!(report.is_sound(), "geo is sound");
            assert_eq!(report.termination_moment, Some(2));
            assert!(report.reused_constraint_store);
            assert!(report.extension_constraints > 0);
            assert!(report.extension_variables > 0);
            // One session, two minimizes — the extension did not re-solve
            // the main pass from scratch.
            assert_eq!(session.minimizes(), 2);
            assert_eq!(result.lp_solves, 1);
            // The standalone path reports the same verdict without reuse.
            let standalone = soundness_report_with(&program, 2, &options, backend);
            assert_eq!(standalone.termination_moment, Some(2));
            assert!(!standalone.reused_constraint_store);
            assert_eq!(standalone.extension_constraints, 0);
        }
    }

    #[test]
    fn shared_template_extension_is_strictly_smaller_than_disjoint() {
        use crate::engine::analyze_session;
        use cma_lp::{SparseBackend, WarmStrategy};

        let program = ProgramBuilder::new()
            .function(
                "geo",
                if_prob(0.5, seq([tick(1.0), call("geo")]), tick(1.0)),
            )
            .main(call("geo"))
            .build()
            .unwrap();

        // Shared: the sparse core under the default dual warm strategy rides
        // the live session, so the instrumented derivation runs in shadow
        // mode against the main plan.
        let options = AnalysisOptions::degree(2);
        let (_, mut session) = analyze_session(&program, &options, &SparseBackend).unwrap();
        let shared = soundness_report_in_session(&mut session, &program, 2);
        assert!(shared.is_sound());
        assert!(shared.shared_templates, "dual/sparse must share templates");
        assert!(shared.shared_template_columns > 0);

        // Disjoint baseline (the PR 2 behavior): phase-1 warm strategy takes
        // the standalone-subproblem path with all-fresh templates.
        let disjoint_options = AnalysisOptions::degree(2).with_warm_resolve(WarmStrategy::Phase1);
        let (_, mut baseline) =
            analyze_session(&program, &disjoint_options, &SparseBackend).unwrap();
        let disjoint = soundness_report_in_session(&mut baseline, &program, 2);
        assert!(disjoint.is_sound());
        assert!(!disjoint.shared_templates);
        assert_eq!(disjoint.shared_template_columns, 0);

        // The whole point of the plan transformer: the extension shrinks.
        assert!(
            shared.extension_constraints < disjoint.extension_constraints,
            "shared rows {} must undercut disjoint rows {}",
            shared.extension_constraints,
            disjoint.extension_constraints
        );
        assert!(
            shared.extension_variables < disjoint.extension_variables,
            "shared cols {} must undercut disjoint cols {}",
            shared.extension_variables,
            disjoint.extension_variables
        );
    }

    #[test]
    fn report_reflects_violations() {
        let program = ProgramBuilder::new()
            .main(assign("x", mul(v("x"), v("x"))))
            .build()
            .unwrap();
        let report = soundness_report(&program, 1, &AnalysisOptions::degree(1));
        assert!(!report.bounded_updates);
        assert!(!report.violations.is_empty());
    }
}
