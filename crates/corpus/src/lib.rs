//! Ecosystem-scale corpus campaigns for the central-moment analyzer.
//!
//! Running the analyzer over one program is a library call; running it over
//! thousands of programs of unknown provenance is an operations problem.
//! A single pathological input must not be able to take the whole campaign
//! down with it — not by crashing (a panic or abort in the analyzer), not by
//! hanging (an LP that never converges), and not by forcing a restart from
//! scratch after the machine reboots.  This crate provides the three pieces
//! that make such campaigns routine:
//!
//! * [`gen`] — a deterministic, seed-driven program generator (promoted from
//!   the checker's property tests) plus a hand-tuned *hostile* fixture whose
//!   analysis is expensive enough to trip any reasonable deadline;
//! * [`journal`] — an append-only NDJSON journal of per-program outcomes.
//!   Each line is written and flushed atomically under a lock, so a campaign
//!   killed mid-run resumes exactly where it left off (a torn final line is
//!   ignored, and its program is simply re-run);
//! * [`runner`] — a multi-process work-stealing runner that invokes the
//!   `cma` binary once per program in a *child process*, redirects its
//!   output to scratch files, polls for completion, and kills it past the
//!   per-program deadline.  Crashes and timeouts are recorded as isolated
//!   failures of that one program; the campaign marches on.
//!
//! The process boundary is the crash-isolation mechanism: an `abort()`, a
//! stack overflow, or an OOM kill in the analyzer takes down only the child.
//! The runner classifies every exit into an [`Outcome`] — `Ok`, `Timeout`,
//! `Crash`, or `AnalysisFailed` — retries only the transient kinds
//! (`Timeout`/`Crash`) a bounded number of times with a harsher in-child
//! budget, and aggregates everything into a diffable [`CampaignReport`].
//!
//! The crate is deliberately std-only so any other crate in the workspace
//! (including dev-dependencies of low-level crates) can use the generator
//! without dependency cycles.

pub mod gen;
pub mod journal;
pub mod runner;

pub use gen::{gen_program, hostile_source, write_corpus};
pub use journal::{Journal, JournalEntry, Outcome};
pub use runner::{run_campaign, CampaignConfig, CampaignReport};
