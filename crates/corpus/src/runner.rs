//! The multi-process, crash-isolated campaign runner.
//!
//! Each program is analyzed by invoking the `cma` binary in a fresh child
//! process: the process boundary is what turns an analyzer abort, stack
//! overflow, or OOM kill into an isolated per-program failure instead of a
//! dead campaign.  Child output goes to scratch files rather than pipes, so
//! a chatty child can never deadlock against a parent that is not reading.
//!
//! Deadlines are layered.  The child gets a *soft* budget via `--timeout`
//! (a fraction of the per-program deadline) so the analyzer's own
//! degradation ladder has room to return labeled partial results; the
//! parent holds the *hard* deadline and kills the child outright when it
//! passes.  Retries are bounded and restricted to transient outcomes
//! (timeout, crash), with a harsher in-child budget on each retry so the
//! ladder engages earlier.
//!
//! Workers steal programs from a shared atomic cursor — no work queue, no
//! channel, and naturally balanced when program costs vary by orders of
//! magnitude.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::journal::{Journal, JournalEntry, Outcome};

/// Everything a campaign needs: the binary, the programs, and the budgets.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Path to the `cma` binary to invoke per program.
    pub cma: PathBuf,
    /// The programs to analyze, in submission order.
    pub programs: Vec<PathBuf>,
    /// Number of concurrent worker threads (and hence child processes).
    pub jobs: usize,
    /// The hard per-program deadline; the child is killed when it passes.
    pub timeout: Duration,
    /// Extra attempts granted to transient failures (timeout, crash).
    pub retries: u32,
    /// Journal path; an existing journal resumes the campaign.
    pub journal: PathBuf,
    /// Extra arguments appended to every `cma analyze` invocation
    /// (e.g. `--degree 4`).
    pub analyze_args: Vec<String>,
}

/// The aggregate result of a campaign, diffable across runs.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Programs submitted to this run (resumed ones included).
    pub total: usize,
    /// Programs skipped because the journal already recorded them.
    pub resumed: usize,
    /// Final per-program outcomes, sorted by path for stable diffs.
    pub entries: Vec<JournalEntry>,
}

impl CampaignReport {
    fn count(&self, outcome: Outcome) -> usize {
        self.entries.iter().filter(|e| e.outcome == outcome).count()
    }

    /// Successful analyses (including degraded ones).
    pub fn ok(&self) -> usize {
        self.count(Outcome::Ok)
    }

    /// Successful analyses whose bounds were budget-degraded.
    pub fn degraded(&self) -> usize {
        self.entries.iter().filter(|e| e.degraded).count()
    }

    /// Programs that exceeded their deadline (soft or hard).
    pub fn timeouts(&self) -> usize {
        self.count(Outcome::Timeout)
    }

    /// Programs whose analyzer process died abnormally.
    pub fn crashes(&self) -> usize {
        self.count(Outcome::Crash)
    }

    /// Programs rejected by the analyzer with an ordinary error.
    pub fn failed(&self) -> usize {
        self.count(Outcome::AnalysisFailed)
    }

    /// Renders the report as stable, diffable JSON: counts first, then the
    /// per-program outcomes sorted by path.  Volatile data (durations) is
    /// deliberately excluded so reruns of an identical corpus diff clean.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"total\":{},\"ok\":{},\"degraded\":{},\"timeouts\":{},\"crashes\":{},\"failed\":{},\"resumed\":{},\"programs\":[",
            self.total,
            self.ok(),
            self.degraded(),
            self.timeouts(),
            self.crashes(),
            self.failed(),
            self.resumed,
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"outcome\":\"{}\",\"attempts\":{},\"degraded\":{}}}",
                crate::journal::escape_str(&e.path),
                e.outcome,
                e.attempts,
                e.degraded,
            ));
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "corpus campaign: {} programs ({} resumed from journal)",
            self.total, self.resumed
        )?;
        writeln!(
            f,
            "  ok: {} ({} degraded)   timeouts: {}   crashes: {}   failed: {}",
            self.ok(),
            self.degraded(),
            self.timeouts(),
            self.crashes(),
            self.failed(),
        )?;
        for e in &self.entries {
            if e.outcome != Outcome::Ok {
                writeln!(
                    f,
                    "  [{}] {} (attempts: {}) {}",
                    e.outcome, e.path, e.attempts, e.detail
                )?;
            }
        }
        Ok(())
    }
}

/// What one child-process run of one program produced.
struct RunResult {
    outcome: Outcome,
    degraded: bool,
    detail: String,
}

/// Runs `cma analyze` on one program in a child process, killing it past
/// the hard deadline.  `soft_fraction` scales the in-child `--timeout`.
fn run_one(
    config: &CampaignConfig,
    program: &Path,
    soft_fraction: f64,
    scratch_tag: &str,
) -> io::Result<RunResult> {
    let scratch = std::env::temp_dir();
    let out_path = scratch.join(format!(
        "cma-corpus-{}-{scratch_tag}.out",
        std::process::id()
    ));
    let err_path = scratch.join(format!(
        "cma-corpus-{}-{scratch_tag}.err",
        std::process::id()
    ));
    let out_file = File::create(&out_path)?;
    let err_file = File::create(&err_path)?;

    let soft_secs = (config.timeout.as_secs_f64() * soft_fraction).max(0.001);
    let mut child = Command::new(&config.cma)
        .arg("analyze")
        .arg(program)
        .arg("--json")
        .arg("--timeout")
        .arg(format!("{soft_secs}"))
        .args(&config.analyze_args)
        .stdin(Stdio::null())
        .stdout(Stdio::from(out_file))
        .stderr(Stdio::from(err_file))
        .spawn()?;

    let hard_deadline = Instant::now() + config.timeout;
    let mut killed = false;
    let status = loop {
        if let Some(status) = child.try_wait()? {
            break status;
        }
        if Instant::now() >= hard_deadline {
            // Past the hard deadline: the child gets no further grace.
            let _ = child.kill();
            killed = true;
            break child.wait()?;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let stdout = std::fs::read_to_string(&out_path).unwrap_or_default();
    let stderr = std::fs::read_to_string(&err_path).unwrap_or_default();
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&err_path);

    // Prefer the analyzer's structured one-liner (panic hooks write a noisy
    // multi-line backtrace around it); otherwise the first non-empty line.
    let first_err_line = stderr
        .lines()
        .map(str::trim)
        .find(|l| l.contains("internal error"))
        .or_else(|| stderr.lines().map(str::trim).find(|l| !l.is_empty()))
        .unwrap_or("")
        .to_string();
    let result = if killed {
        RunResult {
            outcome: Outcome::Timeout,
            degraded: false,
            detail: format!(
                "killed after {:.2}s hard deadline",
                config.timeout.as_secs_f64()
            ),
        }
    } else if status.success() {
        RunResult {
            outcome: Outcome::Ok,
            degraded: stdout.contains("\"degraded\":true"),
            detail: String::new(),
        }
    } else if status.code().is_none() {
        // No exit code: the child died to a signal (abort, segfault, …).
        RunResult {
            outcome: Outcome::Crash,
            degraded: false,
            detail: describe_signal_death(&status, &first_err_line),
        }
    } else if stderr.contains("budget exhausted") || stdout.contains("budget exhausted") {
        // The in-child soft budget ran out and even the degradation ladder
        // could not produce a result.
        RunResult {
            outcome: Outcome::Timeout,
            degraded: false,
            detail: format!("in-child budget ({soft_secs:.2}s) exhausted"),
        }
    } else if stderr.contains("internal error") {
        // A contained panic: the child survived to report it, but the
        // analyzer state is gone — classify with the crashes.
        RunResult {
            outcome: Outcome::Crash,
            degraded: false,
            detail: first_err_line,
        }
    } else {
        RunResult {
            outcome: Outcome::AnalysisFailed,
            degraded: false,
            detail: first_err_line,
        }
    };
    Ok(result)
}

#[cfg(unix)]
fn describe_signal_death(status: &std::process::ExitStatus, fallback: &str) -> String {
    use std::os::unix::process::ExitStatusExt as _;
    match status.signal() {
        Some(sig) => format!("killed by signal {sig}"),
        None => fallback.to_string(),
    }
}

#[cfg(not(unix))]
fn describe_signal_death(_status: &std::process::ExitStatus, fallback: &str) -> String {
    fallback.to_string()
}

/// Runs (or resumes) a campaign: every program not yet in the journal is
/// analyzed in an isolated child process, with bounded retries for
/// transient failures, and the journal grows one line per finished program.
///
/// # Errors
///
/// Returns the first I/O error hit while spawning children or writing the
/// journal.  Per-program analyzer failures are *not* errors — they are
/// outcomes in the report.
pub fn run_campaign(config: &CampaignConfig) -> io::Result<CampaignReport> {
    let (journal, prior) = Journal::open(&config.journal)?;
    let done: std::collections::BTreeSet<&str> = prior.iter().map(|e| e.path.as_str()).collect();
    let pending: Vec<&PathBuf> = config
        .programs
        .iter()
        .filter(|p| !done.contains(p.to_string_lossy().as_ref()))
        .collect();
    let resumed = config.programs.len() - pending.len();

    let cursor = AtomicUsize::new(0);
    let fresh: Mutex<Vec<JournalEntry>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<io::Error>> = Mutex::new(None);
    let workers = config.jobs.max(1).min(pending.len().max(1));

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cursor = &cursor;
            let fresh = &fresh;
            let failure = &failure;
            let journal = &journal;
            let pending = &pending;
            scope.spawn(move || loop {
                if failure.lock().expect("failure lock poisoned").is_some() {
                    return;
                }
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(program) = pending.get(idx) else {
                    return;
                };
                let started = Instant::now();
                let mut attempts = 0u32;
                let run = loop {
                    attempts += 1;
                    // Retries tighten the soft budget so the in-child
                    // degradation ladder engages earlier each time.
                    let soft_fraction = if attempts == 1 { 0.8 } else { 0.5 };
                    let tag = format!("w{worker}-i{idx}-a{attempts}");
                    match run_one(config, program, soft_fraction, &tag) {
                        Ok(run) => {
                            if run.outcome.retryable() && attempts <= config.retries {
                                continue;
                            }
                            break run;
                        }
                        Err(e) => {
                            let mut slot = failure.lock().expect("failure lock poisoned");
                            slot.get_or_insert(e);
                            return;
                        }
                    }
                };
                let entry = JournalEntry {
                    path: program.to_string_lossy().into_owned(),
                    outcome: run.outcome,
                    attempts,
                    degraded: run.degraded,
                    duration_ms: started.elapsed().as_millis() as u64,
                    detail: run.detail,
                };
                if let Err(e) = journal.record(&entry) {
                    let mut slot = failure.lock().expect("failure lock poisoned");
                    slot.get_or_insert(e);
                    return;
                }
                fresh.lock().expect("entry lock poisoned").push(entry);
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock poisoned") {
        return Err(e);
    }

    // The report covers this run's submission set: resumed entries come
    // from the journal, fresh ones from the workers.
    let submitted: std::collections::BTreeSet<String> = config
        .programs
        .iter()
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    let mut entries: Vec<JournalEntry> = prior
        .into_iter()
        .filter(|e| submitted.contains(&e.path))
        .chain(fresh.into_inner().expect("entry lock poisoned"))
        .collect();
    entries.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(CampaignReport {
        total: config.programs.len(),
        resumed,
        entries,
    })
}
