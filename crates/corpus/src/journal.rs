//! The resumable campaign journal: one NDJSON line per finished program.
//!
//! The journal is the campaign's only durable state.  Every completed
//! program appends exactly one line — written and flushed under a lock, so
//! concurrent workers never interleave bytes — and a campaign restarted
//! against the same journal simply skips every program already recorded.
//! A process killed mid-write leaves at most one torn final line; the
//! reader drops unparseable lines, so the only consequence is that the one
//! interrupted program is run again.  Re-running an analysis is idempotent,
//! so this recovery needs no fsync ceremony or write-ahead protocol.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// The classification of one program's run under the campaign runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The analyzer exited successfully (possibly with degraded bounds).
    Ok,
    /// The run exceeded its deadline: either the in-child budget reported
    /// exhaustion, or the parent killed the child past the hard deadline.
    Timeout,
    /// The child died abnormally (signal, abort, uncontained panic).
    Crash,
    /// The analyzer exited with an ordinary error (parse failure, checker
    /// rejection, unsupported construct).  Not retried: deterministic.
    AnalysisFailed,
}

impl Outcome {
    /// The stable string used in the journal and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Timeout => "timeout",
            Outcome::Crash => "crash",
            Outcome::AnalysisFailed => "analysis-failed",
        }
    }

    /// Parses the stable string form; `None` for anything else.
    pub fn parse(s: &str) -> Option<Outcome> {
        match s {
            "ok" => Some(Outcome::Ok),
            "timeout" => Some(Outcome::Timeout),
            "crash" => Some(Outcome::Crash),
            "analysis-failed" => Some(Outcome::AnalysisFailed),
            _ => None,
        }
    }

    /// Whether the runner should retry this outcome (transient kinds only).
    pub fn retryable(self) -> bool {
        matches!(self, Outcome::Timeout | Outcome::Crash)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal line: the durable record of one program's campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The program path, exactly as handed to the runner.
    pub path: String,
    /// The final classification after retries.
    pub outcome: Outcome,
    /// How many times the program was run (1 = no retry needed).
    pub attempts: u32,
    /// Whether the analyzer reported degraded (budget-limited) bounds.
    pub degraded: bool,
    /// Wall-clock milliseconds across all attempts.
    pub duration_ms: u64,
    /// A short human-readable note (first stderr line, kill reason, …).
    pub detail: String,
}

impl JournalEntry {
    /// Serializes the entry as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"path\":{},\"outcome\":\"{}\",\"attempts\":{},\"degraded\":{},\"duration_ms\":{},\"detail\":{}}}",
            escape_str(&self.path),
            self.outcome,
            self.attempts,
            self.degraded,
            self.duration_ms,
            escape_str(&self.detail),
        )
    }

    /// Parses one journal line; `None` for torn or foreign lines.
    pub fn from_line(line: &str) -> Option<JournalEntry> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(JournalEntry {
            path: string_field(line, "path")?,
            outcome: Outcome::parse(&string_field(line, "outcome")?)?,
            attempts: u64_field(line, "attempts")? as u32,
            degraded: bool_field(line, "degraded")?,
            duration_ms: u64_field(line, "duration_ms")?,
            detail: string_field(line, "detail")?,
        })
    }
}

/// Escapes a string into a JSON string literal (quotes included).
pub(crate) fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the string value of `"key":"…"`, unescaping our own escapes.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Extracts the numeric value of `"key":N`.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the boolean value of `"key":true|false`.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    if line[start..].starts_with("true") {
        Some(true)
    } else if line[start..].starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// An append-only NDJSON journal shared by all campaign workers.
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, returning the journal
    /// handle plus every entry already recorded by earlier runs.  Torn or
    /// foreign lines are dropped — their programs will simply be re-run.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing yet.
    pub fn open(path: &Path) -> io::Result<(Journal, Vec<JournalEntry>)> {
        let prior = match std::fs::read_to_string(path) {
            Ok(text) => text.lines().filter_map(JournalEntry::from_line).collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Journal {
                file: Mutex::new(file),
            },
            prior,
        ))
    }

    /// Appends one entry as a single flushed line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write or flush failure.
    pub fn record(&self, entry: &JournalEntry) -> io::Result<()> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        writeln!(file, "{}", entry.to_line())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalEntry {
        JournalEntry {
            path: "corpus/seed_00042.appl".to_string(),
            outcome: Outcome::Timeout,
            attempts: 3,
            degraded: false,
            duration_ms: 1500,
            detail: "killed after 0.5s (attempt 3)".to_string(),
        }
    }

    #[test]
    fn entries_round_trip_through_the_line_format() {
        let entry = sample();
        assert_eq!(JournalEntry::from_line(&entry.to_line()), Some(entry));
    }

    #[test]
    fn hostile_strings_survive_escaping() {
        let entry = JournalEntry {
            path: "a \"b\"\\c\n\t\u{1}.appl".to_string(),
            detail: "line1\nline2 \"quoted\"".to_string(),
            ..sample()
        };
        assert_eq!(JournalEntry::from_line(&entry.to_line()), Some(entry));
    }

    #[test]
    fn torn_lines_are_dropped_not_fatal() {
        assert_eq!(
            JournalEntry::from_line("{\"path\":\"x.appl\",\"outco"),
            None
        );
        assert_eq!(JournalEntry::from_line(""), None);
        assert_eq!(JournalEntry::from_line("not json at all"), None);
    }

    #[test]
    fn journal_resumes_with_prior_entries() {
        let dir = std::env::temp_dir().join(format!("cma-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");
        let entry = sample();
        {
            let (journal, prior) = Journal::open(&path).unwrap();
            assert!(prior.is_empty());
            journal.record(&entry).unwrap();
        }
        // Simulate a torn final line from a mid-write kill.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"path\":\"torn").unwrap();
        }
        let (_, prior) = Journal::open(&path).unwrap();
        assert_eq!(prior, vec![entry]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
