//! Deterministic, seed-driven program generation for corpus campaigns.
//!
//! One `u64` seed drives the whole program shape, so a corpus is fully
//! reproducible from `(seed, count)` and a failing program can be named by
//! its seed alone.  The generator deliberately produces defective programs
//! too — reads of never-written variables, reversed uniform bounds — because
//! a corpus campaign must exercise the analyzer's *rejection* paths as well
//! as its acceptance paths.  (This is the same generator the checker's
//! property tests use; it lives here so both the test suite and the `cma
//! corpus gen` subcommand share one definition.)

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A tiny deterministic PRNG (splitmix64) so one `u64` seed drives the whole
/// program shape.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn var(&mut self) -> &'static str {
        ["x", "y", "z"][self.pick(3) as usize]
    }
}

/// One statement of a random program.  Depth caps nesting; the generator
/// may read variables that were never written and may emit invalid
/// distribution parameters — the checker is the gate.
fn gen_stmt(g: &mut Gen, depth: usize, out: &mut Vec<String>, indent: usize) {
    let pad = "  ".repeat(indent);
    match g.pick(if depth == 0 { 5 } else { 7 }) {
        0 => out.push(format!("{pad}{} := {}", g.var(), g.pick(5))),
        1 => out.push(format!("{pad}{} := {} + {}", g.var(), g.var(), g.pick(3))),
        2 => {
            // Half the time the uniform bounds are reversed (CMA003 bait).
            let a = g.pick(4) as i64;
            let b = if g.pick(2) == 0 { a + 2 } else { a - 1 };
            out.push(format!("{pad}{} ~ uniform({a}, {b})", g.var()));
        }
        3 => out.push(format!("{pad}tick({})", g.pick(4) + 1)),
        4 => out.push(format!("{pad}skip")),
        5 => {
            out.push(format!("{pad}if {} < {} then", g.var(), g.pick(4)));
            gen_stmt(g, depth - 1, out, indent + 1);
            out.push(format!("{pad}else"));
            gen_stmt(g, depth - 1, out, indent + 1);
            out.push(format!("{pad}fi"));
        }
        _ => {
            let v = g.var();
            out.push(format!("{pad}while {v} < {} do", g.pick(3) + 1));
            // Always advance the guard variable so the trial terminates
            // within the step budget (the checker would otherwise just
            // flag CMA004 and skip the case).
            out.push(format!("{pad}  {v} := {v} + 1"));
            out.push(format!("{pad}od"));
        }
    }
}

/// Generates the source text of one random program from a seed.
///
/// Not every seed yields a parseable statement sequence (the `;` placement
/// around blocks is heuristic); campaign tooling treats a parse failure as
/// an ordinary per-program failure, not a generator bug.
pub fn gen_program(seed: u64) -> String {
    let mut g = Gen(seed);
    let mut body = Vec::new();
    // Prelude: most variables start sampled from a wide range, so guards
    // over them stay statically undecided; a variable the prelude skips is
    // exactly the CMA001 bait once the epilogue reads it.
    for v in ["x", "y", "z"] {
        if g.pick(4) < 3 {
            body.push(format!("  {v} ~ uniform(-2, 3)"));
        }
    }
    let n = 2 + g.pick(4) as usize;
    for _ in 0..n {
        gen_stmt(&mut g, 2, &mut body, 1);
    }
    // Epilogue: read every variable, so no write is ever dead (CMA005
    // cannot fire) and every missing initialization is caught (CMA001
    // always fires for it).  `sink` is written before it is read.
    body.push("  sink := x + y".to_string());
    body.push("  sink := sink + z".to_string());
    // The grammar separates statements with `;`, but block keywords
    // (then/else/fi/do/od) are not statements — join lines, then add `;`
    // only after lines that end a statement and are followed by one.
    let mut source = String::from("func main() begin\n");
    for (i, line) in body.iter().enumerate() {
        source.push_str(line);
        let ends_stmt = !line.trim_end().ends_with("then")
            && !line.trim_end().ends_with("else")
            && !line.trim_end().ends_with("do");
        let next_opens = body
            .get(i + 1)
            .is_some_and(|l| matches!(l.trim(), "else" | "fi" | "od") || l.trim() == "fi");
        if ends_stmt && i + 1 < body.len() && !next_opens {
            source.push(';');
        }
        source.push('\n');
    }
    source.push_str("end\n");
    source
}

/// A hand-built program whose analysis is expensive enough to exceed any
/// tight deadline, yet parses and checks cleanly.  Used by the CI smoke job
/// to prove that a pathological input *times out* instead of hanging the
/// campaign.
///
/// The cost comes from template size: six mutually-coupled probabilistic
/// variables inside nested loops force the moment templates (and hence the
/// LPs) to carry every cross-monomial up to the requested degree, and the
/// recursive helper doubles the number of derivation groups.  The blow-up
/// is in the *moment degree*, not the program text — analyze it with
/// `--degree 4`, where an unbudgeted run takes minutes while a budgeted one
/// exits at its deadline with a structured budget-exhausted error.
pub fn hostile_source() -> String {
    let mut s = String::from("func helper() begin\n");
    s.push_str("  if prob(0.5) then\n");
    s.push_str("    a := a + b;\n    tick(1);\n    call helper\n");
    s.push_str("  else\n");
    s.push_str("    b := b + c;\n    tick(2)\n");
    s.push_str("  fi\nend\n");
    s.push_str("func main() begin\n");
    for v in ["a", "b", "c", "d", "e", "f"] {
        s.push_str(&format!("  {v} ~ uniform(0, 2);\n"));
    }
    s.push_str("  n := 0;\n");
    s.push_str("  while n < 8 do\n");
    s.push_str("    n := n + 1;\n");
    s.push_str("    if prob(0.3) then\n");
    s.push_str("      a := a + d;\n      d := d + e;\n      tick(1)\n");
    s.push_str("    else\n");
    s.push_str("      b := b + f;\n      e := e + a;\n      tick(3)\n");
    s.push_str("    fi;\n");
    s.push_str("    m := 0;\n");
    s.push_str("    while m < 4 do\n");
    s.push_str("      m := m + 1;\n");
    s.push_str("      c := c + a;\n");
    s.push_str("      f := f + b;\n");
    s.push_str("      tick(2)\n");
    s.push_str("    od;\n");
    s.push_str("    call helper\n");
    s.push_str("  od;\n");
    s.push_str("  sink := a + b;\n");
    s.push_str("  sink := sink + c;\n");
    s.push_str("  sink := sink + d;\n");
    s.push_str("  sink := sink + e;\n");
    s.push_str("  sink := sink + f\n");
    s.push_str("end\n");
    s
}

/// Writes a corpus of `count` generated programs (seeds `seed..seed+count`)
/// into `dir` as `seed_NNNNN.appl` files, plus `hostile.appl` when
/// `hostile` is set.  Returns the written paths in deterministic order.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing a file.
pub fn write_corpus(
    dir: &Path,
    seed: u64,
    count: usize,
    hostile: bool,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(count + usize::from(hostile));
    for i in 0..count {
        let s = seed.wrapping_add(i as u64);
        let path = dir.join(format!("seed_{s:05}.appl"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(gen_program(s).as_bytes())?;
        paths.push(path);
    }
    if hostile {
        let path = dir.join("hostile.appl");
        let mut file = std::fs::File::create(&path)?;
        file.write_all(hostile_source().as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(gen_program(42), gen_program(42));
        assert_ne!(gen_program(42), gen_program(43));
    }

    #[test]
    fn corpus_writer_names_files_by_seed() {
        let dir = std::env::temp_dir().join(format!("cma-corpus-gen-{}", std::process::id()));
        let paths = write_corpus(&dir, 100, 3, true).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths[0].ends_with("seed_00100.appl"));
        assert!(paths[3].ends_with("hostile.appl"));
        let written = std::fs::read_to_string(&paths[1]).unwrap();
        assert_eq!(written, gen_program(101));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
