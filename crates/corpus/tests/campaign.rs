//! End-to-end campaign tests against a scripted fake analyzer.
//!
//! A tiny shell script stands in for the `cma` binary: it logs each
//! invocation, then crashes, hangs, degrades, fails, or succeeds depending
//! on the program path it was handed.  This exercises the runner's whole
//! contract — crash isolation, kill-on-deadline, retry policy, journal
//! resume — without the cost (or nondeterminism) of real analyses.
#![cfg(unix)]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cma_corpus::{run_campaign, CampaignConfig, Journal, JournalEntry, Outcome};

/// A scratch directory unique to one test.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cma-campaign-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the fake analyzer: logs `$2` (the program path) to `log`, then
/// acts out the behavior its name asks for.
fn fake_cma(dir: &Path, log: &Path) -> PathBuf {
    let path = dir.join("fake-cma.sh");
    let script = format!(
        "#!/bin/sh\n\
         prog=\"$2\"\n\
         echo \"$prog\" >> {log}\n\
         case \"$prog\" in\n\
           *crashy*) kill -ABRT $$ ;;\n\
           *sleepy*) sleep 30 ;;\n\
           *flaky*)\n\
             if [ -e \"$prog.tried\" ]; then\n\
               echo '{{\"degradation\":{{\"degraded\":false,\"steps\":[]}}}}'\n\
             else\n\
               touch \"$prog.tried\"\n\
               echo 'cma: analysis failed: linear program budget exhausted' >&2\n\
               exit 1\n\
             fi ;;\n\
           *degraded*) echo '{{\"degradation\":{{\"degraded\":true,\"steps\":[\"degree:2->1\"]}}}}' ;;\n\
           *rejected*) echo 'cma: parse error: unexpected token' >&2; exit 1 ;;\n\
           *) echo '{{\"degradation\":{{\"degraded\":false,\"steps\":[]}}}}' ;;\n\
         esac\n",
        log = log.display()
    );
    fs::write(&path, script).unwrap();
    use std::os::unix::fs::PermissionsExt as _;
    fs::set_permissions(&path, fs::Permissions::from_mode(0o755)).unwrap();
    path
}

/// Creates empty `.appl` placeholder files and returns their paths.
fn programs(dir: &Path, names: &[&str]) -> Vec<PathBuf> {
    names
        .iter()
        .map(|name| {
            let path = dir.join(format!("{name}.appl"));
            fs::write(&path, "func main() begin skip end\n").unwrap();
            path
        })
        .collect()
}

fn config(dir: &Path, cma: PathBuf, programs: Vec<PathBuf>) -> CampaignConfig {
    CampaignConfig {
        cma,
        programs,
        jobs: 2,
        timeout: Duration::from_millis(300),
        retries: 0,
        journal: dir.join("journal.ndjson"),
        analyze_args: Vec::new(),
    }
}

fn outcome_of<'r>(report: &'r cma_corpus::CampaignReport, needle: &str) -> &'r JournalEntry {
    report
        .entries
        .iter()
        .find(|e| e.path.contains(needle))
        .unwrap_or_else(|| panic!("no entry for {needle}"))
}

#[test]
fn one_bad_program_cannot_take_the_campaign_down() {
    let dir = scratch("isolation");
    let log = dir.join("invocations.log");
    let cma = fake_cma(&dir, &log);
    let programs = programs(&dir, &["crashy", "sleepy", "degraded", "rejected", "plain"]);
    let report = run_campaign(&config(&dir, cma, programs)).unwrap();

    // Every program got a verdict: the crash and the hang were contained.
    assert_eq!(report.total, 5);
    assert_eq!(report.entries.len(), 5);
    assert_eq!(outcome_of(&report, "crashy").outcome, Outcome::Crash);
    assert_eq!(outcome_of(&report, "sleepy").outcome, Outcome::Timeout);
    assert_eq!(
        outcome_of(&report, "rejected").outcome,
        Outcome::AnalysisFailed
    );
    assert_eq!(outcome_of(&report, "plain").outcome, Outcome::Ok);
    // Degraded success is still success, but carries the label.
    let degraded = outcome_of(&report, "degraded");
    assert_eq!(degraded.outcome, Outcome::Ok);
    assert!(degraded.degraded);
    assert!(!outcome_of(&report, "plain").degraded);
    assert_eq!(report.crashes(), 1);
    assert_eq!(report.timeouts(), 1);
    assert_eq!(report.failed(), 1);
    assert_eq!(report.ok(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rerunning_a_finished_campaign_invokes_nothing() {
    let dir = scratch("resume-idempotent");
    let log = dir.join("invocations.log");
    let cma = fake_cma(&dir, &log);
    let programs = programs(&dir, &["a", "b", "c"]);
    let config = config(&dir, cma, programs);

    let first = run_campaign(&config).unwrap();
    assert_eq!(first.resumed, 0);
    let invocations_after_first = fs::read_to_string(&log).unwrap().lines().count();
    assert_eq!(invocations_after_first, 3);

    // Second run: the journal already records everything, so the fake
    // analyzer must not be invoked at all — and the report is identical.
    let second = run_campaign(&config).unwrap();
    assert_eq!(second.resumed, 3);
    assert_eq!(
        second.to_json().replace("\"resumed\":3", "\"resumed\":0"),
        first.to_json()
    );
    let invocations_after_second = fs::read_to_string(&log).unwrap().lines().count();
    assert_eq!(invocations_after_second, invocations_after_first);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_campaign_killed_mid_run_resumes_where_it_stopped() {
    let dir = scratch("resume-partial");
    let log = dir.join("invocations.log");
    let cma = fake_cma(&dir, &log);
    let programs = programs(&dir, &["done", "pending1", "pending2"]);
    let config = config(&dir, cma, programs.clone());

    // Simulate a campaign killed after one program: its journal holds one
    // complete line plus a torn line from the in-flight write.
    let (journal, _) = Journal::open(&config.journal).unwrap();
    journal
        .record(&JournalEntry {
            path: programs[0].to_string_lossy().into_owned(),
            outcome: Outcome::Ok,
            attempts: 1,
            degraded: false,
            duration_ms: 10,
            detail: String::new(),
        })
        .unwrap();
    drop(journal);
    let mut file = fs::OpenOptions::new()
        .append(true)
        .open(&config.journal)
        .unwrap();
    write!(file, "{{\"path\":\"torn-mid-wr").unwrap();
    drop(file);

    let report = run_campaign(&config).unwrap();
    assert_eq!(report.resumed, 1);
    assert_eq!(report.total, 3);
    assert_eq!(report.entries.len(), 3);
    // Only the two unrecorded programs were actually run.
    let invoked = fs::read_to_string(&log).unwrap();
    assert!(!invoked.contains("done.appl"));
    assert!(invoked.contains("pending1.appl"));
    assert!(invoked.contains("pending2.appl"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn transient_failures_are_retried_and_deterministic_ones_are_not() {
    let dir = scratch("retries");
    let log = dir.join("invocations.log");
    let cma = fake_cma(&dir, &log);
    let programs = programs(&dir, &["flaky", "rejected"]);
    let mut config = config(&dir, cma, programs);
    config.retries = 2;

    let report = run_campaign(&config).unwrap();
    // `flaky` reported budget exhaustion once (a transient timeout), then
    // succeeded on the retry.
    let flaky = outcome_of(&report, "flaky");
    assert_eq!(flaky.outcome, Outcome::Ok);
    assert_eq!(flaky.attempts, 2);
    // A deterministic rejection burns no retries.
    let rejected = outcome_of(&report, "rejected");
    assert_eq!(rejected.outcome, Outcome::AnalysisFailed);
    assert_eq!(rejected.attempts, 1);
    let _ = fs::remove_dir_all(&dir);
}
