//! The running example of the paper (Fig. 2) and the two random-walk variants
//! used for the skewness/kurtosis case study (Tab. 2 / Fig. 11).

use cma_appl::build::*;
use cma_appl::Program;

use crate::{var, Benchmark};

/// The bounded, biased random walk of Fig. 2, implemented with non-tail
/// recursion exactly as in the paper.
///
/// Expected results (Fig. 1(b)): `E[tick] ≤ 2d + 4`,
/// `E[tick²] ≤ 4d² + 22d + 28`, `V[tick] ≤ 22d + 28`.
pub fn rdwalk_program() -> Program {
    ProgramBuilder::new()
        .function_with_precondition(
            "rdwalk",
            if_then(
                lt(v("x"), v("d")),
                seq([
                    sample("t", uniform(-1.0, 2.0)),
                    assign("x", add(v("x"), v("t"))),
                    call("rdwalk"),
                    tick(1.0),
                ]),
            ),
            [lt(v("x"), add(v("d"), cst(2.0))), gt(v("d"), cst(0.0))],
        )
        .main(seq([assign("x", cst(0.0)), call("rdwalk")]))
        .precondition(gt(v("d"), cst(0.0)))
        .build()
        .expect("rdwalk is a valid program")
}

/// The running example as a [`Benchmark`] evaluated at `d = 10`.
pub fn rdwalk() -> Benchmark {
    Benchmark::new(
        "rdwalk",
        "Fig. 2 bounded biased random walk (recursion, uniform(-1,2) steps)",
        rdwalk_program(),
        vec![(var("d"), 10.0), (var("x"), 0.0)],
        2,
    )
}

fn loop_walk(
    name: &str,
    description: &str,
    p_forward: f64,
    forward: f64,
    backward: f64,
    start: f64,
) -> Benchmark {
    // A loop-based random walk toward 0 from `x = start`:
    // with probability p_forward the position decreases by `forward`,
    // otherwise it increases by `backward`; each step costs 1.
    let program = ProgramBuilder::new()
        .main(seq([
            assign("x", cst(start)),
            while_loop(
                gt(v("x"), cst(0.0)),
                seq([
                    if_prob(
                        p_forward,
                        assign("x", sub(v("x"), cst(forward))),
                        assign("x", add(v("x"), cst(backward))),
                    ),
                    tick(1.0),
                ]),
            ),
        ]))
        .build()
        .expect("loop walk is a valid program");
    Benchmark::new(name, description, program, vec![], 4)
}

/// Variant `rdwalk-1` of §6 (Tab. 2): moderate drift, unit steps.
pub fn rdwalk_variant_1() -> Benchmark {
    loop_walk(
        "rdwalk-1",
        "random walk variant 1 of the skewness/kurtosis case study (Tab. 2)",
        0.75,
        1.0,
        1.0,
        10.0,
    )
}

/// Variant `rdwalk-2` of §6 (Tab. 2): same expected runtime as `rdwalk-1` but
/// smaller per-step progress probability and larger steps, hence heavier
/// tails.
pub fn rdwalk_variant_2() -> Benchmark {
    loop_walk(
        "rdwalk-2",
        "random walk variant 2 of the skewness/kurtosis case study (Tab. 2)",
        0.625,
        2.0,
        2.0,
        10.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdwalk_program_shape() {
        let p = rdwalk_program();
        assert!(p.function("rdwalk").is_some());
        assert_eq!(p.precondition().len(), 1);
        assert!(p.vars().len() >= 3);
    }

    #[test]
    fn variants_have_equal_expected_drift() {
        // Both variants make expected progress 0.5 per step from x = 10, so
        // their expected runtimes agree (the paper's premise for Tab. 2).
        let drift1: f64 = 0.75 * 1.0 - 0.25 * 1.0;
        let drift2: f64 = 0.625 * 2.0 - 0.375 * 2.0;
        assert!((drift1 - drift2).abs() < 1e-12);
        assert_eq!(rdwalk_variant_1().degree, 4);
        assert_eq!(rdwalk_variant_2().degree, 4);
    }
}
