//! Benchmarks with non-monotone costs compared against Wang et al. (Tab. 6).
//!
//! These programs mix rewards (negative ticks) and costs, which is exactly the
//! situation where interval bounds — simultaneous upper *and* lower bounds —
//! are required for soundness (§3.3).

use cma_appl::build::*;

use crate::{var, Benchmark};

/// Bitcoin mining: every attempt costs nothing but succeeds with probability
/// 1/4 and then pays a block reward of 6 (modeled as cost −6); the loop runs
/// `x` rounds.  The expected total cost is `−1.5·x`.
pub fn bitcoin_mining() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            ge(v("x"), cst(1.0)),
            seq([
                assign("x", sub(v("x"), cst(1.0))),
                if_prob(0.25, tick(-6.0), skip()),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("bitcoin_mining is valid");
    Benchmark::new(
        "bitcoin-mining",
        "block rewards as negative costs over x rounds; E = −1.5x",
        program,
        vec![(var("x"), 10.0)],
        2,
    )
}

/// Bitcoin mining pool: each of `y` miners runs a geometric number of rounds,
/// collecting rewards; costs are quadratic in `y`.
pub fn bitcoin_pool() -> Benchmark {
    let program = ProgramBuilder::new()
        .function(
            "mine_block",
            seq([
                if_prob(0.5, tick(-3.0), skip()),
                if_prob(0.2, skip(), call("mine_block")),
            ]),
        )
        .main(while_loop(
            ge(v("y"), cst(1.0)),
            seq([assign("y", sub(v("y"), cst(1.0))), call("mine_block")]),
        ))
        .precondition(ge(v("y"), cst(0.0)))
        .build()
        .expect("bitcoin_pool is valid");
    Benchmark::new(
        "bitcoin-pool",
        "pooled mining with geometric rounds per miner; E = −7.5y",
        program,
        vec![(var("y"), 6.0)],
        2,
    )
}

/// The running example of Wang et al.: a loop whose body both charges and
/// refunds cost with equal probability but drifts toward charging.
pub fn running_example() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            gt(v("x"), cst(0.0)),
            seq([
                assign("x", sub(v("x"), cst(1.0))),
                if_prob(2.0 / 3.0, tick(1.0), tick(-1.0)),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("running_example is valid");
    Benchmark::new(
        "wang-running",
        "±1 costs with drift; E = x/3",
        program,
        vec![(var("x"), 9.0)],
        2,
    )
}

/// Random walk with cost proportional to distance covered: the accumulated
/// cost decreases on backward moves.
pub fn signed_random_walk() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            lt(v("x"), v("n")),
            seq([if_prob(
                0.75,
                seq([assign("x", add(v("x"), cst(1.0))), tick(3.0)]),
                seq([assign("x", sub(v("x"), cst(1.0))), tick(-1.0)]),
            )]),
        ))
        .precondition(le(v("x"), v("n")))
        .build()
        .expect("signed_random_walk is valid");
    Benchmark::new(
        "signed-walk",
        "walk toward n charging on forward and refunding on backward moves; E = 4(n−x)",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        2,
    )
}

/// Pollutant disposal: each of `n` days disposes pollutant at unit revenue
/// but pays a penalty on bad days, yielding a mixed charge/refund profile.
/// (The per-day amount is folded into the tick mixture: the cost process
/// only sees the two outcomes, so no auxiliary draw is needed.)
pub fn pollutant_disposal() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            gt(v("n"), cst(0.0)),
            seq([
                assign("n", sub(v("n"), cst(1.0))),
                if_prob(0.5, tick(10.0), tick(-9.0)),
            ]),
        ))
        .precondition(ge(v("n"), cst(0.0)))
        .build()
        .expect("pollutant_disposal is valid");
    Benchmark::new(
        "pollutant",
        "mixed charges and refunds per day; E = 0.5n",
        program,
        vec![(var("n"), 10.0)],
        2,
    )
}

/// Good discount: a store grants discounts (refunds) while stock lasts.
pub fn good_discount() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            ge(v("n"), cst(1.0)),
            seq([
                assign("n", sub(v("n"), cst(1.0))),
                if_prob(0.1, tick(-5.0), tick(0.5)),
            ]),
        ))
        .precondition(ge(v("n"), cst(0.0)))
        .build()
        .expect("good_discount is valid");
    Benchmark::new(
        "good-discount",
        "occasional refunds among small charges; E = −0.05n",
        program,
        vec![(var("n"), 20.0)],
        2,
    )
}

/// All benchmarks of the non-monotone comparison.
pub fn all() -> Vec<Benchmark> {
    vec![
        bitcoin_mining(),
        bitcoin_pool(),
        running_example(),
        signed_random_walk(),
        pollutant_disposal(),
        good_discount(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_sim::{simulate, SimConfig};

    #[test]
    fn suite_is_populated() {
        assert_eq!(all().len(), 6);
    }

    #[test]
    fn expected_costs_match_closed_forms_by_simulation() {
        let cases: Vec<(Benchmark, f64, f64)> = vec![
            (bitcoin_mining(), -15.0, 0.5),
            (bitcoin_pool(), -45.0, 2.0),
            (running_example(), 3.0, 0.2),
            (pollutant_disposal(), 5.0, 0.5),
            (good_discount(), -1.0, 0.3),
        ];
        for (b, expected, tolerance) in cases {
            let stats = simulate(
                &b.program,
                &SimConfig {
                    trials: 30_000,
                    seed: 21,
                    initial: b.initial_state(),
                    ..Default::default()
                },
            );
            assert!(
                (stats.mean() - expected).abs() < tolerance,
                "{}: simulated {} vs expected {expected}",
                b.name,
                stats.mean()
            );
        }
    }

    #[test]
    fn signed_walk_has_negative_excursions() {
        // The accumulated cost can temporarily decrease, so per-trial costs
        // can fall below the expectation of a monotone counter.
        let b = signed_random_walk();
        let stats = simulate(
            &b.program,
            &SimConfig {
                trials: 5_000,
                seed: 5,
                initial: b.initial_state(),
                ..Default::default()
            },
        );
        assert!(stats.min() < stats.mean());
        assert!(stats.mean() > 0.0);
    }
}
