//! Synthetic scalability benchmarks (Fig. 10): families of programs whose
//! size grows with a parameter `N`, used to measure how the analysis time
//! scales with the number of (recursive) functions.

use cma_appl::build::*;

use crate::{var, Benchmark};

/// Fig. 10(a): a coupon-collector with `N` coupons implemented as `N`
/// tail-recursive functions, one per collection state.
pub fn coupon_chain(n: usize) -> Benchmark {
    assert!(n >= 1, "need at least one coupon");
    let mut builder = ProgramBuilder::new();
    for i in 0..n {
        let p_fresh = (n - i) as f64 / n as f64;
        let next = if i + 1 == n {
            skip()
        } else {
            call(&format!("phase{}", i + 1))
        };
        builder = builder.function(
            &format!("phase{i}"),
            seq([
                tick(1.0),
                if_prob(p_fresh, next, call(&format!("phase{i}"))),
            ]),
        );
    }
    let program = builder
        .main(call("phase0"))
        .build()
        .expect("coupon chain is valid");
    Benchmark::new(
        format!("coupon-chain-{n}"),
        format!(
            "coupon collector with {n} coupons, one tail-recursive function per state (Fig. 10a)"
        ),
        program,
        vec![],
        4,
    )
}

/// Fig. 10(b): `N` consecutive bounded random walks, each a non-tail-recursive
/// function; walk `i+1` starts where walk `i` stopped (shared position
/// variable), and the hand-off call is in tail position.
pub fn random_walk_chain(n: usize) -> Benchmark {
    assert!(n >= 1, "need at least one walk");
    let mut builder = ProgramBuilder::new();
    for i in 0..n {
        let walk = format!("walk{i}");
        let recursive_step = seq([
            if_prob(
                0.75,
                assign("x", sub(v("x"), cst(1.0))),
                assign("x", add(v("x"), cst(1.0))),
            ),
            call(&walk),
            tick(1.0),
        ]);
        let handoff = if i + 1 == n {
            skip()
        } else {
            seq([assign("x", cst(4.0)), call(&format!("walk{}", i + 1))])
        };
        builder = builder.function_with_precondition(
            &walk,
            if_then_else(gt(v("x"), cst(0.0)), recursive_step, handoff),
            [ge(v("x"), cst(0.0))],
        );
    }
    let program = builder
        .main(seq([assign("x", cst(4.0)), call("walk0")]))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("random walk chain is valid");
    Benchmark::new(
        format!("walk-chain-{n}"),
        format!("{n} chained bounded random walks, non-tail recursion per walk (Fig. 10b)"),
        program,
        vec![(var("x"), 4.0)],
        2,
    )
}

/// The sweep of chain lengths used by the scalability harness.
pub fn sweep(max_n: usize, step: usize) -> Vec<usize> {
    (1..=max_n).step_by(step.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_sim::{simulate, SimConfig};

    #[test]
    fn chains_grow_linearly_in_size() {
        let small = coupon_chain(5);
        let large = coupon_chain(20);
        assert!(large.program.size() > 3 * small.program.size());
        let w_small = random_walk_chain(3);
        let w_large = random_walk_chain(12);
        assert!(w_large.program.size() > 3 * w_small.program.size());
    }

    #[test]
    fn coupon_chain_expected_cost_is_harmonic() {
        let b = coupon_chain(4);
        let stats = simulate(
            &b.program,
            &SimConfig {
                trials: 20_000,
                seed: 13,
                ..Default::default()
            },
        );
        let expected = 4.0 * (1.0 + 0.5 + 1.0 / 3.0 + 0.25);
        assert!((stats.mean() - expected).abs() < 0.15);
    }

    #[test]
    fn walk_chain_cost_scales_with_length() {
        let short = random_walk_chain(1);
        let long = random_walk_chain(4);
        let config = |b: &Benchmark| SimConfig {
            trials: 4_000,
            seed: 17,
            initial: b.initial_state(),
            ..Default::default()
        };
        let cost_short = simulate(&short.program, &config(&short)).mean();
        let cost_long = simulate(&long.program, &config(&long)).mean();
        assert!(cost_long > 3.0 * cost_short);
    }

    #[test]
    fn sweep_generates_requested_points() {
        assert_eq!(sweep(10, 3), vec![1, 4, 7, 10]);
        assert_eq!(sweep(2, 0), vec![1, 2]);
    }
}
