//! The benchmark programs of the paper's evaluation (§6 and appendices),
//! expressed with the `cma-appl` builder DSL.
//!
//! Every benchmark carries the metadata the harness needs to reproduce the
//! corresponding table row or figure series: the program, the valuation at
//! which bounds are reported (and at which the LP objective minimizes
//! imprecision), the target moment degree, and the initial valuation used by
//! the Monte-Carlo cross-check.
//!
//! | Module | Paper experiment |
//! |---|---|
//! | [`running`]     | Fig. 1/2/3/7 running example, Tab. 2 / Fig. 11 variants |
//! | [`kura`]        | Tab. 1/3/4, Fig. 9/15 — comparison with Kura et al. |
//! | [`absynth`]     | Tab. 5 — expected monotone costs (Absynth suite subset) |
//! | [`nonmonotone`] | Tab. 6 — non-monotone expected costs (Wang et al. suite) |
//! | [`synthetic`]   | Fig. 10 — scalability chains |
//! | [`timing`]      | Appendix I — timing-attack case study |

pub mod absynth;
pub mod kura;
pub mod nonmonotone;
pub mod running;
pub mod synthetic;
pub mod timing;

use cma_appl::Program;
use cma_semiring::poly::Var;

/// A benchmark program plus the metadata needed to reproduce the paper's
/// experiment for it.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short identifier used in tables (e.g. `"(2-1)"` or `"coupon"`).
    pub name: String,
    /// The suite the benchmark belongs to (`"running"`, `"kura"`, …); empty
    /// for ad-hoc benchmarks.  Suites namespace the ids: two suites may both
    /// have an `rdwalk`, distinguished as `running/rdwalk` and
    /// `absynth/rdwalk` (see [`Benchmark::qualified_name`]).
    pub suite: String,
    /// What the benchmark models and which experiment uses it.
    pub description: String,
    /// The program itself.
    pub program: Program,
    /// Valuation of symbolic parameters at which bounds are evaluated and at
    /// which the analysis minimizes imprecision.
    pub valuation: Vec<(Var, f64)>,
    /// Target moment degree for the experiment (2 or 4 in the paper).
    pub degree: usize,
    /// Template variables to use (None = all program variables).
    pub template_vars: Option<Vec<Var>>,
}

impl Benchmark {
    /// Builds a benchmark with the given data.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        program: Program,
        valuation: Vec<(Var, f64)>,
        degree: usize,
    ) -> Self {
        Benchmark {
            name: name.into(),
            suite: String::new(),
            description: description.into(),
            program,
            valuation,
            degree,
            template_vars: None,
        }
    }

    /// Restricts template variables.
    pub fn with_template_vars(mut self, vars: Vec<Var>) -> Self {
        self.template_vars = Some(vars);
        self
    }

    /// Tags the benchmark as belonging to a suite (namespacing its id).
    pub fn in_suite(mut self, suite: impl Into<String>) -> Self {
        self.suite = suite.into();
        self
    }

    /// The namespaced id: `suite/name`, or the bare name for suite-less
    /// benchmarks.
    pub fn qualified_name(&self) -> String {
        if self.suite.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.suite, self.name)
        }
    }

    /// Whether `id` selects this benchmark: either the qualified id or the
    /// bare name (bare names can be ambiguous across suites — callers should
    /// check how many benchmarks match).
    pub fn matches_id(&self, id: &str) -> bool {
        self.name == id || self.qualified_name() == id
    }

    /// The valuation as `(name, value)` pairs for the simulator's initial
    /// state.
    pub fn initial_state(&self) -> Vec<(Var, f64)> {
        self.valuation.clone()
    }
}

/// Convenience: a variable by name.
pub fn var(name: &str) -> Var {
    Var::new(name)
}

/// All benchmarks used by the moment-bound tables (Tab. 1/3/4, Fig. 9),
/// namespaced under `kura/`.
pub fn kura_suite() -> Vec<Benchmark> {
    kura::all()
        .into_iter()
        .map(|b| b.in_suite("kura"))
        .collect()
}

/// All benchmarks of the expected-cost comparison (Tab. 5), namespaced under
/// `absynth/`.
pub fn absynth_suite() -> Vec<Benchmark> {
    absynth::all()
        .into_iter()
        .map(|b| b.in_suite("absynth"))
        .collect()
}

/// All benchmarks of the non-monotone comparison (Tab. 6), namespaced under
/// `nonmonotone/`.
pub fn nonmonotone_suite() -> Vec<Benchmark> {
    nonmonotone::all()
        .into_iter()
        .map(|b| b.in_suite("nonmonotone"))
        .collect()
}

/// Every named benchmark of the paper's evaluation, across all suites, each
/// tagged with its suite so ids are unambiguous (`running/rdwalk` vs
/// `absynth/rdwalk`).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut all = kura_suite();
    all.extend(absynth_suite());
    all.extend(nonmonotone_suite());
    all.push(running::rdwalk().in_suite("running"));
    all.push(running::rdwalk_variant_1().in_suite("running"));
    all.push(running::rdwalk_variant_2().in_suite("running"));
    all.push(timing::password_checker(8).in_suite("timing"));
    all.push(synthetic::coupon_chain(5).in_suite("synthetic"));
    all.push(synthetic::random_walk_chain(5).in_suite("synthetic"));
    all
}

/// The benchmarks selected by `id`: a qualified id (`running/rdwalk`)
/// matches exactly one benchmark; a bare name matches every suite that has
/// it (callers decide whether ambiguity is an error).
pub fn find_benchmarks(id: &str) -> Vec<Benchmark> {
    let all = all_benchmarks();
    // An exact qualified match wins outright.
    if let Some(b) = all.iter().find(|b| b.qualified_name() == id) {
        return vec![b.clone()];
    }
    all.into_iter().filter(|b| b.matches_id(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_build_valid_programs() {
        let mut total = 0;
        for b in kura_suite()
            .into_iter()
            .chain(absynth_suite())
            .chain(nonmonotone_suite())
            .chain([
                running::rdwalk(),
                running::rdwalk_variant_1(),
                running::rdwalk_variant_2(),
            ])
            .chain([timing::password_checker(8)])
            .chain([synthetic::coupon_chain(5), synthetic::random_walk_chain(5)])
        {
            assert!(!b.name.is_empty());
            assert!(!b.description.is_empty());
            assert!(b.degree >= 1);
            assert!(b.program.size() > 0);
            total += 1;
        }
        assert!(total >= 20, "expected a sizable suite, got {total}");
    }

    #[test]
    fn benchmark_metadata_helpers() {
        let b = running::rdwalk().with_template_vars(vec![var("x"), var("d")]);
        assert_eq!(b.template_vars.as_ref().unwrap().len(), 2);
        assert_eq!(b.initial_state(), b.valuation);
        assert_eq!(b.qualified_name(), "rdwalk"); // suite-less: bare name
        let tagged = b.in_suite("running");
        assert_eq!(tagged.qualified_name(), "running/rdwalk");
        assert!(tagged.matches_id("rdwalk"));
        assert!(tagged.matches_id("running/rdwalk"));
        assert!(!tagged.matches_id("absynth/rdwalk"));
    }

    #[test]
    fn qualified_ids_are_unique_and_resolve_collisions() {
        let all = all_benchmarks();
        let mut ids: Vec<String> = all.iter().map(|b| b.qualified_name()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "qualified ids must be unique");

        // The PR 1 collision: two suites both ship an `rdwalk`.
        let bare = find_benchmarks("rdwalk");
        assert!(
            bare.len() >= 2,
            "expected the rdwalk collision, got {bare:?}"
        );
        let qualified = find_benchmarks("running/rdwalk");
        assert_eq!(qualified.len(), 1);
        assert_eq!(qualified[0].suite, "running");
        let loop_form = find_benchmarks("absynth/rdwalk");
        assert_eq!(loop_form.len(), 1);
        assert_eq!(loop_form[0].suite, "absynth");

        // Unambiguous bare names still work.
        let unique = find_benchmarks("(1-1)");
        assert_eq!(unique.len(), 1);
        assert!(find_benchmarks("no-such-benchmark").is_empty());
    }
}
