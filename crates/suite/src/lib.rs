//! The benchmark programs of the paper's evaluation (§6 and appendices),
//! expressed with the `cma-appl` builder DSL.
//!
//! Every benchmark carries the metadata the harness needs to reproduce the
//! corresponding table row or figure series: the program, the valuation at
//! which bounds are reported (and at which the LP objective minimizes
//! imprecision), the target moment degree, and the initial valuation used by
//! the Monte-Carlo cross-check.
//!
//! | Module | Paper experiment |
//! |---|---|
//! | [`running`]     | Fig. 1/2/3/7 running example, Tab. 2 / Fig. 11 variants |
//! | [`kura`]        | Tab. 1/3/4, Fig. 9/15 — comparison with Kura et al. |
//! | [`absynth`]     | Tab. 5 — expected monotone costs (Absynth suite subset) |
//! | [`nonmonotone`] | Tab. 6 — non-monotone expected costs (Wang et al. suite) |
//! | [`synthetic`]   | Fig. 10 — scalability chains |
//! | [`timing`]      | Appendix I — timing-attack case study |

pub mod absynth;
pub mod kura;
pub mod nonmonotone;
pub mod running;
pub mod synthetic;
pub mod timing;

use cma_appl::Program;
use cma_semiring::poly::Var;

/// A benchmark program plus the metadata needed to reproduce the paper's
/// experiment for it.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short identifier used in tables (e.g. `"(2-1)"` or `"coupon"`).
    pub name: String,
    /// What the benchmark models and which experiment uses it.
    pub description: String,
    /// The program itself.
    pub program: Program,
    /// Valuation of symbolic parameters at which bounds are evaluated and at
    /// which the analysis minimizes imprecision.
    pub valuation: Vec<(Var, f64)>,
    /// Target moment degree for the experiment (2 or 4 in the paper).
    pub degree: usize,
    /// Template variables to use (None = all program variables).
    pub template_vars: Option<Vec<Var>>,
}

impl Benchmark {
    /// Builds a benchmark with the given data.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        program: Program,
        valuation: Vec<(Var, f64)>,
        degree: usize,
    ) -> Self {
        Benchmark {
            name: name.into(),
            description: description.into(),
            program,
            valuation,
            degree,
            template_vars: None,
        }
    }

    /// Restricts template variables.
    pub fn with_template_vars(mut self, vars: Vec<Var>) -> Self {
        self.template_vars = Some(vars);
        self
    }

    /// The valuation as `(name, value)` pairs for the simulator's initial
    /// state.
    pub fn initial_state(&self) -> Vec<(Var, f64)> {
        self.valuation.clone()
    }
}

/// Convenience: a variable by name.
pub fn var(name: &str) -> Var {
    Var::new(name)
}

/// All benchmarks used by the moment-bound tables (Tab. 1/3/4, Fig. 9).
pub fn kura_suite() -> Vec<Benchmark> {
    kura::all()
}

/// All benchmarks of the expected-cost comparison (Tab. 5).
pub fn absynth_suite() -> Vec<Benchmark> {
    absynth::all()
}

/// All benchmarks of the non-monotone comparison (Tab. 6).
pub fn nonmonotone_suite() -> Vec<Benchmark> {
    nonmonotone::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_build_valid_programs() {
        let mut total = 0;
        for b in kura_suite()
            .into_iter()
            .chain(absynth_suite())
            .chain(nonmonotone_suite())
            .chain([
                running::rdwalk(),
                running::rdwalk_variant_1(),
                running::rdwalk_variant_2(),
            ])
            .chain([timing::password_checker(8)])
            .chain([synthetic::coupon_chain(5), synthetic::random_walk_chain(5)])
        {
            assert!(!b.name.is_empty());
            assert!(!b.description.is_empty());
            assert!(b.degree >= 1);
            assert!(b.program.size() > 0);
            total += 1;
        }
        assert!(total >= 20, "expected a sizable suite, got {total}");
    }

    #[test]
    fn benchmark_metadata_helpers() {
        let b = running::rdwalk().with_template_vars(vec![var("x"), var("d")]);
        assert_eq!(b.template_vars.as_ref().unwrap().len(), 2);
        assert_eq!(b.initial_state(), b.valuation);
    }
}
