//! The timing-attack case study of Appendix I.
//!
//! The DARPA STAC password checker compares a guess against a secret bit by
//! bit, adding random delays as a (flawed) countermeasure.  The attack infers
//! one secret bit at a time from the *running time* of the comparison; its
//! success probability is bounded using the mean and **variance** of the
//! running time under the two hypotheses (`secret[i] = guess[i]` vs. not),
//! which is exactly where central moments beat raw moments.
//!
//! Appl has no arrays, so the two hypotheses are modeled as two programs over
//! the number of *matching* bits `eq` and *mismatching* bits `neq` that the
//! comparison still has to process: the per-bit cost is `2` plus a
//! geometrically-distributed number of delay rounds costing `5` (matching
//! bits) or `10` (mismatching bits), mirroring the cost model of Fig. 16(b).

use cma_appl::build::*;
use cma_appl::{Program, Stmt};

use crate::Benchmark;

fn per_bit_cost(delay_cost: f64) -> Stmt {
    // tick(2) for the outer-loop bookkeeping, then a geometric number of
    // delay rounds (continue with probability 1/2 each time).
    seq([
        tick(2.0),
        assign("again", cst(1.0)),
        while_loop(
            ge(v("again"), cst(1.0)),
            seq([
                tick(delay_cost),
                if_prob(0.5, assign("again", cst(0.0)), skip()),
            ]),
        ),
    ])
}

/// The comparison loop when the remaining `eq` bits all match the guess.
pub fn compare_matching(bits: u32) -> Program {
    ProgramBuilder::new()
        .main(seq([
            assign("eq", cst(bits as f64)),
            while_loop(
                gt(v("eq"), cst(0.0)),
                seq([assign("eq", sub(v("eq"), cst(1.0))), per_bit_cost(5.0)]),
            ),
        ]))
        .precondition(ge(v("eq"), cst(0.0)))
        .build()
        .expect("compare_matching is valid")
}

/// The comparison loop when the remaining `neq` bits all mismatch the guess
/// (each costs the more expensive branch of Fig. 16(b)).
pub fn compare_mismatching(bits: u32) -> Program {
    ProgramBuilder::new()
        .main(seq([
            assign("neq", cst(bits as f64)),
            while_loop(
                gt(v("neq"), cst(0.0)),
                seq([assign("neq", sub(v("neq"), cst(1.0))), per_bit_cost(10.0)]),
            ),
        ]))
        .precondition(ge(v("neq"), cst(0.0)))
        .build()
        .expect("compare_mismatching is valid")
}

/// The matching-bits hypothesis as a [`Benchmark`].
pub fn password_checker(bits: u32) -> Benchmark {
    Benchmark::new(
        format!("timing-eq-{bits}"),
        "password checker running time when the guessed bit is correct (Appendix I)",
        compare_matching(bits),
        vec![],
        2,
    )
}

/// The mismatching-bits hypothesis as a [`Benchmark`].
pub fn password_checker_mismatch(bits: u32) -> Benchmark {
    Benchmark::new(
        format!("timing-neq-{bits}"),
        "password checker running time when the guessed bit is wrong (Appendix I)",
        compare_mismatching(bits),
        vec![],
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_sim::{simulate, SimConfig};

    #[test]
    fn per_bit_expected_costs_differ_between_hypotheses() {
        // Matching bits: 2 + 5·E[rounds] = 2 + 10 = 12 per bit.
        // Mismatching bits: 2 + 10·E[rounds] = 22 per bit.
        let config = SimConfig {
            trials: 20_000,
            seed: 3,
            ..Default::default()
        };
        let eq = simulate(&compare_matching(4), &config);
        let neq = simulate(&compare_mismatching(4), &config);
        assert!((eq.mean() - 48.0).abs() < 1.0);
        assert!((neq.mean() - 88.0).abs() < 1.5);
        assert!(neq.mean() > eq.mean() + 30.0);
    }

    #[test]
    fn benchmarks_expose_both_hypotheses() {
        assert!(password_checker(8).name.contains("eq"));
        assert!(password_checker_mismatch(8).name.contains("neq"));
    }
}
