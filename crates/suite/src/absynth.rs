//! A representative subset of the Absynth benchmark suite used in Tab. 5:
//! expected-cost bounds for programs with (mostly monotone) costs.
//!
//! The paper's table lists ~40 small loop programs; we reproduce the
//! structurally distinct families (probabilistic increments, continuous
//! steps, sequenced and nested loops, probabilistic termination, monotone
//! resource counters).  Parameters follow the published bounds where the
//! program shape determines them.

use cma_appl::build::*;
use cma_appl::{Program, Stmt};

use crate::{var, Benchmark};

fn loop_program(precondition: Vec<cma_appl::Cond>, body: Stmt) -> Program {
    let mut builder = ProgramBuilder::new().main(body);
    for c in precondition {
        builder = builder.precondition(c);
    }
    builder.build().expect("absynth benchmark is valid")
}

/// `ber`: increment `x` with probability 1/2 per iteration until it reaches
/// `n`; expected cost `2(n − x)`.
pub fn ber() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n"))],
        while_loop(
            lt(v("x"), v("n")),
            seq([
                if_prob(0.5, assign("x", add(v("x"), cst(1.0))), skip()),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "ber",
        "Bernoulli increments until x reaches n; E ≤ 2(n−x)",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `bin`: a binomial-style countdown: each iteration decrements `n` with
/// probability 1/10 and always costs 1; expected cost `10·n`.
pub fn bin() -> Benchmark {
    let program = loop_program(
        vec![ge(v("n"), cst(0.0))],
        while_loop(
            gt(v("n"), cst(0.0)),
            seq([
                if_prob(0.1, assign("n", sub(v("n"), cst(1.0))), skip()),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "bin",
        "slow probabilistic countdown; E ≤ 10n",
        program,
        vec![(var("n"), 10.0)],
        1,
    )
}

/// `geo`: a geometric loop that stops with probability 1/5 per iteration;
/// expected cost 5.
pub fn geo() -> Benchmark {
    let program = loop_program(
        vec![],
        seq([
            assign("stop", cst(0.0)),
            while_loop(
                lt(v("stop"), cst(0.5)),
                seq([if_prob(0.2, assign("stop", cst(1.0)), skip()), tick(1.0)]),
            ),
        ]),
    );
    Benchmark::new(
        "geo",
        "geometric loop, stop probability 1/5; E ≤ 5",
        program,
        vec![],
        1,
    )
}

/// `hyper`: increments drawn uniformly from {0,…,4}; expected cost `5(n−x)/2`
/// (cost 5 per iteration, mean increment 2).
pub fn hyper() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n"))],
        while_loop(
            lt(v("x"), v("n")),
            seq([
                sample("t", unif_int(0, 4)),
                assign("x", add(v("x"), v("t"))),
                tick(5.0),
            ]),
        ),
    );
    Benchmark::new(
        "hyper",
        "uniform integer increments, cost 5 per draw",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `linear01`: probabilistic decrease by 2 or 1; expected cost `0.6x`.
pub fn linear01() -> Benchmark {
    let program = loop_program(
        vec![ge(v("x"), cst(0.0))],
        while_loop(
            ge(v("x"), cst(2.0)),
            seq([
                if_prob(
                    1.0 / 3.0,
                    assign("x", sub(v("x"), cst(1.0))),
                    assign("x", sub(v("x"), cst(2.0))),
                ),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "linear01",
        "probabilistic decrease by 1 or 2; E ≤ 0.6x",
        program,
        vec![(var("x"), 10.0)],
        1,
    )
}

/// `prdwalk`: random walk with uniform forward jumps; cost 1 per step.
pub fn prdwalk() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n"))],
        while_loop(
            lt(v("x"), v("n")),
            seq([
                sample("t", unif_int(0, 3)),
                assign("x", add(v("x"), v("t"))),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "prdwalk",
        "forward jumps uniform on {0..3}; E ≤ (n−x+3)·2/3",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `rdwalk` (loop form): the classic ±1 walk with downward drift.
pub fn rdwalk_loop() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n"))],
        while_loop(
            lt(v("x"), v("n")),
            seq([
                if_prob(
                    0.75,
                    assign("x", add(v("x"), cst(1.0))),
                    assign("x", sub(v("x"), cst(1.0))),
                ),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "rdwalk",
        "±1 walk with upward drift toward n; E ≤ 2(n−x+1)",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `sprdwalk`: steps of stochastic size 0 or 1.
pub fn sprdwalk() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n"))],
        while_loop(
            lt(v("x"), v("n")),
            seq([
                sample("t", bernoulli(0.5)),
                assign("x", add(v("x"), v("t"))),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "sprdwalk",
        "Bernoulli steps toward n; E ≤ 2(n−x)",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `rdseql`: two sequenced probabilistic loops.
pub fn rdseql() -> Benchmark {
    let program = loop_program(
        vec![ge(v("x"), cst(0.0)), ge(v("y"), cst(0.0))],
        seq([
            while_loop(
                gt(v("x"), cst(0.0)),
                seq([
                    if_prob(0.5, assign("x", sub(v("x"), cst(1.0))), skip()),
                    tick(1.0),
                ]),
            ),
            while_loop(
                gt(v("y"), cst(0.0)),
                seq([assign("y", sub(v("y"), cst(1.0))), tick(1.0)]),
            ),
        ]),
    );
    Benchmark::new(
        "rdseql",
        "sequenced probabilistic then deterministic loops; E ≤ 2x + y",
        program,
        vec![(var("x"), 10.0), (var("y"), 10.0)],
        1,
    )
}

/// `rdspeed`: two counters racing with different speeds.
pub fn rdspeed() -> Benchmark {
    let program = loop_program(
        vec![le(v("x"), v("n")), le(v("y"), v("m"))],
        seq([
            while_loop(
                lt(v("x"), v("n")),
                seq([
                    if_prob(
                        0.75,
                        assign("x", add(v("x"), cst(2.0))),
                        assign("x", add(v("x"), cst(1.0))),
                    ),
                    tick(1.0),
                ]),
            ),
            while_loop(
                lt(v("y"), v("m")),
                seq([
                    if_prob(0.5, assign("y", add(v("y"), cst(1.0))), skip()),
                    tick(1.0),
                ]),
            ),
        ]),
    );
    Benchmark::new(
        "rdspeed",
        "two racing counters; E ≤ 2(m−y) + 0.57(n−x)",
        program,
        vec![
            (var("n"), 10.0),
            (var("m"), 10.0),
            (var("x"), 0.0),
            (var("y"), 0.0),
        ],
        1,
    )
}

/// `race`: a hare-and-tortoise race (probabilistic catch-up).
pub fn race() -> Benchmark {
    let program = loop_program(
        vec![le(v("h"), v("t"))],
        while_loop(
            le(v("h"), v("t")),
            seq([
                assign("t", add(v("t"), cst(1.0))),
                if_prob(
                    0.5,
                    seq([
                        sample("s", unif_int(0, 5)),
                        assign("h", add(v("h"), v("s"))),
                    ]),
                    skip(),
                ),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "race",
        "hare catches tortoise; E ≤ 0.67(t−h+9)",
        program,
        vec![(var("h"), 0.0), (var("t"), 10.0)],
        1,
    )
}

/// `coupon`: the 5-coupon collector of the Absynth suite.
pub fn coupon() -> Benchmark {
    let program = loop_program(
        vec![],
        seq([
            assign("c", cst(0.0)),
            while_loop(
                lt(v("c"), cst(1.0)),
                seq([if_prob(0.2, assign("c", cst(1.0)), skip()), tick(1.0)]),
            ),
            while_loop(
                lt(v("c"), cst(2.0)),
                seq([if_prob(0.4, assign("c", cst(2.0)), skip()), tick(1.0)]),
            ),
            while_loop(
                lt(v("c"), cst(3.0)),
                seq([if_prob(0.6, assign("c", cst(3.0)), skip()), tick(1.0)]),
            ),
            while_loop(
                lt(v("c"), cst(4.0)),
                seq([if_prob(0.8, assign("c", cst(4.0)), skip()), tick(1.0)]),
            ),
            tick(1.0),
        ]),
    );
    Benchmark::new(
        "coupon",
        "5-coupon collector as sequenced phases; E ≈ 11.42",
        program,
        vec![],
        1,
    )
}

/// `cowboy_duel`: a duel won with probability 1/3 per round by the shooter.
pub fn cowboy_duel() -> Benchmark {
    let program = ProgramBuilder::new()
        .function(
            "duel",
            if_prob(
                1.0 / 3.0,
                tick(1.0),
                seq([tick(1.0), if_prob(0.5, skip(), call("duel"))]),
            ),
        )
        .main(call("duel"))
        .build()
        .expect("cowboy_duel is valid");
    Benchmark::new(
        "cowboy_duel",
        "alternating duel; E ≤ 1.5 rounds",
        program,
        vec![],
        1,
    )
}

/// `fcall`: cost hidden behind a helper function call.
pub fn fcall() -> Benchmark {
    let program = ProgramBuilder::new()
        .function(
            "step",
            seq([
                if_prob(0.5, assign("x", add(v("x"), cst(1.0))), skip()),
                tick(1.0),
            ]),
        )
        .function_with_precondition(
            "outer",
            if_then(lt(v("x"), v("n")), seq([call("step"), call("outer")])),
            [le(v("x"), add(v("n"), cst(1.0)))],
        )
        .main(call("outer"))
        .precondition(le(v("x"), v("n")))
        .build()
        .expect("fcall is valid");
    Benchmark::new(
        "fcall",
        "loop via function calls; E ≤ 2(n−x)",
        program,
        vec![(var("n"), 10.0), (var("x"), 0.0)],
        1,
    )
}

/// `condand`: cost proportional to the smaller of two counters.
pub fn condand() -> Benchmark {
    let program = loop_program(
        vec![ge(v("n"), cst(0.0)), ge(v("m"), cst(0.0))],
        while_loop(
            and(gt(v("n"), cst(0.0)), gt(v("m"), cst(0.0))),
            seq([
                if_prob(
                    0.5,
                    assign("n", sub(v("n"), cst(1.0))),
                    assign("m", sub(v("m"), cst(1.0))),
                ),
                tick(1.0),
            ]),
        ),
    );
    Benchmark::new(
        "condand",
        "terminates when either counter hits 0; E ≤ 2·min(n,m)-ish",
        program,
        vec![(var("n"), 8.0), (var("m"), 8.0)],
        1,
    )
}

/// `C4B_t13`: two phases with probabilistic transfer between counters.
pub fn c4b_t13() -> Benchmark {
    let program = loop_program(
        vec![ge(v("x"), cst(0.0)), ge(v("y"), cst(0.0))],
        seq([
            while_loop(
                gt(v("x"), cst(0.0)),
                seq([
                    assign("x", sub(v("x"), cst(1.0))),
                    if_prob(0.25, assign("y", add(v("y"), cst(1.0))), skip()),
                    tick(1.0),
                ]),
            ),
            while_loop(
                gt(v("y"), cst(0.0)),
                seq([assign("y", sub(v("y"), cst(1.0))), tick(1.0)]),
            ),
        ]),
    );
    Benchmark::new(
        "C4B_t13",
        "transfer between counters then drain; E ≤ 1.25x + y",
        program,
        vec![(var("x"), 10.0), (var("y"), 10.0)],
        1,
    )
}

/// All benchmarks of the Absynth comparison subset.
pub fn all() -> Vec<Benchmark> {
    vec![
        ber(),
        bin(),
        geo(),
        hyper(),
        linear01(),
        prdwalk(),
        rdwalk_loop(),
        sprdwalk(),
        rdseql(),
        rdspeed(),
        race(),
        coupon(),
        cowboy_duel(),
        fcall(),
        condand(),
        c4b_t13(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_sim::{simulate, SimConfig};

    #[test]
    fn suite_is_populated_and_valid() {
        let suite = all();
        assert_eq!(suite.len(), 16);
        for b in &suite {
            assert!(b.program.size() > 0);
        }
    }

    #[test]
    fn expected_costs_match_closed_forms_by_simulation() {
        // Spot-check a few closed-form expectations by simulation.
        let cases: Vec<(Benchmark, f64, f64)> = vec![
            (ber(), 20.0, 0.6),
            (bin(), 100.0, 3.5),
            (geo(), 5.0, 0.2),
            (sprdwalk(), 20.0, 0.6),
            // From x = 10 the loop stops once x drops below 2, slightly before
            // the asymptotic 0.6·x estimate; the simulated mean is ≈ 5.65.
            (linear01(), 5.65, 0.3),
        ];
        for (b, expected, tolerance) in cases {
            let stats = simulate(
                &b.program,
                &SimConfig {
                    trials: 20_000,
                    seed: 9,
                    initial: b.initial_state(),
                    ..Default::default()
                },
            );
            assert!(
                (stats.mean() - expected).abs() < tolerance,
                "{}: simulated {} vs expected {expected}",
                b.name,
                stats.mean()
            );
        }
    }
}
