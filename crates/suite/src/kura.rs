//! The benchmark programs compared against Kura et al. (Tab. 1/3/4, Fig. 9):
//! two coupon-collector problems and five random walks.
//!
//! The original programs run on the authors' testbed with their exact cost
//! model; we reproduce the program *structures* (tail-recursive collection
//! phases, integer/real-valued walks, one- and two-dimensional state) so the
//! qualitative comparison — central-moment tail bounds vs. raw-moment tail
//! bounds — is preserved.  Program (2-3) replaces the paper's demonic
//! nondeterminism by a probabilistic choice (see `DESIGN.md`).

use cma_appl::build::*;

use crate::{var, Benchmark};

/// (1-1): coupon collector with 2 coupons, one tail-recursive function per
/// collection phase; each draw costs 1.
pub fn coupon_two() -> Benchmark {
    let program = ProgramBuilder::new()
        // Phase 0: the first draw always yields a fresh coupon.
        .function("phase0", seq([tick(1.0), call("phase1")]))
        // Phase 1: a draw yields the missing coupon with probability 1/2.
        .function(
            "phase1",
            seq([tick(1.0), if_prob(0.5, skip(), call("phase1"))]),
        )
        .main(call("phase0"))
        .build()
        .expect("coupon_two is valid");
    Benchmark::new(
        "(1-1)",
        "coupon collector, 2 coupons (tail recursion per phase)",
        program,
        vec![],
        4,
    )
}

/// (1-2): coupon collector with 4 coupons.
pub fn coupon_four() -> Benchmark {
    let mut builder = ProgramBuilder::new();
    // Phase i has collected i coupons; a draw is fresh with prob (4-i)/4.
    for i in 0..4u32 {
        let p_fresh = (4.0 - i as f64) / 4.0;
        let next = if i == 3 {
            skip()
        } else {
            call(&format!("phase{}", i + 1))
        };
        builder = builder.function(
            &format!("phase{i}"),
            seq([
                tick(1.0),
                if_prob(p_fresh, next, call(&format!("phase{i}"))),
            ]),
        );
    }
    let program = builder
        .main(call("phase0"))
        .build()
        .expect("coupon_four is valid");
    Benchmark::new(
        "(1-2)",
        "coupon collector, 4 coupons (tail recursion per phase)",
        program,
        vec![],
        4,
    )
}

/// (2-1): integer-valued one-dimensional random walk toward the origin with a
/// downward drift; each step costs 1.
pub fn random_walk_int() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            gt(v("x"), cst(0.0)),
            seq([
                if_prob(
                    0.75,
                    assign("x", sub(v("x"), cst(1.0))),
                    assign("x", add(v("x"), cst(1.0))),
                ),
                tick(1.0),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("random_walk_int is valid");
    Benchmark::new(
        "(2-1)",
        "integer-valued 1D random walk, P[step −1] = 3/4",
        program,
        vec![(var("x"), 10.0)],
        4,
    )
}

/// (2-2): real-valued one-dimensional random walk with continuous sampling.
pub fn random_walk_real() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            gt(v("x"), cst(0.0)),
            seq([
                sample("t", uniform(-1.5, 0.5)),
                assign("x", add(v("x"), v("t"))),
                tick(1.0),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("random_walk_real is valid");
    Benchmark::new(
        "(2-2)",
        "real-valued 1D random walk, uniform(−1.5, 0.5) increments",
        program,
        vec![(var("x"), 10.0)],
        4,
    )
}

/// (2-3): the paper's walk with adversarial nondeterminism; the demonic choice
/// between two step distributions is replaced by a probabilistic mixture.
pub fn random_walk_mixed() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            gt(v("x"), cst(0.0)),
            seq([
                if_prob(
                    0.5,
                    sample("t", uniform(-2.0, 1.0)),
                    sample("t", uniform(-1.0, 0.5)),
                ),
                assign("x", add(v("x"), v("t"))),
                tick(1.0),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .build()
        .expect("random_walk_mixed is valid");
    Benchmark::new(
        "(2-3)",
        "1D random walk with a mixture of step distributions (probabilistic stand-in for nondeterminism)",
        program,
        vec![(var("x"), 10.0)],
        4,
    )
}

/// (2-4): two-dimensional integer random walk; terminates when either
/// coordinate reaches 0.
pub fn random_walk_2d() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            and(gt(v("x"), cst(0.0)), gt(v("y"), cst(0.0))),
            seq([
                if_prob(
                    0.5,
                    if_prob(
                        0.75,
                        assign("x", sub(v("x"), cst(1.0))),
                        assign("x", add(v("x"), cst(1.0))),
                    ),
                    if_prob(
                        0.75,
                        assign("y", sub(v("y"), cst(1.0))),
                        assign("y", add(v("y"), cst(1.0))),
                    ),
                ),
                tick(1.0),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .precondition(ge(v("y"), cst(0.0)))
        .build()
        .expect("random_walk_2d is valid");
    Benchmark::new(
        "(2-4)",
        "2D integer random walk, drift toward the axes",
        program,
        vec![(var("x"), 8.0), (var("y"), 8.0)],
        2,
    )
}

/// (2-5): two-dimensional real-valued random walk with continuous steps.
pub fn random_walk_2d_real() -> Benchmark {
    let program = ProgramBuilder::new()
        .main(while_loop(
            and(gt(v("x"), cst(0.0)), gt(v("y"), cst(0.0))),
            seq([
                sample("s", uniform(-1.25, 0.75)),
                sample("t", uniform(-1.25, 0.75)),
                assign("x", add(v("x"), v("s"))),
                assign("y", add(v("y"), v("t"))),
                tick(1.0),
            ]),
        ))
        .precondition(ge(v("x"), cst(0.0)))
        .precondition(ge(v("y"), cst(0.0)))
        .build()
        .expect("random_walk_2d_real is valid");
    Benchmark::new(
        "(2-5)",
        "2D real-valued random walk, uniform(−1.25, 0.75) increments",
        program,
        vec![(var("x"), 8.0), (var("y"), 8.0)],
        2,
    )
}

/// All seven benchmarks of the Kura et al. comparison.
pub fn all() -> Vec<Benchmark> {
    vec![
        coupon_two(),
        coupon_four(),
        random_walk_int(),
        random_walk_real(),
        random_walk_mixed(),
        random_walk_2d(),
        random_walk_2d_real(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_sim::{simulate, SimConfig};

    #[test]
    fn all_programs_are_valid_and_distinct() {
        let suite = all();
        assert_eq!(suite.len(), 7);
        let mut names: Vec<_> = suite.iter().map(|b| b.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn coupon_collectors_terminate_with_expected_cost() {
        let two = coupon_two();
        let stats = simulate(
            &two.program,
            &SimConfig {
                trials: 20_000,
                seed: 1,
                ..Default::default()
            },
        );
        // 1 + Geometric(1/2): expectation 3.
        assert!((stats.mean() - 3.0).abs() < 0.05);

        let four = coupon_four();
        let stats4 = simulate(
            &four.program,
            &SimConfig {
                trials: 20_000,
                seed: 2,
                ..Default::default()
            },
        );
        // 4 (1 + 1/2 + 1/3 + 1/4)·... : harmonic expectation 4·(25/12) ≈ 8.33.
        assert!((stats4.mean() - 4.0 * (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 0.1);
    }

    #[test]
    fn random_walks_drift_to_termination() {
        for b in [random_walk_int(), random_walk_real()] {
            let stats = simulate(
                &b.program,
                &SimConfig {
                    trials: 3_000,
                    seed: 3,
                    initial: b.initial_state(),
                    ..Default::default()
                },
            );
            assert_eq!(stats.cutoff_trials(), 0, "{} diverged", b.name);
            assert!(stats.mean() > 10.0);
        }
    }
}
