//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the subset of proptest's API that its property tests use: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], the
//! [`strategy::Strategy`] trait with `prop_map`, numeric-range and tuple
//! strategies, and [`collection::vec`].
//!
//! Generation is deterministic: every property runs a fixed number of cases
//! ([`NUM_CASES`]) drawn from a generator seeded with the test's name, so runs
//! are reproducible and failures can be replayed by re-running the test.
//! There is no shrinking — the first failing case is reported as-is.

/// Number of cases each [`proptest!`] property executes.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    /// Deterministic generator used to drive strategies (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so each
        /// property gets its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value` (proptest's core trait).
    pub trait Strategy: Sized {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy that applies `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span.max(1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u32, u64, usize);

    impl Strategy for Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end as i64 - self.start as i64).max(1) as u64;
            (self.start as i64 + rng.below(span) as i64) as i32
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares deterministic property tests (stand-in for proptest's macro).
///
/// Each `fn name(arg in strategy, …) { body }` becomes a test that runs the
/// body [`NUM_CASES`] times with inputs drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property (panics with the failing expression on violation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality of two property values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

pub mod prelude {
    //! Everything a property-test module needs in scope.
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, k in 1u32..5) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(v.iter().filter(|x| **x >= 1.0).count(), 0);
        }
    }
}
