//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the slice of criterion's API that its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this harness measures each
//! benchmark for a handful of samples and reports the fastest one (the usual
//! low-noise estimator for short deterministic workloads).  Output is one
//! plain-text line per benchmark.  Honors `CMA_BENCH_SAMPLES` to override the
//! per-benchmark sample count.

use std::time::{Duration, Instant};

/// Measures closures handed over by benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    best: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records the fastest observed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed samples.
        std::hint::black_box(f());
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            if self.best.map(|b| elapsed < b).unwrap_or(true) {
                self.best = Some(elapsed);
            }
        }
    }
}

/// Identifier of one benchmark within a group (`"name/parameter"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

fn default_samples() -> usize {
    std::env::var("CMA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn report(label: &str, best: Option<Duration>) {
    match best {
        Some(d) => println!("{label:<50} {:>12.3} ms (best)", d.as_secs_f64() * 1e3),
        None => println!("{label:<50} {:>12}", "no samples"),
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            best: None,
            samples: self.samples,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.label), bencher.best);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            best: None,
            samples: self.samples,
        };
        f(&mut bencher);
        report(&format!("{}/{name}", self.name), bencher.best);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            best: None,
            samples: self.samples,
        };
        f(&mut bencher);
        report(name, bencher.best);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
        }
    }
}

/// Bundles benchmark functions under one name (stand-in for criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_best_time() {
        let mut b = Bencher {
            best: None,
            samples: 3,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.best.is_some());
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion { samples: 1 };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("f", 3), &3, |b, n| {
                b.iter(|| std::hint::black_box(*n * 2))
            });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| std::hint::black_box(2 + 2)));
    }
}
