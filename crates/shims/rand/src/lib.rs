//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the narrow slice of the rand 0.8 API that `cma-sim` relies on:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`/`u64`/`bool`, and
//! [`rngs::StdRng`].  The generator is xoshiro256** seeded through splitmix64
//! — deterministic across platforms, which is exactly what the reproducible
//! Monte-Carlo cross-checks need.

/// Types that can be drawn uniformly from a generator ("standard"
/// distribution in rand's terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The subset of rand's `Rng` trait used by this workspace.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A value drawn from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform value in `[lo, hi)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + self.gen::<f64>() * (range.end - range.start)
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; identical seeds produce identical
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
