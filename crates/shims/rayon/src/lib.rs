//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the narrow slice of rayon's API that the parallel LP machinery
//! uses: [`join`] for two-way fork-join and [`scope`] with [`Scope::spawn`]
//! for n-way fork-join.
//!
//! Unlike the original spawn-per-scope shim, tasks now run on a **persistent
//! worker pool**: a fixed set of OS threads created on first use and shared
//! by every scope for the process lifetime.  Per-task cost drops from an OS
//! thread spawn (~10 µs) to a queue push, which is what makes intra-solve
//! parallelism (per-pivot pricing scans, the m seeding btrans of dual
//! steepest edge) worthwhile at all.  The pool size defaults to
//! `std::thread::available_parallelism` and can be pinned with the
//! `CMA_POOL_THREADS` environment variable (read once, at first use).
//!
//! Nested scopes cannot deadlock: a thread waiting for its scope to drain
//! *help-runs* queued tasks (its own scope's or another's), so progress is
//! guaranteed even when every worker is itself blocked in a scope wait.
//! Panics inside tasks are caught, carried to the scope's owner, and
//! re-thrown when the scope ends — matching rayon's semantics closely
//! enough for fork-join use.
//!
//! [`current_num_threads`] reports the pool size.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

/// A queued unit of work.  Lifetime-erased: the scope that enqueued it is
/// guaranteed (by [`scope`]'s drain-before-return contract) to outlive it.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The global injector queue shared by the pool's workers and by scope
/// owners help-running while they wait.
struct Injector {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed.
    ready: Condvar,
}

struct Pool {
    injector: Injector,
    workers: usize,
}

/// Recovers from a poisoned mutex: the pool must stay usable after a task
/// panicked on another thread (the panic is re-thrown at the scope owner).
fn lock_queue(pool: &Pool) -> MutexGuard<'_, VecDeque<Job>> {
    pool.injector
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

impl Pool {
    fn push(&self, job: Job) {
        lock_queue(self).push_back(job);
        self.injector.ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        lock_queue(self).pop_front()
    }
}

/// Pool size: `CMA_POOL_THREADS` if set to a positive integer, otherwise the
/// host's available parallelism.
fn pool_size() -> usize {
    std::env::var("CMA_POOL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide pool, created on first use.  Workers park on the
/// injector's condvar and run jobs as they arrive; they never exit (the
/// process teardown reaps them).
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = pool_size();
        // The workers' own `pool()` calls block on this `get_or_init` until
        // the cell is initialized, so spawning before returning is safe.
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("cma-pool-{i}"))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        Pool {
            injector: Injector {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            workers,
        }
    })
}

fn worker_loop() {
    let pool = pool();
    let mut guard = lock_queue(pool);
    loop {
        if let Some(job) = guard.pop_front() {
            drop(guard);
            job();
            guard = lock_queue(pool);
        } else {
            guard = pool
                .injector
                .ready
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Shared state of one scope: how many of its tasks are still pending, and
/// the first panic payload any of them produced.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn task_finished(&self) {
        let mut n = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of this scope has finished, help-running
    /// queued jobs (this scope's or any other's) in the meantime — the
    /// nested-scope deadlock escape hatch.
    fn wait_all(&self) {
        loop {
            {
                let n = self.pending.lock().unwrap_or_else(|e| e.into_inner());
                if *n == 0 {
                    return;
                }
            }
            if let Some(job) = pool().try_pop() {
                job();
                continue;
            }
            let n = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            if *n == 0 {
                return;
            }
            // Timed wait: our scope's remaining tasks may be *queued behind*
            // jobs only we can help-run, and the queue has no per-scope
            // wakeup — so re-check it periodically instead of blocking
            // indefinitely on `done` alone.
            let _ = self
                .done
                .wait_timeout(n, Duration::from_micros(100))
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `a` is offered to the pool while `b` runs on the caller's thread; panics
/// in either closure propagate to the caller after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    let mut ra = None;
    let rb = scope(|s| {
        s.spawn(|| ra = Some(a()));
        b()
    });
    (ra.expect("rayon::join task completed"), rb)
}

/// A fork-join scope handed to the closure of [`scope`]; spawned tasks may
/// borrow from the enclosing stack frame and are joined when the scope ends.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool, to run concurrently with the rest of the
    /// scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        *state.pending.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        let task = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            state.task_finished();
        });
        // SAFETY: lifetime erasure `'scope → 'static`.  The task may borrow
        // stack data of the frame that called `scope`; `scope` never returns
        // (not even by unwinding) before `wait_all` has observed every
        // spawned task finished, so the borrows outlive the task.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(
                task as Box<dyn FnOnce() + Send + 'scope>,
            )
        };
        pool().push(job);
    }
}

/// Creates a fork-join scope: every task spawned through the [`Scope`] is
/// guaranteed to have finished before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let state = Arc::new(ScopeState {
        pending: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let s = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    // The scope closure itself may panic with tasks already queued; the
    // drain must still happen before the unwind leaves this frame.
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    state.wait_all();
    let task_panic = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = task_panic {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

/// The parallelism the pool provides (the worker count).
pub fn current_num_threads() -> usize {
    pool().workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_joins_all_spawns_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn many_more_tasks_than_workers_all_complete() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..256 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn nested_scopes_make_progress() {
        // Saturate the pool with tasks that each open an inner scope; the
        // help-running wait keeps this from deadlocking even when every
        // worker is blocked in an inner scope drain.
        let counter = AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..(current_num_threads() * 2 + 2) {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::SeqCst),
            (current_num_threads() * 2 + 2) * 4
        );
    }

    #[test]
    fn scope_propagates_task_panic() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
            });
        }));
        assert!(caught.is_err(), "task panic must reach the scope owner");
        // The pool must stay usable afterwards.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
