//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the narrow slice of rayon's API that the parallel LP batch solver
//! uses: [`join`] for two-way fork-join and [`scope`] with [`Scope::spawn`]
//! for n-way fork-join.  Unlike rayon there is no work-stealing pool — every
//! spawn is an OS thread joined when the scope ends — which is the right
//! trade-off here: callers spawn a handful of long-running LP solves, not
//! millions of microtasks.
//!
//! [`current_num_threads`] reports `std::thread::available_parallelism`, the
//! same default a rayon global pool would size itself to.

use std::thread;

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `a` runs on a spawned thread while `b` runs on the caller's thread, so the
/// call adds at most one thread.  Panics in either closure propagate to the
/// caller after both have finished, matching rayon's semantics closely enough
/// for fork-join use.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    thread::scope(|s| {
        let ra = s.spawn(a);
        let rb = b();
        (ra.join().expect("rayon::join closure panicked"), rb)
    })
}

/// A fork-join scope handed to the closure of [`scope`]; spawned tasks may
/// borrow from the enclosing stack frame and are joined when the scope ends.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that runs concurrently with the rest of the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Creates a fork-join scope: every task spawned through the [`Scope`] is
/// guaranteed to have finished before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// The parallelism the host advertises (what a rayon global pool would use).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_joins_all_spawns_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
