//! The interval semiring `I = {[a, b] | a ≤ b}` (§2.1, §3.3).
//!
//! Moment semirings are instantiated with intervals so that upper and lower
//! bounds of each raw moment are tracked *simultaneously* — essential both for
//! central moments (which subtract raw moments) and for non-monotone costs.

use crate::semiring::{PartialOrderedSemiring, Semiring};

/// A closed real interval `[lo, hi]`.
///
/// Intervals form a semiring with `+` and `·` defined as the usual interval
/// extensions of addition and multiplication; the partial order is
/// **reverse containment**: `x ≤ y` iff `x ⊆ y` (a wider interval is "larger",
/// i.e. a more conservative bound).
///
/// ```
/// use cma_semiring::Interval;
/// let a = Interval::new(-1.0, 2.0);
/// let b = Interval::new(3.0, 4.0);
/// assert_eq!(a.add(b), Interval::new(2.0, 6.0));
/// assert_eq!(a.mul(b), Interval::new(-4.0, 8.0));
/// assert!(Interval::new(0.0, 1.0).subset_of(&Interval::new(-1.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate (point) interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval::new(v, v)
    }

    /// The unbounded interval `[-∞, +∞]` — top of the containment lattice.
    ///
    /// Abstract interpretation starts unknown variables here and returns
    /// here after widening; all arithmetic stays NaN-free on infinite
    /// bounds (see [`Interval::mul`]).
    pub fn top() -> Self {
        Interval::new(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Whether the interval is `[-∞, +∞]`.
    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Creates `[lo, hi]` after sorting the end points, so the call never
    /// panics on finite inputs.
    pub fn hull(a: f64, b: f64) -> Self {
        Interval::new(a.min(b), a.max(b))
    }

    /// Lower end point.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper end point.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo` of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `self ⊆ other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Interval addition `[a,b] + [c,d] = [a+c, b+d]`.
    ///
    /// The semiring API uses plain method names (`add`/`sub`/`neg`/`mul`)
    /// rather than operator traits so the call sites mirror the paper's
    /// algebraic notation.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval negation `-[a,b] = [-b,-a]`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Interval subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Interval) -> Interval {
        self.add(other.neg())
    }

    /// Interval multiplication: the hull of all pairwise end-point products.
    ///
    /// `0 · ±∞` is resolved to `0` (the IEEE result would be NaN): the factor
    /// `0` means the operand is exactly zero, so the product is zero no
    /// matter how unbounded the other operand is.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Interval) -> Interval {
        fn prod(a: f64, b: f64) -> f64 {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                a * b
            }
        }
        let candidates = [
            prod(self.lo, other.lo),
            prod(self.lo, other.hi),
            prod(self.hi, other.lo),
            prod(self.hi, other.hi),
        ];
        let mut lo = candidates[0];
        let mut hi = candidates[0];
        for &c in &candidates[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(lo, hi)
    }

    /// Scales the interval by a real constant (flipping ends when negative).
    pub fn scale(self, c: f64) -> Interval {
        if c >= 0.0 {
            Interval::new(c * self.lo, c * self.hi)
        } else {
            Interval::new(c * self.hi, c * self.lo)
        }
    }

    /// `k`-th power of the interval, i.e. the exact image of `x ↦ x^k`.
    pub fn powi(self, k: u32) -> Interval {
        if k == 0 {
            return Interval::point(1.0);
        }
        if k % 2 == 1 {
            Interval::new(self.lo.powi(k as i32), self.hi.powi(k as i32))
        } else {
            // Even power: minimum attained at the point of smallest magnitude.
            let lo_mag = if self.contains(0.0) {
                0.0
            } else {
                self.lo.abs().min(self.hi.abs())
            };
            let hi_mag = self.lo.abs().max(self.hi.abs());
            Interval::new(lo_mag.powi(k as i32), hi_mag.powi(k as i32))
        }
    }

    /// Smallest interval containing both `self` and `other` (the join of the
    /// containment lattice).
    pub fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Intersection of the two intervals, or `None` when disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// Standard interval widening: a bound that moved since `self` jumps
    /// straight to infinity.  Guarantees termination of ascending chains at
    /// loop heads — after finitely many widenings every variable is either
    /// stable or unbounded on that side.
    pub fn widen(self, next: Interval) -> Interval {
        let lo = if next.lo < self.lo {
            f64::NEG_INFINITY
        } else {
            self.lo
        };
        let hi = if next.hi > self.hi {
            f64::INFINITY
        } else {
            self.hi
        };
        Interval::new(lo, hi)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::point(0.0)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl From<f64> for Interval {
    fn from(v: f64) -> Self {
        Interval::point(v)
    }
}

impl Semiring for Interval {
    fn zero() -> Self {
        Interval::point(0.0)
    }

    fn one() -> Self {
        Interval::point(1.0)
    }

    fn add(&self, other: &Self) -> Self {
        Interval::add(*self, *other)
    }

    fn mul(&self, other: &Self) -> Self {
        Interval::mul(*self, *other)
    }

    fn scale_nat(&self, n: f64) -> Self {
        self.scale(n)
    }

    fn is_zero(&self) -> bool {
        self.lo == 0.0 && self.hi == 0.0
    }
}

impl PartialOrderedSemiring for Interval {
    /// `x ≤ y` iff `x ⊆ y`: the wider interval is the more conservative bound.
    fn leq(&self, other: &Self) -> bool {
        self.subset_of(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_and_accessors() {
        let p = Interval::point(2.5);
        assert_eq!(p.lo(), 2.5);
        assert_eq!(p.hi(), 2.5);
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.mid(), 2.5);
    }

    #[test]
    #[should_panic]
    fn invalid_interval_panics() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn hull_sorts_endpoints() {
        assert_eq!(Interval::hull(3.0, -1.0), Interval::new(-1.0, 3.0));
    }

    #[test]
    fn add_sub_neg() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 1.5);
        assert_eq!(a.add(b), Interval::new(-0.5, 3.5));
        assert_eq!(a.sub(b), Interval::new(-2.5, 1.5));
        assert_eq!(a.neg(), Interval::new(-2.0, 1.0));
    }

    #[test]
    fn mul_covers_sign_cases() {
        let neg = Interval::new(-3.0, -1.0);
        let mix = Interval::new(-2.0, 4.0);
        let pos = Interval::new(2.0, 5.0);
        assert_eq!(neg.mul(pos), Interval::new(-15.0, -2.0));
        assert_eq!(mix.mul(pos), Interval::new(-10.0, 20.0));
        assert_eq!(neg.mul(neg), Interval::new(1.0, 9.0));
        assert_eq!(mix.mul(mix), Interval::new(-8.0, 16.0));
    }

    #[test]
    fn scale_negative_flips() {
        let a = Interval::new(1.0, 3.0);
        assert_eq!(a.scale(-2.0), Interval::new(-6.0, -2.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 6.0));
    }

    #[test]
    fn powers() {
        let a = Interval::new(-2.0, 3.0);
        assert_eq!(a.powi(0), Interval::point(1.0));
        assert_eq!(a.powi(1), a);
        assert_eq!(a.powi(2), Interval::new(0.0, 9.0));
        assert_eq!(a.powi(3), Interval::new(-8.0, 27.0));
        let b = Interval::new(-4.0, -2.0);
        assert_eq!(b.powi(2), Interval::new(4.0, 16.0));
    }

    #[test]
    fn semiring_identities() {
        let a = Interval::new(-1.0, 5.0);
        assert_eq!(Semiring::add(&a, &Interval::zero()), a);
        assert_eq!(Semiring::mul(&a, &Interval::one()), a);
        assert!(Interval::zero().is_zero());
    }

    #[test]
    fn order_is_containment() {
        let narrow = Interval::new(0.0, 1.0);
        let wide = Interval::new(-1.0, 2.0);
        assert!(narrow.leq(&wide));
        assert!(!wide.leq(&narrow));
        assert!(narrow.leq(&narrow));
    }

    #[test]
    fn top_absorbs_and_mul_stays_nan_free() {
        let top = Interval::top();
        assert!(top.is_top());
        assert!(Interval::new(-1.0, 7.0).subset_of(&top));
        // 0 · ±∞ must resolve to 0, not NaN.
        assert_eq!(Interval::point(0.0).mul(top), Interval::point(0.0));
        assert_eq!(Interval::new(0.0, 1.0).mul(top), top);
        assert_eq!(top.add(Interval::point(3.0)), top);
    }

    #[test]
    fn intersect_and_widen() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 9.0);
        assert_eq!(a.intersect(b), Some(Interval::new(3.0, 5.0)));
        assert_eq!(a.intersect(Interval::new(6.0, 7.0)), None);

        // Stable bounds survive widening; moving bounds jump to infinity.
        assert_eq!(
            a.widen(Interval::new(0.0, 6.0)),
            Interval::new(0.0, f64::INFINITY)
        );
        assert_eq!(
            a.widen(Interval::new(-1.0, 5.0)),
            Interval::new(f64::NEG_INFINITY, 5.0)
        );
        assert_eq!(a.widen(Interval::new(1.0, 4.0)), a);
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        let j = a.join(b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j, Interval::new(0.0, 3.0));
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(a, b)| Interval::hull(a, b))
    }

    proptest! {
        #[test]
        fn prop_mul_is_sound(a in arb_interval(), b in arb_interval(),
                             s in 0.0f64..1.0, t in 0.0f64..1.0) {
            // Any product of points from the operands lies in the product interval.
            let x = a.lo() + s * a.width();
            let y = b.lo() + t * b.width();
            let prod = a.mul(b);
            prop_assert!(prod.contains(x * y) || (x * y - prod.lo()).abs() < 1e-9
                         || (x * y - prod.hi()).abs() < 1e-9);
        }

        #[test]
        fn prop_add_monotone(a in arb_interval(), b in arb_interval(), c in arb_interval()) {
            // Monotonicity required by Lemma E.2: a ⊆ b implies a+c ⊆ b+c.
            let wide = a.join(b);
            prop_assert!(a.add(c).subset_of(&wide.add(c)));
        }

        #[test]
        fn prop_mul_monotone(a in arb_interval(), b in arb_interval(), c in arb_interval()) {
            let wide = a.join(b);
            prop_assert!(a.mul(c).subset_of(&wide.mul(c)));
        }

        #[test]
        fn prop_powi_consistent_with_mul(a in arb_interval()) {
            // x^2 computed exactly is a subset of x*x (which ignores dependency).
            prop_assert!(a.powi(2).subset_of(&a.mul(a)));
        }
    }
}
