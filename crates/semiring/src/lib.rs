//! Algebraic foundations for central-moment analysis of probabilistic programs.
//!
//! This crate provides the algebraic structures used by the PLDI 2021 paper
//! *Central Moment Analysis for Cost Accumulators in Probabilistic Programs*:
//!
//! * [`semiring`] — partially ordered semirings (Definition 3.1 is parametrized
//!   by such a structure).
//! * [`interval`] — the interval semiring `I = {[a, b] | a ≤ b}` used to track
//!   upper *and* lower bounds simultaneously.
//! * [`poly`] — multivariate polynomials over program variables, the carrier of
//!   the *symbolic* interval semiring `PI`.
//! * [`moment`] — the moment semirings `M(m)_R` with the binomial-convolution
//!   composition operator `⊗` and the pointwise combination operator `⊕`.
//!
//! # Example
//!
//! Composing the first two moments of two sequenced computations (Eq. (3) of
//! the paper):
//!
//! ```
//! use cma_semiring::moment::MomentVec;
//!
//! // ⟨1, r1, s1⟩ ⊗ ⟨1, r2, s2⟩ = ⟨1, r1+r2, s1 + 2 r1 r2 + s2⟩
//! let a = MomentVec::from_raw(vec![1.0, 3.0, 11.0]);
//! let b = MomentVec::from_raw(vec![1.0, 2.0, 5.0]);
//! let c = a.compose(&b);
//! assert_eq!(c.component(1), &5.0);
//! assert_eq!(c.component(2), &(11.0 + 2.0 * 3.0 * 2.0 + 5.0));
//! ```

pub mod interval;
pub mod moment;
pub mod poly;
pub mod semiring;

pub use interval::Interval;
pub use moment::MomentVec;
pub use poly::{Monomial, Polynomial, Var};
pub use semiring::{PartialOrderedSemiring, Semiring};

/// Binomial coefficient `C(n, k)` as an `f64`.
///
/// Used by the moment-semiring composition operator `⊗` (Definition 3.1).
/// Values are exact for the small `n` used in moment analysis (`n ≤ ~20`).
///
/// ```
/// assert_eq!(cma_semiring::binomial(4, 2), 6.0);
/// assert_eq!(cma_semiring::binomial(5, 0), 1.0);
/// assert_eq!(cma_semiring::binomial(3, 5), 0.0);
/// ```
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::binomial;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(1, 0), 1.0);
        assert_eq!(binomial(1, 1), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(6, 3), 20.0);
        assert_eq!(binomial(10, 5), 252.0);
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert_eq!(binomial(2, 3), 0.0);
        assert_eq!(binomial(0, 1), 0.0);
    }

    #[test]
    fn binomial_pascal_rule() {
        for n in 1..15usize {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }
}
