//! Moment semirings `M(m)_R` (Definition 3.1).
//!
//! An element of the `m`-th order moment semiring is an `(m+1)`-vector
//! `⟨u_0, …, u_m⟩` over a partially ordered semiring `R`.  The k-th component
//! tracks (a bound on) the k-th moment of an accumulated cost; the 0-th
//! component tracks the termination probability mass.
//!
//! * `⊕` is the pointwise sum (Eq. (6)) — used by the frame rule and
//!   probabilistic branching.
//! * `⊗` is the binomial convolution (Eq. (7)) — used to *compose* the moments
//!   of two sequenced computations, generalizing
//!   `E[(a+b)²] = a² + 2aE[b] + E[b²]`.
//! * `⊑` is the pointwise extension of the order on `R`.

use crate::binomial;
use crate::interval::Interval;
use crate::semiring::{PartialOrderedSemiring, Semiring};

/// An element of the moment semiring `M(m)_R`: the vector `⟨u_0, …, u_m⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentVec<T> {
    components: Vec<T>,
}

impl<T: Semiring> MomentVec<T> {
    /// The multiplicative identity `1 = ⟨1, 0, …, 0⟩` of degree `m`.
    pub fn one(degree: usize) -> Self {
        let mut components = vec![T::zero(); degree + 1];
        components[0] = T::one();
        MomentVec { components }
    }

    /// The additive identity `0 = ⟨0, 0, …, 0⟩` of degree `m`.
    pub fn zero(degree: usize) -> Self {
        MomentVec {
            components: vec![T::zero(); degree + 1],
        }
    }

    /// Builds a moment vector from raw components `⟨u_0, …, u_m⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn from_raw(components: Vec<T>) -> Self {
        assert!(
            !components.is_empty(),
            "a moment vector needs a 0-th component"
        );
        MomentVec { components }
    }

    /// The vector of powers `⟨u⁰, u¹, …, u^m⟩` (left operand of Lemma 3.2).
    pub fn powers_of(u: &T, degree: usize) -> Self {
        let mut components = Vec::with_capacity(degree + 1);
        let mut acc = T::one();
        components.push(acc.clone());
        for _ in 0..degree {
            acc = acc.mul(u);
            components.push(acc.clone());
        }
        MomentVec { components }
    }

    /// Degree `m` of the moment vector (one less than the number of components).
    pub fn degree(&self) -> usize {
        self.components.len() - 1
    }

    /// The `k`-th component.
    ///
    /// # Panics
    ///
    /// Panics if `k > m`.
    pub fn component(&self, k: usize) -> &T {
        &self.components[k]
    }

    /// All components in order.
    pub fn components(&self) -> &[T] {
        &self.components
    }

    /// Mutable access to the `k`-th component.
    pub fn component_mut(&mut self, k: usize) -> &mut T {
        &mut self.components[k]
    }

    /// The combination operator `⊕` (pointwise sum, Eq. (6)).
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.degree(), other.degree(), "degree mismatch in ⊕");
        MomentVec {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// The composition operator `⊗` (binomial convolution, Eq. (7)):
    /// `(u ⊗ v)_k = Σ_{i=0}^{k} C(k,i) × (u_i · v_{k-i})`.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.degree(), other.degree(), "degree mismatch in ⊗");
        let m = self.degree();
        let mut components = Vec::with_capacity(m + 1);
        for k in 0..=m {
            let mut acc = T::zero();
            for i in 0..=k {
                let prod = self.components[i].mul(&other.components[k - i]);
                acc = acc.add(&prod.scale_nat(binomial(k, i)));
            }
            components.push(acc);
        }
        MomentVec { components }
    }

    /// Maps every component through `f`, preserving the degree.
    pub fn map<U: Semiring>(&self, f: impl Fn(&T) -> U) -> MomentVec<U> {
        MomentVec {
            components: self.components.iter().map(f).collect(),
        }
    }
}

impl<T: PartialOrderedSemiring> MomentVec<T> {
    /// The pointwise partial order `⊑`.
    pub fn leq(&self, other: &Self) -> bool {
        self.degree() == other.degree()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a.leq(b))
    }
}

impl MomentVec<Interval> {
    /// The interval moment vector `⟨[c⁰,c⁰], [c¹,c¹], …, [c^m,c^m]⟩` of a
    /// deterministic cost `c` — the left operand of `⊗` in the `tick` rule.
    pub fn of_cost(c: f64, degree: usize) -> Self {
        MomentVec {
            components: (0..=degree)
                .map(|k| Interval::point(c.powi(k as i32)))
                .collect(),
        }
    }

    /// The interval moment vector with exact raw moments `⟨1, E[X], …, E[X^m]⟩`
    /// of a known distribution (each component a point interval).
    pub fn of_raw_moments(moments: &[f64]) -> Self {
        MomentVec {
            components: moments.iter().map(|&m| Interval::point(m)).collect(),
        }
    }

    /// Widths of all components — a measure of imprecision.
    pub fn total_width(&self) -> f64 {
        self.components.iter().map(Interval::width).sum()
    }

    /// The maximum absolute end point over all components
    /// (the `∥·∥∞` norm used in Theorem 4.4).
    pub fn sup_norm(&self) -> f64 {
        self.components
            .iter()
            .map(|i| i.lo().abs().max(i.hi().abs()))
            .fold(0.0, f64::max)
    }
}

impl MomentVec<f64> {
    /// Interprets a vector of exact raw moments as point intervals.
    pub fn to_intervals(&self) -> MomentVec<Interval> {
        self.map(|&x| Interval::point(x))
    }
}

impl<T: Semiring + std::fmt::Display> std::fmt::Display for MomentVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities() {
        let one = MomentVec::<f64>::one(2);
        let zero = MomentVec::<f64>::zero(2);
        let x = MomentVec::from_raw(vec![1.0, 3.0, 10.0]);
        assert_eq!(x.compose(&one), x);
        assert_eq!(one.compose(&x), x);
        assert_eq!(x.combine(&zero), x);
        assert_eq!(zero.compose(&x), zero);
    }

    #[test]
    fn second_moment_composition_matches_eq3() {
        // Eq. (3): ⟨1, r1, s1⟩ ⊗ ⟨1, r2, s2⟩ = ⟨1, r1+r2, s1 + 2 r1 r2 + s2⟩
        let a = MomentVec::from_raw(vec![1.0, 2.0, 7.0]);
        let b = MomentVec::from_raw(vec![1.0, 5.0, 30.0]);
        let c = a.compose(&b);
        assert_eq!(*c.component(0), 1.0);
        assert_eq!(*c.component(1), 7.0);
        assert_eq!(*c.component(2), 7.0 + 2.0 * 2.0 * 5.0 + 30.0);
    }

    #[test]
    fn composition_with_termination_probability_matches_eq5() {
        // Eq. (5): ⟨p1,r1,s1⟩ ⊗ ⟨p2,r2,s2⟩ = ⟨p1p2, p2r1+p1r2, p2s1+2r1r2+p1s2⟩
        let a = MomentVec::from_raw(vec![0.5, 2.0, 7.0]);
        let b = MomentVec::from_raw(vec![0.25, 5.0, 30.0]);
        let c = a.compose(&b);
        assert_eq!(*c.component(0), 0.125);
        assert_eq!(*c.component(1), 0.25 * 2.0 + 0.5 * 5.0);
        assert_eq!(*c.component(2), 0.25 * 7.0 + 2.0 * 2.0 * 5.0 + 0.5 * 30.0);
    }

    #[test]
    fn lemma_3_2_composition_of_powers() {
        // ⟨(u+v)^k⟩ = ⟨u^k⟩ ⊗ ⟨v^k⟩ for the reals.
        for degree in 1..=5usize {
            let u = 1.7;
            let v = -0.6;
            let lhs = MomentVec::powers_of(&(u + v), degree);
            let rhs = MomentVec::powers_of(&u, degree).compose(&MomentVec::powers_of(&v, degree));
            for k in 0..=degree {
                assert!((lhs.component(k) - rhs.component(k)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn frame_rule_decomposition_example() {
        // Remark 2.5: ⟨1,r3,s3⟩ ⊗ ⟨1, r1+r2, s1+s2⟩
        //           = (⟨1,r3,s3⟩ ⊗ ⟨0,r1,s1⟩) ⊕ (⟨1,r3,s3⟩ ⊗ ⟨1,r2,s2⟩)
        // only when the decomposition is as in Ex. 2.6 (0-th components 0/1).
        let q = MomentVec::from_raw(vec![1.0, 4.0, 20.0]);
        let part1 = MomentVec::from_raw(vec![0.0, 1.0, 1.0]);
        let part2 = MomentVec::from_raw(vec![1.0, 2.0, 6.0]);
        let total = part1.combine(&part2);
        let lhs = q.compose(&total);
        let rhs = q.compose(&part1).combine(&q.compose(&part2));
        for k in 0..=2 {
            assert!((lhs.component(k) - rhs.component(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn rdwalk_example_2_3_composition() {
        // Ex. 2.3: ⟨1, 2w+4, 4w²+22w+28⟩ ⊗ ⟨1,1,1⟩ = ⟨1, 2w+5, 4w²+26w+37⟩  (w = d-x)
        // Check at a few values of w.
        for w in [0.0, 1.0, 2.5, 7.0] {
            let callee =
                MomentVec::from_raw(vec![1.0, 2.0 * w + 4.0, 4.0 * w * w + 22.0 * w + 28.0]);
            let post = MomentVec::from_raw(vec![1.0, 1.0, 1.0]);
            let pre = callee.compose(&post);
            assert!((pre.component(1) - (2.0 * w + 5.0)).abs() < 1e-9);
            assert!((pre.component(2) - (4.0 * w * w + 26.0 * w + 37.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn interval_instantiation_example_from_section_2_1() {
        // ⟨[1,1],[-1,-1],[1,1]⟩ ⊗ ⟨[1,1],[-2,2],[5,5]⟩ = ⟨[1,1],[-3,1],[2,10]⟩
        let a = MomentVec::from_raw(vec![
            Interval::point(1.0),
            Interval::point(-1.0),
            Interval::point(1.0),
        ]);
        let b = MomentVec::from_raw(vec![
            Interval::point(1.0),
            Interval::new(-2.0, 2.0),
            Interval::point(5.0),
        ]);
        let c = a.compose(&b);
        assert_eq!(*c.component(0), Interval::point(1.0));
        assert_eq!(*c.component(1), Interval::new(-3.0, 1.0));
        assert_eq!(*c.component(2), Interval::new(2.0, 10.0));
    }

    #[test]
    fn of_cost_builds_point_powers() {
        let v = MomentVec::of_cost(3.0, 3);
        assert_eq!(*v.component(0), Interval::point(1.0));
        assert_eq!(*v.component(2), Interval::point(9.0));
        assert_eq!(*v.component(3), Interval::point(27.0));
    }

    #[test]
    fn order_is_pointwise() {
        let narrow = MomentVec::from_raw(vec![Interval::point(1.0), Interval::new(0.0, 1.0)]);
        let wide = MomentVec::from_raw(vec![Interval::point(1.0), Interval::new(-1.0, 2.0)]);
        assert!(narrow.leq(&wide));
        assert!(!wide.leq(&narrow));
    }

    #[test]
    fn total_width_and_sup_norm() {
        let v = MomentVec::from_raw(vec![Interval::point(1.0), Interval::new(-2.0, 3.0)]);
        assert_eq!(v.total_width(), 5.0);
        assert_eq!(v.sup_norm(), 3.0);
    }

    #[test]
    #[should_panic]
    fn degree_mismatch_panics() {
        let a = MomentVec::<f64>::one(2);
        let b = MomentVec::<f64>::one(3);
        let _ = a.compose(&b);
    }

    fn arb_vec(degree: usize) -> impl Strategy<Value = MomentVec<f64>> {
        proptest::collection::vec(-3.0f64..3.0, degree + 1..degree + 2)
            .prop_map(MomentVec::from_raw)
    }

    proptest! {
        #[test]
        fn prop_compose_associative(a in arb_vec(3), b in arb_vec(3), c in arb_vec(3)) {
            let lhs = a.compose(&b).compose(&c);
            let rhs = a.compose(&b.compose(&c));
            for k in 0..=3 {
                prop_assert!((lhs.component(k) - rhs.component(k)).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_compose_distributes_over_combine(a in arb_vec(3), b in arb_vec(3), c in arb_vec(3)) {
            let lhs = a.compose(&b.combine(&c));
            let rhs = a.compose(&b).combine(&a.compose(&c));
            for k in 0..=3 {
                prop_assert!((lhs.component(k) - rhs.component(k)).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_lemma_3_2(u in -3.0f64..3.0, v in -3.0f64..3.0) {
            let lhs = MomentVec::powers_of(&(u + v), 4);
            let rhs = MomentVec::powers_of(&u, 4).compose(&MomentVec::powers_of(&v, 4));
            for k in 0..=4 {
                prop_assert!((lhs.component(k) - rhs.component(k)).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_combine_commutative(a in arb_vec(2), b in arb_vec(2)) {
            prop_assert_eq!(a.combine(&b), b.combine(&a));
        }
    }
}
