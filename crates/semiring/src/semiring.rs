//! Partially ordered semirings.
//!
//! The moment semiring `M(m)_R` (Definition 3.1 of the paper) is parametrized
//! by a *partially ordered semiring* `R = (|R|, ≤, +, ·, 0, 1)`.  This module
//! defines the corresponding traits and implements them for `f64` (the
//! "extended reals with the usual order" used for point bounds) so that
//! concrete and interval-valued moment vectors share a single implementation.

/// A semiring `(|R|, +, ·, 0, 1)`.
///
/// Addition and multiplication must be associative, addition commutative,
/// multiplication must distribute over addition and `0` must annihilate.
/// The analysis only relies on these laws for finitely many compositions, so
/// `f64` (with rounding) is accepted as an approximate model.
pub trait Semiring: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, other: &Self) -> Self;

    /// Scalar product `n × u = u + u + … + u` (`n` times).
    ///
    /// Used by the binomial coefficients in the `⊗` operator.
    fn scale_nat(&self, n: f64) -> Self {
        // Default implementation valid for rings embedding ℝ; overridden where
        // a more precise definition exists.
        let mut acc = Self::zero();
        let mut left = n;
        while left >= 1.0 {
            acc = acc.add(self);
            left -= 1.0;
        }
        if left > 0.0 {
            // Fractional scaling never arises from binomial coefficients, but
            // keep the default total.
            acc = acc.add(self);
        }
        acc
    }

    /// Whether the value is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// A semiring together with a partial order compatible with `+` and `·`
/// (both operations are monotone, cf. Lemma E.1/E.2 of the paper).
pub trait PartialOrderedSemiring: Semiring {
    /// Returns `true` iff `self ≤ other` in the semiring order.
    fn leq(&self, other: &Self) -> bool;
}

impl Semiring for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn scale_nat(&self, n: f64) -> Self {
        self * n
    }

    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl PartialOrderedSemiring for f64 {
    fn leq(&self, other: &Self) -> bool {
        self <= other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_semiring_identities() {
        let x = 3.5f64;
        assert_eq!(x.add(&f64::zero()), x);
        assert_eq!(x.mul(&f64::one()), x);
        assert_eq!(x.mul(&f64::zero()), 0.0);
        assert!(f64::zero().is_zero());
        assert!(!f64::one().is_zero());
    }

    #[test]
    fn f64_scale_nat_matches_repeated_addition() {
        let x = 2.25f64;
        assert_eq!(x.scale_nat(4.0), 9.0);
        assert_eq!(x.scale_nat(0.0), 0.0);
    }

    #[test]
    fn f64_order_is_numeric() {
        assert!(1.0f64.leq(&2.0));
        assert!(!2.0f64.leq(&1.0));
        assert!(2.0f64.leq(&2.0));
    }

    #[test]
    fn f64_distributivity_on_samples() {
        let a = 1.5;
        let b = -2.0;
        let c = 0.75;
        assert!((a.mul(&b.add(&c)) - (a.mul(&b).add(&a.mul(&c)))).abs() < 1e-12);
    }
}
