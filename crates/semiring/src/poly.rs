//! Multivariate polynomials over program variables.
//!
//! Potential-function templates in the paper are vectors of intervals whose
//! ends are polynomials in `ℝ[VID]` (§3.3).  This module provides the concrete
//! polynomial arithmetic: the symbolic-coefficient variant used during LP
//! constraint generation lives in `cma-inference::template` and re-uses the
//! [`Monomial`] type defined here.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::semiring::{PartialOrderedSemiring, Semiring};

/// A program variable identifier.
///
/// Cheap to clone (reference counted) and totally ordered so it can key
/// B-tree maps deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

/// A monomial: a finite map from variables to positive exponents.
///
/// The empty monomial is the constant `1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    exps: BTreeMap<Var, u32>,
}

impl Monomial {
    /// The unit monomial (constant `1`).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// The monomial `v¹`.
    pub fn var(v: Var) -> Self {
        let mut exps = BTreeMap::new();
        exps.insert(v, 1);
        Monomial { exps }
    }

    /// The monomial `v^k`; `k = 0` yields the unit monomial.
    pub fn var_pow(v: Var, k: u32) -> Self {
        let mut exps = BTreeMap::new();
        if k > 0 {
            exps.insert(v, k);
        }
        Monomial { exps }
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.exps.values().sum()
    }

    /// Exponent of `v` in this monomial (0 if absent).
    pub fn exponent(&self, v: &Var) -> u32 {
        self.exps.get(v).copied().unwrap_or(0)
    }

    /// Whether the monomial mentions `v`.
    pub fn mentions(&self, v: &Var) -> bool {
        self.exps.contains_key(v)
    }

    /// Whether this is the unit monomial.
    pub fn is_unit(&self) -> bool {
        self.exps.is_empty()
    }

    /// Iterates over `(variable, exponent)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, u32)> {
        self.exps.iter().map(|(v, &e)| (v, e))
    }

    /// The variables mentioned by the monomial.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.exps.keys()
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exps.clone();
        for (v, e) in &other.exps {
            *exps.entry(v.clone()).or_insert(0) += e;
        }
        Monomial { exps }
    }

    /// Removes `v` from the monomial, returning the removed exponent and the
    /// remaining monomial.
    pub fn split_var(&self, v: &Var) -> (u32, Monomial) {
        let mut exps = self.exps.clone();
        let e = exps.remove(v).unwrap_or(0);
        (e, Monomial { exps })
    }

    /// Evaluates the monomial under a valuation; missing variables default
    /// to 0 (so any positive exponent of an unbound variable yields 0).
    pub fn eval(&self, valuation: &dyn Fn(&Var) -> f64) -> f64 {
        self.exps
            .iter()
            .map(|(v, &e)| valuation(v).powi(e as i32))
            .product()
    }

    /// Enumerates all monomials over `vars` of total degree at most `max_degree`.
    pub fn all_up_to_degree(vars: &[Var], max_degree: u32) -> Vec<Monomial> {
        let mut result = vec![Monomial::unit()];
        if max_degree == 0 || vars.is_empty() {
            return result;
        }
        // Iteratively extend by one variable at a time.
        for v in vars {
            let mut extended = Vec::new();
            for m in &result {
                let base_deg = m.degree();
                for e in 1..=(max_degree.saturating_sub(base_deg)) {
                    extended.push(m.mul(&Monomial::var_pow(v.clone(), e)));
                }
            }
            result.extend(extended);
        }
        result.sort();
        result.dedup();
        result
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in &self.exps {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A multivariate polynomial with `f64` coefficients.
///
/// ```
/// use cma_semiring::poly::{Polynomial, Var};
/// let x = Var::new("x");
/// let d = Var::new("d");
/// // 2*(d - x) + 4
/// let p = Polynomial::var(d.clone()).sub(&Polynomial::var(x.clone())).scale(2.0)
///     .add(&Polynomial::constant(4.0));
/// assert_eq!(p.eval(&|v| if *v == x { 1.0 } else { 3.0 }), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    /// Coefficients keyed by monomial; zero coefficients are never stored.
    terms: BTreeMap<Monomial, f64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        let mut p = Polynomial::zero();
        p.add_term(Monomial::unit(), c);
        p
    }

    /// The polynomial `v`.
    pub fn var(v: Var) -> Self {
        let mut p = Polynomial::zero();
        p.add_term(Monomial::var(v), 1.0);
        p
    }

    /// Builds a polynomial from `(monomial, coefficient)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, f64)>) -> Self {
        let mut p = Polynomial::zero();
        for (m, c) in terms {
            p.add_term(m, c);
        }
        p
    }

    /// Adds `c · m` to the polynomial in place.
    pub fn add_term(&mut self, m: Monomial, c: f64) {
        if c == 0.0 {
            return;
        }
        let entry = self.terms.entry(m).or_insert(0.0);
        *entry += c;
        if *entry == 0.0 {
            // Keep the representation canonical.
            let key = self
                .terms
                .iter()
                .find(|(_, v)| **v == 0.0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    /// Iterates over `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// The coefficient of a monomial (0 if absent).
    pub fn coefficient(&self, m: &Monomial) -> f64 {
        self.terms.get(m).copied().unwrap_or(0.0)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the polynomial is a constant, returning the constant if so.
    pub fn as_constant(&self) -> Option<f64> {
        if self.terms.is_empty() {
            return Some(0.0);
        }
        if self.terms.len() == 1 {
            if let Some(c) = self.terms.get(&Monomial::unit()) {
                return Some(*c);
            }
        }
        None
    }

    /// Total degree of the polynomial (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .terms
            .keys()
            .flat_map(|m| m.vars().cloned().collect::<Vec<_>>())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut result = self.clone();
        for (m, c) in other.terms() {
            result.add_term(m.clone(), c);
        }
        result
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        self.add(&other.scale(-1.0))
    }

    /// Scales every coefficient by `c`.
    pub fn scale(&self, c: f64) -> Polynomial {
        if c == 0.0 {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self.terms.iter().map(|(m, k)| (m.clone(), k * c)).collect(),
        }
    }

    /// Polynomial multiplication.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut result = Polynomial::zero();
        for (m1, c1) in self.terms() {
            for (m2, c2) in other.terms() {
                result.add_term(m1.mul(m2), c1 * c2);
            }
        }
        result
    }

    /// `k`-th power of the polynomial.
    pub fn pow(&self, k: u32) -> Polynomial {
        let mut result = Polynomial::constant(1.0);
        for _ in 0..k {
            result = result.mul(self);
        }
        result
    }

    /// Substitutes `v := replacement` throughout the polynomial.
    pub fn substitute(&self, v: &Var, replacement: &Polynomial) -> Polynomial {
        let mut result = Polynomial::zero();
        for (m, c) in self.terms() {
            let (e, rest) = m.split_var(v);
            let mut term = Polynomial::from_terms([(rest, c)]);
            if e > 0 {
                term = term.mul(&replacement.pow(e));
            }
            result = result.add(&term);
        }
        result
    }

    /// Evaluates the polynomial under a valuation.
    pub fn eval(&self, valuation: &dyn Fn(&Var) -> f64) -> f64 {
        self.terms().map(|(m, c)| c * m.eval(valuation)).sum()
    }

    /// Evaluates over an interval box: each variable ranges over an interval.
    ///
    /// Returns an interval guaranteed to contain the range of the polynomial
    /// over the box (standard interval arithmetic, not necessarily tight).
    pub fn eval_interval(&self, valuation: &dyn Fn(&Var) -> crate::Interval) -> crate::Interval {
        let mut acc = crate::Interval::point(0.0);
        for (m, c) in self.terms() {
            let mut term = crate::Interval::point(1.0);
            for (v, e) in m.iter() {
                term = term.mul(valuation(v).powi(e));
            }
            acc = acc.add(term.scale(c));
        }
        acc
    }

    /// Maximum absolute value of any coefficient (0 for the zero polynomial).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).fold(0.0, f64::max)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Display highest-degree terms first for readability.
        let mut terms: Vec<(&Monomial, f64)> = self.terms().collect();
        terms.sort_by(|a, b| b.0.degree().cmp(&a.0.degree()).then(a.0.cmp(b.0)));
        let mut first = true;
        for (m, c) in terms {
            let (sign, mag) = if c < 0.0 { ("-", -c) } else { ("+", c) };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if m.is_unit() {
                write!(f, "{mag}")?;
            } else if (mag - 1.0).abs() < 1e-12 {
                write!(f, "{m}")?;
            } else {
                write!(f, "{mag}*{m}")?;
            }
        }
        Ok(())
    }
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial::zero()
    }

    fn one() -> Self {
        Polynomial::constant(1.0)
    }

    fn add(&self, other: &Self) -> Self {
        Polynomial::add(self, other)
    }

    fn mul(&self, other: &Self) -> Self {
        Polynomial::mul(self, other)
    }

    fn scale_nat(&self, n: f64) -> Self {
        self.scale(n)
    }

    fn is_zero(&self) -> bool {
        Polynomial::is_zero(self)
    }
}

impl PartialOrderedSemiring for Polynomial {
    /// Coefficient-wise comparison: a *sufficient* (not complete) check used
    /// only in tests; the analysis itself compares polynomials under a logical
    /// context via certificates.
    fn leq(&self, other: &Self) -> bool {
        let mut monomials: Vec<Monomial> = self.terms.keys().cloned().collect();
        monomials.extend(other.terms.keys().cloned());
        monomials.sort();
        monomials.dedup();
        monomials
            .iter()
            .all(|m| self.coefficient(m) <= other.coefficient(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }

    #[test]
    fn var_display_and_eq() {
        assert_eq!(Var::new("foo").to_string(), "foo");
        assert_eq!(Var::new("a"), Var::from("a"));
        assert!(Var::new("a") < Var::new("b"));
    }

    #[test]
    fn monomial_basics() {
        let m = Monomial::var_pow(x(), 2).mul(&Monomial::var(y()));
        assert_eq!(m.degree(), 3);
        assert_eq!(m.exponent(&x()), 2);
        assert_eq!(m.exponent(&y()), 1);
        assert!(m.mentions(&x()));
        assert!(!m.mentions(&Var::new("z")));
        assert_eq!(m.to_string(), "x^2*y");
        assert_eq!(Monomial::unit().to_string(), "1");
        assert_eq!(Monomial::var_pow(x(), 0), Monomial::unit());
    }

    #[test]
    fn monomial_split_and_eval() {
        let m = Monomial::var_pow(x(), 2).mul(&Monomial::var(y()));
        let (e, rest) = m.split_var(&x());
        assert_eq!(e, 2);
        assert_eq!(rest, Monomial::var(y()));
        let val = |v: &Var| if *v == x() { 3.0 } else { 2.0 };
        assert_eq!(m.eval(&val), 18.0);
    }

    #[test]
    fn monomials_up_to_degree() {
        let ms = Monomial::all_up_to_degree(&[x(), y()], 2);
        // 1, x, x^2, y, y^2, x*y
        assert_eq!(ms.len(), 6);
        assert!(ms.contains(&Monomial::unit()));
        assert!(ms.contains(&Monomial::var(x()).mul(&Monomial::var(y()))));
        assert!(ms.iter().all(|m| m.degree() <= 2));
    }

    #[test]
    fn polynomial_construction_and_eval() {
        // p = 2x^2 - 3xy + 4
        let p = Polynomial::var(x())
            .pow(2)
            .scale(2.0)
            .sub(&Polynomial::var(x()).mul(&Polynomial::var(y())).scale(3.0))
            .add(&Polynomial::constant(4.0));
        assert_eq!(p.degree(), 2);
        let val = |v: &Var| if *v == x() { 2.0 } else { 1.0 };
        assert_eq!(p.eval(&val), 2.0 * 4.0 - 3.0 * 2.0 + 4.0);
        assert_eq!(p.coefficient(&Monomial::unit()), 4.0);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let p = Polynomial::var(x()).sub(&Polynomial::var(x()));
        assert!(p.is_zero());
        assert_eq!(p.as_constant(), Some(0.0));
        assert_eq!(p.to_string(), "0");
    }

    #[test]
    fn as_constant() {
        assert_eq!(Polynomial::constant(3.0).as_constant(), Some(3.0));
        assert_eq!(Polynomial::var(x()).as_constant(), None);
    }

    #[test]
    fn substitution_matches_manual_expansion() {
        // p = x^2 + y ; substitute x := y + 1  =>  y^2 + 2y + 1 + y = y^2 + 3y + 1
        let p = Polynomial::var(x()).pow(2).add(&Polynomial::var(y()));
        let repl = Polynomial::var(y()).add(&Polynomial::constant(1.0));
        let q = p.substitute(&x(), &repl);
        let expected = Polynomial::var(y())
            .pow(2)
            .add(&Polynomial::var(y()).scale(3.0))
            .add(&Polynomial::constant(1.0));
        assert_eq!(q, expected);
    }

    #[test]
    fn substitution_of_absent_variable_is_identity() {
        let p = Polynomial::var(x())
            .scale(5.0)
            .add(&Polynomial::constant(1.0));
        let q = p.substitute(&Var::new("z"), &Polynomial::constant(77.0));
        assert_eq!(p, q);
    }

    #[test]
    fn interval_evaluation_contains_point_evaluations() {
        let p = Polynomial::var(x())
            .pow(2)
            .sub(&Polynomial::var(x()).scale(3.0));
        let box_val = |_: &Var| crate::Interval::new(-1.0, 2.0);
        let range = p.eval_interval(&box_val);
        for t in [-1.0, -0.5, 0.0, 1.0, 1.5, 2.0] {
            let v = p.eval(&|_| t);
            assert!(range.contains(v), "{v} not in {range}");
        }
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::var(x())
            .pow(2)
            .scale(4.0)
            .add(&Polynomial::var(x()).scale(-22.0))
            .add(&Polynomial::constant(28.0));
        let s = p.to_string();
        assert!(s.contains("x^2"));
        assert!(s.contains("28"));
    }

    #[test]
    fn display_negative_leading_coefficient() {
        let p = Polynomial::var(x()).scale(-1.5);
        assert_eq!(p.to_string(), "-1.5*x");
    }

    #[test]
    fn coefficient_wise_order() {
        let p = Polynomial::var(x()).scale(2.0);
        let q = Polynomial::var(x())
            .scale(3.0)
            .add(&Polynomial::constant(1.0));
        assert!(p.leq(&q));
        assert!(!q.leq(&p));
    }

    fn arb_poly() -> impl Strategy<Value = Polynomial> {
        proptest::collection::vec((0u32..3, 0u32..3, -5.0f64..5.0), 0..6).prop_map(|terms| {
            Polynomial::from_terms(terms.into_iter().map(|(ex, ey, c)| {
                (
                    Monomial::var_pow(Var::new("x"), ex).mul(&Monomial::var_pow(Var::new("y"), ey)),
                    c,
                )
            }))
        })
    }

    proptest! {
        #[test]
        fn prop_add_commutes(p in arb_poly(), q in arb_poly()) {
            prop_assert_eq!(p.add(&q), q.add(&p));
        }

        #[test]
        fn prop_mul_distributes_over_add(p in arb_poly(), q in arb_poly(), r in arb_poly(),
                                         vx in -3.0f64..3.0, vy in -3.0f64..3.0) {
            let lhs = p.mul(&q.add(&r));
            let rhs = p.mul(&q).add(&p.mul(&r));
            let val = |v: &Var| if v.name() == "x" { vx } else { vy };
            prop_assert!((lhs.eval(&val) - rhs.eval(&val)).abs() < 1e-6);
        }

        #[test]
        fn prop_eval_homomorphism(p in arb_poly(), q in arb_poly(),
                                  vx in -3.0f64..3.0, vy in -3.0f64..3.0) {
            let val = |v: &Var| if v.name() == "x" { vx } else { vy };
            prop_assert!((p.add(&q).eval(&val) - (p.eval(&val) + q.eval(&val))).abs() < 1e-7);
            prop_assert!((p.mul(&q).eval(&val) - (p.eval(&val) * q.eval(&val))).abs() < 1e-5);
        }

        #[test]
        fn prop_substitute_then_eval(p in arb_poly(), vx in -2.0f64..2.0, vy in -2.0f64..2.0) {
            // Substituting x := y^2 then evaluating equals evaluating with x = vy^2.
            let repl = Polynomial::var(Var::new("y")).pow(2);
            let substituted = p.substitute(&Var::new("x"), &repl);
            let val_sub = |v: &Var| if v.name() == "x" { vx } else { vy };
            let val_direct = |v: &Var| if v.name() == "x" { vy * vy } else { vy };
            prop_assert!((substituted.eval(&val_sub) - p.eval(&val_direct)).abs() < 1e-6);
        }
    }
}
