//! Monte-Carlo operational cost semantics for Appl programs.
//!
//! This crate implements the operational semantics of Appl (Appendix B of the
//! paper) as a sampling interpreter.  It is used to
//!
//! * cross-check every bound the static analysis derives (a sound upper bound
//!   must exceed the empirical moment, a sound lower bound must not),
//! * estimate densities, skewness, and kurtosis for the case study of §6
//!   (Fig. 11 / Tab. 2), and
//! * provide the "ground truth" curves plotted next to the analytical tail
//!   bounds.
//!
//! # Example
//!
//! ```
//! use cma_appl::build::*;
//! use cma_sim::{simulate, SimConfig};
//!
//! // A fair coin flipped until it lands heads: expected 2 flips.
//! let program = ProgramBuilder::new()
//!     .function("flip", if_prob(0.5, seq([tick(1.0), call("flip")]), tick(1.0)))
//!     .main(call("flip"))
//!     .build()
//!     .unwrap();
//! let stats = simulate(&program, &SimConfig { trials: 20_000, seed: 7, ..Default::default() });
//! assert!((stats.mean() - 2.0).abs() < 0.1);
//! ```

pub mod interp;
pub mod stats;

pub use interp::{run_once, InterpError, SimConfig, Trial};
pub use stats::{simulate, simulate_with, try_simulate_with, CostSamples};
