//! A sampling interpreter for the operational semantics of Appl.
//!
//! Each run starts from the all-zero valuation (the initial configuration
//! `⟨λ_.0, S_main, Kstop, 0⟩` of Appendix C), optionally overridden by an
//! initial valuation, and executes until termination or until the step budget
//! is exhausted.
//!
//! Reads of variables that were never written (and not supplied via
//! [`SimConfig::initial`]) evaluate to `0.0` per the semantics, but each such
//! read is counted in [`Trial::uninit_reads`]; with
//! [`SimConfig::strict_init`] the first one aborts the trial with
//! [`InterpError::UninitializedRead`] instead.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use cma_appl::ast::{Cond, Expr, Stmt, StmtKind};
use cma_appl::Program;
use cma_semiring::poly::Var;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a simulation campaign.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Seed for the pseudo-random number generator (runs are reproducible).
    pub seed: u64,
    /// Maximum number of evaluation steps per trial before the trial is cut
    /// off (guards against non-terminating runs).
    pub max_steps: usize,
    /// Initial values for program variables (unmentioned variables start at 0).
    pub initial: Vec<(Var, f64)>,
    /// When set, a read of a variable that was never written aborts the trial
    /// with [`InterpError::UninitializedRead`] instead of silently reading 0.
    pub strict_init: bool,
    /// Wall-clock budget for the whole campaign, checked between trials: when
    /// it runs out, the remaining trials are skipped and the statistics cover
    /// the completed prefix (labeled via
    /// [`CostSamples::timed_out`](crate::CostSamples::timed_out)).  `None`
    /// (the default) runs every trial.
    pub timeout: Option<std::time::Duration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trials: 10_000,
            seed: 0xC0FFEE,
            max_steps: 1_000_000,
            initial: Vec::new(),
            strict_init: false,
            timeout: None,
        }
    }
}

/// The outcome of a single trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Total accumulated cost at termination.
    pub cost: f64,
    /// Number of statements executed.
    pub steps: usize,
    /// Whether the run terminated within the step budget.
    pub terminated: bool,
    /// Number of reads of variables that had never been written (each such
    /// read evaluated to the default 0).
    pub uninit_reads: usize,
}

/// Errors that abort a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A call targeted an unknown function (programs validated by
    /// [`cma_appl::Program::new`] cannot trigger this).
    UnknownFunction(String),
    /// Strict-init mode: a variable was read before it was ever written.
    UninitializedRead(Var),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            InterpError::UninitializedRead(v) => {
                write!(f, "variable `{v}` read before initialization")
            }
        }
    }
}

impl std::error::Error for InterpError {}

struct Machine<'a> {
    program: &'a Program,
    state: HashMap<Var, f64>,
    cost: f64,
    steps: usize,
    max_steps: usize,
    rng: StdRng,
    strict: bool,
    // Interior mutability: `Expr::eval` takes an immutable `&dyn Fn` valuation,
    // so read-tracking must not borrow the machine mutably.
    uninit_reads: Cell<usize>,
    strict_violation: RefCell<Option<Var>>,
}

impl<'a> Machine<'a> {
    fn lookup(&self, v: &Var) -> f64 {
        match self.state.get(v) {
            Some(value) => *value,
            None => {
                self.uninit_reads.set(self.uninit_reads.get() + 1);
                if self.strict {
                    let mut violation = self.strict_violation.borrow_mut();
                    if violation.is_none() {
                        *violation = Some(v.clone());
                    }
                }
                0.0
            }
        }
    }

    /// Surfaces a strict-mode violation recorded during an evaluation.
    fn check_strict(&self) -> Result<(), InterpError> {
        if let Some(v) = self.strict_violation.borrow_mut().take() {
            return Err(InterpError::UninitializedRead(v));
        }
        Ok(())
    }

    fn eval_expr(&self, e: &Expr) -> Result<f64, InterpError> {
        let value = e.eval(&|v| self.lookup(v));
        self.check_strict()?;
        Ok(value)
    }

    fn eval_cond(&self, c: &Cond) -> Result<bool, InterpError> {
        let value = c.eval(&|v| self.lookup(v));
        self.check_strict()?;
        Ok(value)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<bool, InterpError> {
        if self.steps >= self.max_steps {
            return Ok(false);
        }
        self.steps += 1;
        match stmt.kind() {
            StmtKind::Skip => Ok(true),
            StmtKind::Tick(c) => {
                self.cost += c;
                Ok(true)
            }
            StmtKind::Assign(x, e) => {
                let value = self.eval_expr(e)?;
                self.state.insert(x.clone(), value);
                Ok(true)
            }
            StmtKind::Sample(x, d) => {
                let u: f64 = self.rng.gen();
                self.state.insert(x.clone(), d.sample_with(u));
                Ok(true)
            }
            StmtKind::Call(f) => {
                let func = self
                    .program
                    .function(f)
                    .ok_or_else(|| InterpError::UnknownFunction(f.clone()))?;
                self.exec(func.body())
            }
            StmtKind::If(c, s1, s2) => {
                if self.eval_cond(c)? {
                    self.exec(s1)
                } else {
                    self.exec(s2)
                }
            }
            StmtKind::IfProb(p, s1, s2) => {
                let u: f64 = self.rng.gen();
                if u < *p {
                    self.exec(s1)
                } else {
                    self.exec(s2)
                }
            }
            StmtKind::While(c, body) => {
                while self.eval_cond(c)? {
                    if self.steps >= self.max_steps {
                        return Ok(false);
                    }
                    self.steps += 1;
                    if !self.exec(body)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            StmtKind::Seq(stmts) => {
                for s in stmts {
                    if !self.exec(s)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

/// Executes one trial of the program with the given RNG seed.
///
/// # Errors
///
/// Returns [`InterpError::UnknownFunction`] when a call targets an undeclared
/// function (impossible for validated programs), or
/// [`InterpError::UninitializedRead`] in strict-init mode when a variable is
/// read before it was written.
pub fn run_once(program: &Program, config: &SimConfig, seed: u64) -> Result<Trial, InterpError> {
    let mut machine = Machine {
        program,
        state: config.initial.iter().cloned().collect(),
        cost: 0.0,
        steps: 0,
        max_steps: config.max_steps,
        rng: StdRng::seed_from_u64(seed),
        strict: config.strict_init,
        uninit_reads: Cell::new(0),
        strict_violation: RefCell::new(None),
    };
    let terminated = machine.exec(program.main())?;
    Ok(Trial {
        cost: machine.cost,
        steps: machine.steps,
        terminated,
        uninit_reads: machine.uninit_reads.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;

    #[test]
    fn deterministic_straight_line_cost() {
        let program = ProgramBuilder::new()
            .main(seq([tick(1.5), tick(2.0), tick(-0.5)]))
            .build()
            .unwrap();
        let trial = run_once(&program, &SimConfig::default(), 1).unwrap();
        assert_eq!(trial.cost, 3.0);
        assert!(trial.terminated);
        assert_eq!(trial.uninit_reads, 0);
    }

    #[test]
    fn assignments_and_conditionals() {
        let program = ProgramBuilder::new()
            .main(seq([
                assign("x", cst(3.0)),
                assign("x", add(v("x"), cst(2.0))),
                if_then_else(ge(v("x"), cst(5.0)), tick(10.0), tick(1.0)),
            ]))
            .build()
            .unwrap();
        let trial = run_once(&program, &SimConfig::default(), 3).unwrap();
        assert_eq!(trial.cost, 10.0);
    }

    #[test]
    fn while_loop_counts_iterations() {
        let program = ProgramBuilder::new()
            .main(seq([
                assign("i", cst(0.0)),
                while_loop(
                    lt(v("i"), cst(10.0)),
                    seq([assign("i", add(v("i"), cst(1.0))), tick(1.0)]),
                ),
            ]))
            .build()
            .unwrap();
        let trial = run_once(&program, &SimConfig::default(), 5).unwrap();
        assert_eq!(trial.cost, 10.0);
    }

    #[test]
    fn initial_valuation_is_respected() {
        let program = ProgramBuilder::new()
            .main(if_then_else(gt(v("d"), cst(5.0)), tick(1.0), tick(0.0)))
            .build()
            .unwrap();
        let config = SimConfig {
            initial: vec![(Var::new("d"), 10.0)],
            ..Default::default()
        };
        assert_eq!(run_once(&program, &config, 0).unwrap().cost, 1.0);
        assert_eq!(
            run_once(&program, &SimConfig::default(), 0).unwrap().cost,
            0.0
        );
    }

    #[test]
    fn step_budget_cuts_off_divergence() {
        let program = ProgramBuilder::new()
            .main(while_loop(tt(), tick(1.0)))
            .build()
            .unwrap();
        let config = SimConfig {
            max_steps: 100,
            ..Default::default()
        };
        let trial = run_once(&program, &config, 0).unwrap();
        assert!(!trial.terminated);
        assert!(trial.steps >= 100);
    }

    #[test]
    fn recursion_through_calls() {
        // A function that recurses exactly `n` times.
        let program = ProgramBuilder::new()
            .function(
                "count",
                if_then(
                    gt(v("n"), cst(0.0)),
                    seq([assign("n", sub(v("n"), cst(1.0))), tick(1.0), call("count")]),
                ),
            )
            .main(seq([assign("n", cst(7.0)), call("count")]))
            .build()
            .unwrap();
        let trial = run_once(&program, &SimConfig::default(), 11).unwrap();
        assert_eq!(trial.cost, 7.0);
    }

    #[test]
    fn sampling_and_probabilistic_branching_are_seed_deterministic() {
        let program = ProgramBuilder::new()
            .main(seq([
                sample("t", uniform(0.0, 1.0)),
                if_prob(0.5, tick(1.0), tick(2.0)),
            ]))
            .build()
            .unwrap();
        let a = run_once(&program, &SimConfig::default(), 42).unwrap();
        let b = run_once(&program, &SimConfig::default(), 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uninitialized_reads_are_counted() {
        // `y := x + 1` reads x before any write; the guard then reads y (now
        // initialized) — exactly one uninitialized read.
        let program = ProgramBuilder::new()
            .main(seq([
                assign("y", add(v("x"), cst(1.0))),
                if_then(gt(v("y"), cst(0.0)), tick(1.0)),
            ]))
            .build()
            .unwrap();
        let trial = run_once(&program, &SimConfig::default(), 7).unwrap();
        assert_eq!(trial.uninit_reads, 1);
        assert_eq!(trial.cost, 1.0);

        // Supplying the variable via the initial valuation silences the count.
        let config = SimConfig {
            initial: vec![(Var::new("x"), 2.0)],
            ..Default::default()
        };
        assert_eq!(run_once(&program, &config, 7).unwrap().uninit_reads, 0);
    }

    #[test]
    fn strict_init_aborts_on_first_uninitialized_read() {
        let program = ProgramBuilder::new()
            .main(assign("y", v("x")))
            .build()
            .unwrap();
        let config = SimConfig {
            strict_init: true,
            ..Default::default()
        };
        let err = run_once(&program, &config, 0).unwrap_err();
        assert_eq!(err, InterpError::UninitializedRead(Var::new("x")));
        assert!(err.to_string().contains('x'));

        // Initialized programs run to completion in strict mode.
        let ok = ProgramBuilder::new()
            .main(seq([assign("x", cst(1.0)), assign("y", v("x"))]))
            .build()
            .unwrap();
        assert!(run_once(&ok, &config, 0).unwrap().terminated);
    }
}
