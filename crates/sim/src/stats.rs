//! Sample statistics over simulated cost accumulators.

use cma_appl::Program;

use crate::interp::{run_once, InterpError, SimConfig, Trial};

/// The empirical distribution of the accumulated cost over many trials.
#[derive(Debug, Clone)]
pub struct CostSamples {
    costs: Vec<f64>,
    cutoff_trials: usize,
    uninit_reads: usize,
    timed_out: bool,
}

impl CostSamples {
    /// Builds the statistics object from raw samples.
    pub fn from_costs(costs: Vec<f64>) -> Self {
        CostSamples {
            costs,
            cutoff_trials: 0,
            uninit_reads: 0,
            timed_out: false,
        }
    }

    /// The raw samples.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Number of trials that hit the step budget before terminating.
    pub fn cutoff_trials(&self) -> usize {
        self.cutoff_trials
    }

    /// Total number of reads-before-initialization across all trials (each
    /// such read silently evaluated to 0; see [`Trial::uninit_reads`]).
    pub fn uninit_reads(&self) -> usize {
        self.uninit_reads
    }

    /// Whether the campaign's wall-clock budget ([`SimConfig::timeout`]) ran
    /// out before all requested trials completed.  The statistics remain
    /// valid over the completed prefix — this flag labels them as truncated.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The empirical raw moment `E[X^k]`.
    pub fn raw_moment(&self, k: u32) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        self.costs.iter().map(|c| c.powi(k as i32)).sum::<f64>() / self.costs.len() as f64
    }

    /// The empirical mean.
    pub fn mean(&self) -> f64 {
        self.raw_moment(1)
    }

    /// The empirical central moment `E[(X − E[X])^k]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.costs
            .iter()
            .map(|c| (c - mean).powi(k as i32))
            .sum::<f64>()
            / self.costs.len() as f64
    }

    /// The empirical variance.
    pub fn variance(&self) -> f64 {
        self.central_moment(2)
    }

    /// The empirical skewness `E[(X−E[X])³] / V[X]^{3/2}`.
    pub fn skewness(&self) -> f64 {
        let var = self.variance();
        if var <= 0.0 {
            return 0.0;
        }
        self.central_moment(3) / var.powf(1.5)
    }

    /// The empirical kurtosis `E[(X−E[X])⁴] / V[X]²`.
    pub fn kurtosis(&self) -> f64 {
        let var = self.variance();
        if var <= 0.0 {
            return 0.0;
        }
        self.central_moment(4) / (var * var)
    }

    /// The empirical tail probability `P[X ≥ threshold]`.
    pub fn tail_probability(&self, threshold: f64) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        self.costs.iter().filter(|&&c| c >= threshold).count() as f64 / self.costs.len() as f64
    }

    /// The maximum observed cost.
    pub fn max(&self) -> f64 {
        self.costs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The minimum observed cost.
    pub fn min(&self) -> f64 {
        self.costs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// A normalized histogram (density estimate) over `bins` equal-width bins
    /// spanning the observed range, as `(bin_center, density)` pairs.
    pub fn density(&self, bins: usize) -> Vec<(f64, f64)> {
        if self.costs.is_empty() || bins == 0 {
            return Vec::new();
        }
        let min = self.min();
        let max = self.max();
        let width = ((max - min) / bins as f64).max(1e-12);
        let mut counts = vec![0usize; bins];
        for &c in &self.costs {
            let idx = (((c - min) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let n = self.costs.len() as f64;
        counts
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let center = min + (i as f64 + 0.5) * width;
                (center, count as f64 / (n * width))
            })
            .collect()
    }
}

/// Simulates a program under the given configuration, collecting the cost of
/// every trial.
pub fn simulate(program: &Program, config: &SimConfig) -> CostSamples {
    simulate_with(program, config, |_| {})
}

/// Like [`simulate`], but also invokes `observer` on every completed trial
/// (useful to collect auxiliary statistics such as step counts).
pub fn simulate_with(
    program: &Program,
    config: &SimConfig,
    observer: impl FnMut(&Trial),
) -> CostSamples {
    try_simulate_with(program, config, observer)
        .expect("validated programs cannot fail to interpret")
}

/// Like [`simulate_with`], but propagates interpreter errors instead of
/// panicking — required for [`SimConfig::strict_init`], where a trial may
/// legitimately abort on an uninitialized read.
///
/// # Errors
///
/// Returns the first [`InterpError`] raised by any trial.
pub fn try_simulate_with(
    program: &Program,
    config: &SimConfig,
    mut observer: impl FnMut(&Trial),
) -> Result<CostSamples, InterpError> {
    let deadline = config.timeout.map(|t| std::time::Instant::now() + t);
    let mut costs = Vec::with_capacity(config.trials);
    let mut cutoffs = 0usize;
    let mut uninit = 0usize;
    let mut timed_out = false;
    for i in 0..config.trials {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            timed_out = true;
            break;
        }
        let trial = run_once(program, config, config.seed.wrapping_add(i as u64))?;
        if !trial.terminated {
            cutoffs += 1;
        }
        uninit += trial.uninit_reads;
        observer(&trial);
        costs.push(trial.cost);
    }
    Ok(CostSamples {
        costs,
        cutoff_trials: cutoffs,
        uninit_reads: uninit,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cma_appl::build::*;
    use cma_semiring::poly::Var;

    fn geometric_program() -> Program {
        // Flip a fair coin until heads, ticking once per flip: Geometric(1/2).
        ProgramBuilder::new()
            .function(
                "flip",
                if_prob(0.5, seq([tick(1.0), call("flip")]), tick(1.0)),
            )
            .main(call("flip"))
            .build()
            .unwrap()
    }

    #[test]
    fn constant_cost_statistics() {
        let s = CostSamples::from_costs(vec![3.0; 100]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.raw_moment(2), 9.0);
        assert_eq!(s.skewness(), 0.0);
        assert_eq!(s.kurtosis(), 0.0);
        assert_eq!(s.tail_probability(2.0), 1.0);
        assert_eq!(s.tail_probability(4.0), 0.0);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_samples_are_harmless() {
        let s = CostSamples::from_costs(vec![]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.density(10).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn geometric_cost_moments_match_theory() {
        // For Geometric(p = 1/2) starting at 1: E = 2, V = 2, E[X²] = 6.
        let program = geometric_program();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 40_000,
                seed: 123,
                ..Default::default()
            },
        );
        assert!((stats.mean() - 2.0).abs() < 0.05);
        assert!((stats.variance() - 2.0).abs() < 0.15);
        assert!((stats.raw_moment(2) - 6.0).abs() < 0.4);
        assert_eq!(stats.cutoff_trials(), 0);
    }

    #[test]
    fn uniform_sampling_statistics() {
        let program = ProgramBuilder::new()
            .main(seq([
                sample("t", uniform(-1.0, 2.0)),
                // cost = t (via two ticks to exercise accumulation of variables):
                // tick cannot take an expression, so branch on t's sign instead.
                if_then_else(ge(v("t"), cst(0.5)), tick(1.0), tick(0.0)),
            ]))
            .build()
            .unwrap();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 30_000,
                seed: 7,
                ..Default::default()
            },
        );
        // P[t >= 0.5] for uniform(-1,2) is 0.5.
        assert!((stats.mean() - 0.5).abs() < 0.02);
    }

    #[test]
    fn initial_valuation_controls_loop_length() {
        let program = ProgramBuilder::new()
            .main(while_loop(
                gt(v("n"), cst(0.0)),
                seq([assign("n", sub(v("n"), cst(1.0))), tick(2.0)]),
            ))
            .build()
            .unwrap();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 10,
                seed: 3,
                initial: vec![(Var::new("n"), 6.0)],
                ..Default::default()
            },
        );
        assert_eq!(stats.mean(), 12.0);
        assert_eq!(stats.min(), 12.0);
        assert_eq!(stats.max(), 12.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let program = geometric_program();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 5_000,
                seed: 11,
                ..Default::default()
            },
        );
        let density = stats.density(20);
        assert_eq!(density.len(), 20);
        let width = (stats.max() - stats.min()) / 20.0;
        let mass: f64 = density.iter().map(|(_, d)| d * width).sum();
        assert!((mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn observer_sees_every_trial() {
        let program = geometric_program();
        let mut steps = 0usize;
        let stats = simulate_with(
            &program,
            &SimConfig {
                trials: 100,
                seed: 5,
                ..Default::default()
            },
            |t| steps += t.steps,
        );
        assert_eq!(stats.len(), 100);
        assert!(steps > 0);
    }

    #[test]
    fn expired_timeout_truncates_trials_and_labels_the_stats() {
        let program = geometric_program();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 1_000,
                seed: 9,
                timeout: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(stats.timed_out());
        assert!(stats.len() < 1_000);
        // Untruncated campaigns must not carry the label.
        let full = simulate(
            &program,
            &SimConfig {
                trials: 50,
                seed: 9,
                ..Default::default()
            },
        );
        assert!(!full.timed_out());
        assert_eq!(full.len(), 50);
    }

    #[test]
    fn skewness_and_kurtosis_of_geometric_are_positive() {
        let program = geometric_program();
        let stats = simulate(
            &program,
            &SimConfig {
                trials: 30_000,
                seed: 17,
                ..Default::default()
            },
        );
        // Geometric distributions are right-skewed with heavy tails.
        assert!(stats.skewness() > 1.0);
        assert!(stats.kurtosis() > 5.0);
    }
}
