//! Property tests pinning the basis-factorization seam to the reference.
//!
//! * **factor agreement** — on random LPs, solving with the Markowitz-LU
//!   factorization must agree with the dense-inverse factorization (and
//!   with the raw dense reference solve) on status and optimal objective,
//!   across the pricing × presolve matrix and both backends.  The
//!   factorization changes the linear algebra, never the answer.
//! * **dual-vs-primal warm resolve** — a session that receives rows
//!   incrementally under the dual-simplex strategy must agree with the same
//!   session under the legacy phase-1 strategy and with a from-scratch
//!   solve of the assembled problem, for every factorization.

use cma_lp::{
    Cmp, DualPricing, DualRatio, FactorKind, LpBackend, LpProblem, LpStatus, LpVarId, PricingRule,
    SimplexBackend, SolverTuning, SparseBackend, TunedBackend, WarmStrategy,
};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

/// Deterministically decodes a generated seed vector into an LP (same shape
/// as `dense_sparse_agreement`): a mix of free/non-negative variables,
/// Le/Ge/Eq rows with small half-integer coefficients, and a signed
/// objective.  Infeasible and unbounded instances are generated on purpose.
fn decode(seed: &[(f64, f64, f64)], vars: usize) -> (LpProblem, Vec<LpVarId>) {
    let mut lp = LpProblem::new();
    let ids: Vec<LpVarId> = (0..vars)
        .map(|i| lp.add_var(format!("v{i}"), i % 3 == 0))
        .collect();
    for (i, &(a, b, c)) in seed.iter().enumerate() {
        let terms: Vec<(LpVarId, f64)> = ids
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((a * (j as f64 + 1.0) + b).sin() * 4.0).round() / 2.0))
            .filter(|&(_, coeff)| coeff != 0.0)
            .collect();
        let cmp = match i % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(terms, cmp, (c * 10.0).round() / 2.0);
    }
    lp.set_objective(
        ids.iter()
            .enumerate()
            .map(|(j, &v)| (v, if j % 2 == 0 { 1.0 } else { 0.5 }))
            .collect(),
    );
    (lp, ids)
}

fn statuses_agree(a: &cma_lp::LpSolution, b: &cma_lp::LpSolution) -> bool {
    a.status == b.status
        || a.status == LpStatus::BudgetExhausted
        || b.status == LpStatus::BudgetExhausted
}

proptest! {
    #[test]
    fn lu_factorization_agrees_with_dense_inverse(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
    ) {
        let (lp, _ids) = decode(&seed, vars);
        let reference = lp.solve();
        for pricing in PricingRule::ALL {
            for presolve in [true, false] {
                for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
                    let solve = |factor: FactorKind| {
                        let tuning = SolverTuning { pricing, presolve, factor,
                            ..SolverTuning::default() };
                        TunedBackend::new(backend, tuning).solve(&lp)
                    };
                    let dense = solve(FactorKind::Dense);
                    let lu = solve(FactorKind::Lu);
                    prop_assert!(
                        statuses_agree(&dense, &lu) && statuses_agree(&reference, &lu),
                        "status mismatch: reference {:?}, dense-factor {:?}, lu {:?} \
                         ({}/{pricing}/presolve={presolve})",
                        reference.status,
                        dense.status,
                        lu.status,
                        backend.name(),
                    );
                    if dense.status == LpStatus::Optimal && lu.status == LpStatus::Optimal {
                        prop_assert!(
                            (dense.objective - lu.objective).abs()
                                <= TOL * (1.0 + dense.objective.abs()),
                            "objective mismatch: dense-factor {} vs lu {} \
                             ({}/{pricing}/presolve={presolve})",
                            dense.objective,
                            lu.objective,
                            backend.name(),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dual_and_phase1_warm_resolves_agree_on_incremental_rows(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 2..8),
        vars in 1usize..5,
        split in 1usize..4,
    ) {
        // Open a session on a prefix of the rows, feed the rest
        // incrementally under both warm-resolve strategies and both
        // factorizations, and compare against a dense from-scratch solve of
        // the full system.
        let (full, ids) = decode(&seed, vars);
        let split = split.min(full.num_constraints());
        let mut prefix = LpProblem::new();
        for &v in &ids {
            prefix.add_var(full.var_name(v), full.is_free(v));
        }
        for i in 0..split {
            let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
            prefix.add_constraint(terms, full.cmp(i), full.rhs(i));
        }
        let reference = SimplexBackend.solve(&full);
        for factor in FactorKind::ALL {
            for warm in [WarmStrategy::Dual, WarmStrategy::Phase1] {
                let tuning = SolverTuning { factor, warm, ..SolverTuning::default() };
                let mut session = SparseBackend.open_with(&prefix, &tuning);
                session.minimize(full.objective());
                for i in split..full.num_constraints() {
                    let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
                    session.add_constraint(&terms, full.cmp(i), full.rhs(i));
                }
                let incremental = session.minimize(full.objective());
                prop_assert!(
                    statuses_agree(&reference, &incremental),
                    "status mismatch after incremental rows ({factor}/{warm}): \
                     scratch {:?} vs warm {:?}",
                    reference.status,
                    incremental.status
                );
                if reference.status == LpStatus::Optimal
                    && incremental.status == LpStatus::Optimal
                {
                    prop_assert!(
                        (reference.objective - incremental.objective).abs()
                            <= TOL * (1.0 + reference.objective.abs()),
                        "objective mismatch after incremental rows ({factor}/{warm}): \
                         scratch {} vs warm {}",
                        reference.objective,
                        incremental.objective
                    );
                }
                if warm == WarmStrategy::Phase1 {
                    prop_assert_eq!(incremental.stats.dual_pivots, 0);
                }
            }
        }
    }

    /// The dual-knob matrix: every combination of ratio test (bound-flipping
    /// long step vs classic Harris) and leaving-row pricing (devex vs exact
    /// steepest edge) must reach the same verdict and the same optimum — to
    /// 1e-6 — as a cold phase-1 restart and a from-scratch reference solve,
    /// on both backends and both factorizations.  The knobs change the pivot
    /// path, never the answer.
    #[test]
    fn dual_knobs_agree_with_cold_phase1_on_incremental_rows(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 2..8),
        vars in 1usize..5,
        split in 1usize..4,
    ) {
        const KNOB_TOL: f64 = 1e-6;
        let (full, ids) = decode(&seed, vars);
        let split = split.min(full.num_constraints());
        let mut prefix = LpProblem::new();
        for &v in &ids {
            prefix.add_var(full.var_name(v), full.is_free(v));
        }
        for i in 0..split {
            let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
            prefix.add_constraint(terms, full.cmp(i), full.rhs(i));
        }
        let reference = SimplexBackend.solve(&full);
        for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
            for factor in FactorKind::ALL {
                let run = |tuning: SolverTuning| {
                    let mut session = backend.open_with(&prefix, &tuning);
                    session.minimize(full.objective());
                    for i in split..full.num_constraints() {
                        let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
                        session.add_constraint(&terms, full.cmp(i), full.rhs(i));
                    }
                    session.minimize(full.objective())
                };
                let cold = run(SolverTuning {
                    factor,
                    warm: WarmStrategy::Phase1,
                    ..SolverTuning::default()
                });
                prop_assert!(statuses_agree(&reference, &cold));
                for dual_pricing in DualPricing::ALL {
                    for dual_ratio in DualRatio::ALL {
                        let warm = run(SolverTuning {
                            factor,
                            warm: WarmStrategy::Dual,
                            dual_pricing,
                            dual_ratio,
                            ..SolverTuning::default()
                        });
                        let context = format!(
                            "{}/{factor}/{dual_pricing}/{dual_ratio}",
                            backend.name()
                        );
                        prop_assert!(
                            statuses_agree(&reference, &warm) && statuses_agree(&cold, &warm),
                            "{context}: verdict mismatch: scratch {:?}, phase-1 {:?}, dual {:?}",
                            reference.status,
                            cold.status,
                            warm.status
                        );
                        for (name, other) in [("scratch", &reference), ("phase-1", &cold)] {
                            if other.status == LpStatus::Optimal
                                && warm.status == LpStatus::Optimal
                            {
                                prop_assert!(
                                    (other.objective - warm.objective).abs()
                                        <= KNOB_TOL * (1.0 + other.objective.abs()),
                                    "{context}: bound diverged from {name}: {} vs {}",
                                    other.objective,
                                    warm.objective
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The headline scenario of the dual warm re-solve: a cutting row on an
/// optimal session is repaired by dual pivots — reported in `SolveStats` —
/// with no phase-1 restart, and both strategies land on the same optimum.
#[test]
fn cutting_row_resolves_via_dual_pivots() {
    for factor in FactorKind::ALL {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", false);
        let y = lp.add_var("y", false);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
        let objective = [(x, -1.0), (y, -2.0)];

        let dual_tuning = SolverTuning {
            factor,
            warm: WarmStrategy::Dual,
            ..SolverTuning::default()
        };
        let mut session = SparseBackend.open_with(&lp, &dual_tuning);
        assert!(session.minimize(&objective).is_optimal());
        session.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0); // cuts the optimum
        let dual = session.minimize(&objective);
        assert!(dual.is_optimal());
        assert!((dual.objective - (-5.0)).abs() < TOL);
        assert!(
            dual.stats.dual_pivots > 0,
            "{factor}: cutting row resolved without dual pivots"
        );

        let phase1_tuning = SolverTuning {
            factor,
            warm: WarmStrategy::Phase1,
            ..SolverTuning::default()
        };
        let mut legacy = SparseBackend.open_with(&lp, &phase1_tuning);
        assert!(legacy.minimize(&objective).is_optimal());
        legacy.add_constraint(&[(y, 1.0)], Cmp::Le, 1.0);
        let restart = legacy.minimize(&objective);
        assert!(restart.is_optimal());
        assert!((restart.objective - dual.objective).abs() < TOL);
        assert_eq!(restart.stats.dual_pivots, 0);
    }
}

/// Per-component tolerance for hyper-sparse vs dense-scan kernels: both run
/// over the *same* factorization, so they differ only in traversal order
/// and dropped ~0 entries — essentially bit-level agreement.
const KERNEL_TOL: f64 = 1e-9;

proptest! {
    /// On random solved LU bases, every kernel (ftran of each nonbasic
    /// column, btran of the objective costs, each row of B⁻¹) must produce
    /// the same vector on the hyper-sparse path and pinned to the dense
    /// scan (`force_dense`).  The hyper-sparse traversal is an access-order
    /// optimization, never an answer change.
    #[test]
    fn hyper_sparse_kernels_agree_with_dense_scan(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
    ) {
        let (lp, _ids) = decode(&seed, vars);
        let tuning = SolverTuning::with_factor(FactorKind::Lu);
        // Infeasible/unbounded decodes have no basis to probe.
        let Some(mut fx) = cma_lp::bench_support::KernelFixture::solve(&lp, &tuning) else {
            return;
        };
        let (mut hyper, mut dense) = (Vec::new(), Vec::new());
        let check = |hyper: &[f64], dense: &[f64], what: &str| {
            for (i, (h, d)) in hyper.iter().zip(dense).enumerate() {
                assert!(
                    (h - d).abs() <= KERNEL_TOL,
                    "{what}[{i}]: hyper {h} vs dense {d}"
                );
            }
        };
        for j in fx.nonbasic_cols() {
            fx.force_dense(false);
            fx.ftran_into(j, &mut hyper);
            fx.force_dense(true);
            fx.ftran_into(j, &mut dense);
            check(&hyper, &dense, "ftran");
        }
        fx.force_dense(false);
        fx.btran_into(&mut hyper);
        fx.force_dense(true);
        fx.btran_into(&mut dense);
        check(&hyper, &dense, "btran");
        for p in 0..fx.rows() {
            fx.force_dense(false);
            fx.inverse_row_into(p, &mut hyper);
            fx.force_dense(true);
            fx.inverse_row_into(p, &mut dense);
            check(&hyper, &dense, "inverse_row");
        }
    }
}
