//! Property tests pinning the presolve pass and the pricing rules to the
//! plain dense reference solver on randomly generated LPs.
//!
//! * **presolve round-trip** — presolve → solve → postsolve must agree with
//!   a direct (presolve-free) solve on status and optimal objective, and the
//!   postsolved point must satisfy every *original* constraint and domain
//!   (the reductions may rewrite the system, never the answer);
//! * **pricing agreement** — every pricing rule, on either backend, reaches
//!   the same optimal objective (pricing changes the pivot path, never the
//!   optimum).

use cma_lp::{
    Cmp, LpBackend, LpProblem, LpStatus, LpVarId, PricingRule, SimplexBackend, SolverTuning,
    SparseBackend, TunedBackend,
};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

/// Deterministically decodes a generated seed vector into an LP (same shape
/// as `dense_sparse_agreement`): a mix of free/non-negative variables,
/// Le/Ge/Eq rows with small half-integer coefficients, and a signed
/// objective.  Infeasible and unbounded instances are generated on purpose.
/// Singleton and duplicate rows — exactly what presolve rewrites — occur
/// naturally at small variable counts.
fn decode(seed: &[(f64, f64, f64)], vars: usize) -> (LpProblem, Vec<LpVarId>) {
    let mut lp = LpProblem::new();
    let ids: Vec<LpVarId> = (0..vars)
        .map(|i| lp.add_var(format!("v{i}"), i % 3 == 0))
        .collect();
    for (i, &(a, b, c)) in seed.iter().enumerate() {
        let terms: Vec<(LpVarId, f64)> = ids
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((a * (j as f64 + 1.0) + b).sin() * 4.0).round() / 2.0))
            .filter(|&(_, coeff)| coeff != 0.0)
            .collect();
        let cmp = match i % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(terms, cmp, (c * 10.0).round() / 2.0);
    }
    lp.set_objective(
        ids.iter()
            .enumerate()
            .map(|(j, &v)| (v, if j % 2 == 0 { 1.0 } else { 0.5 }))
            .collect(),
    );
    (lp, ids)
}

fn statuses_agree(a: &cma_lp::LpSolution, b: &cma_lp::LpSolution) -> bool {
    a.status == b.status
        || a.status == LpStatus::BudgetExhausted
        || b.status == LpStatus::BudgetExhausted
}

/// Checks that `solution` satisfies every constraint and domain of the
/// *original* problem within tolerance.
fn assert_feasible(lp: &LpProblem, ids: &[LpVarId], solution: &cma_lp::LpSolution) {
    for i in 0..lp.num_constraints() {
        let lhs: f64 = lp
            .constraint_terms(i)
            .map(|(v, c)| c * solution.value(v))
            .sum();
        let rhs = lp.rhs(i);
        let slack = TOL * (1.0 + rhs.abs());
        let ok = match lp.cmp(i) {
            Cmp::Le => lhs <= rhs + slack,
            Cmp::Ge => lhs >= rhs - slack,
            Cmp::Eq => (lhs - rhs).abs() <= slack,
        };
        assert!(ok, "row {i} violated: {lhs} vs {:?} {rhs}", lp.cmp(i));
    }
    for &v in ids {
        if !lp.is_free(v) {
            assert!(
                solution.value(v) >= -TOL,
                "domain violated: {}",
                solution.value(v)
            );
        }
    }
}

proptest! {
    #[test]
    fn presolved_solves_agree_with_direct_solves(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
    ) {
        let (lp, ids) = decode(&seed, vars);
        // Direct reference: the raw dense tableau, no presolve wrapper.
        let direct = lp.solve();
        for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
            let presolved = TunedBackend::new(backend, SolverTuning::default()).solve(&lp);
            prop_assert!(
                statuses_agree(&direct, &presolved),
                "status mismatch under presolve: direct {:?} vs {} {:?}",
                direct.status,
                backend.name(),
                presolved.status
            );
            if direct.status == LpStatus::Optimal && presolved.status == LpStatus::Optimal {
                prop_assert!(
                    (direct.objective - presolved.objective).abs()
                        <= TOL * (1.0 + direct.objective.abs()),
                    "objective mismatch under presolve: direct {} vs {} {}",
                    direct.objective,
                    backend.name(),
                    presolved.objective
                );
                // The postsolved point must satisfy the *original* system.
                prop_assert_eq!(presolved.values().len(), lp.num_vars());
                assert_feasible(&lp, &ids, &presolved);
            }
        }
    }

    #[test]
    fn all_pricing_rules_reach_the_same_optimum(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..8),
        vars in 1usize..6,
    ) {
        let (lp, ids) = decode(&seed, vars);
        let reference = lp.solve();
        for pricing in PricingRule::ALL {
            for backend in [&SimplexBackend as &dyn LpBackend, &SparseBackend] {
                let tuned = TunedBackend::new(backend, SolverTuning::with_pricing(pricing));
                let solution = tuned.solve(&lp);
                prop_assert!(
                    statuses_agree(&reference, &solution),
                    "status mismatch: reference {:?} vs {}/{} {:?}",
                    reference.status,
                    backend.name(),
                    pricing,
                    solution.status
                );
                if reference.status == LpStatus::Optimal && solution.status == LpStatus::Optimal {
                    prop_assert!(
                        (reference.objective - solution.objective).abs()
                            <= TOL * (1.0 + reference.objective.abs()),
                        "objective mismatch: reference {} vs {}/{} {}",
                        reference.objective,
                        backend.name(),
                        pricing,
                        solution.objective
                    );
                    assert_feasible(&lp, &ids, &solution);
                }
            }
        }
    }
}
