//! The [`LpBackend`] conformance suite.
//!
//! Every obligation of the backend contract (see `crates/lp/src/backend.rs`
//! and `DESIGN.md`) is exercised by `conformance::<B>()`, instantiated here
//! for the built-in [`SimplexBackend`].  A new backend earns its place by
//! adding one `#[test]` that calls the same function.

use cma_lp::{Cmp, LpBackend, LpProblem, LpStatus, SimplexBackend};

const TOL: f64 = 1e-6;

/// Runs the whole conformance suite against `backend`.
fn conformance<B: LpBackend>(backend: &B) {
    assert!(!backend.name().is_empty(), "backends must be nameable");
    solves_bounded_problems_to_optimality(backend);
    respects_equality_constraints(backend);
    handles_free_variables(backend);
    reports_infeasibility(backend);
    reports_unboundedness(backend);
    keeps_nonnegative_domains(backend);
    is_deterministic(backend);
    tolerates_empty_and_degenerate_problems(backend);
}

/// Obligation 1: feasible bounded problems come back `Optimal` with the
/// minimum attained.
fn solves_bounded_problems_to_optimality<B: LpBackend>(backend: &B) {
    // minimize -x - 2y  s.t.  x + y <= 4, y <= 3; optimum -7 at (1, 3).
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
    lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(
        (sol.objective - (-7.0)).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(x) - 1.0).abs() < TOL);
    assert!((sol.value(y) - 3.0).abs() < TOL);
}

/// Obligation 1 (equalities): `=` rows hold exactly at the solution.
fn respects_equality_constraints<B: LpBackend>(backend: &B) {
    // minimize x + y  s.t.  x + y = 5, x >= 2  → optimum 5 with x in [2, 5].
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
    lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 5.0).abs() < TOL);
    assert!((sol.value(x) + sol.value(y) - 5.0).abs() < TOL);
    assert!(sol.value(x) >= 2.0 - TOL);
}

/// Obligation 4 (free variables): sign-unrestricted variables may go negative.
fn handles_free_variables<B: LpBackend>(backend: &B) {
    // minimize z  s.t.  z >= -10  → optimum -10 (z free).
    let mut lp = LpProblem::new();
    let z = lp.add_var("z", true);
    lp.add_constraint(vec![(z, 1.0)], Cmp::Ge, -10.0);
    lp.set_objective(vec![(z, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(
        (sol.value(z) - (-10.0)).abs() < TOL,
        "free var hit {}",
        sol.value(z)
    );
}

/// Obligation 2: contradictory constraints are `Infeasible`.
fn reports_infeasibility<B: LpBackend>(backend: &B) {
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
    lp.set_objective(vec![(x, 1.0)]);
    assert_eq!(backend.solve(&lp).status, LpStatus::Infeasible);
}

/// Obligation 3: an objective unbounded below is `Unbounded`.
fn reports_unboundedness<B: LpBackend>(backend: &B) {
    // minimize -x  s.t.  x >= 0 (no upper bound).
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.0);
    lp.set_objective(vec![(x, -1.0)]);
    assert_eq!(backend.solve(&lp).status, LpStatus::Unbounded);
}

/// Obligation 4: non-negative variables stay ≥ 0 even when the objective
/// pushes them down.
fn keeps_nonnegative_domains<B: LpBackend>(backend: &B) {
    // minimize x + y  s.t.  x + y >= -5  → optimum 0 at the origin.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, -5.0);
    lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.value(x) >= -TOL && sol.value(y) >= -TOL);
    assert!(sol.objective.abs() < TOL);
}

/// Obligation 5: re-solving yields the identical outcome.
fn is_deterministic<B: LpBackend>(backend: &B) {
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..6)
        .map(|i| lp.add_var(format!("v{i}"), i % 2 == 0))
        .collect();
    for (i, pair) in vars.windows(2).enumerate() {
        lp.add_constraint(
            vec![(pair[0], 1.0), (pair[1], 0.5)],
            if i % 2 == 0 { Cmp::Le } else { Cmp::Ge },
            i as f64,
        );
    }
    lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
    let a = backend.solve(&lp);
    let b = backend.solve(&lp);
    assert_eq!(a.status, b.status);
    if a.status == LpStatus::Optimal {
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.values(), b.values());
    }
}

/// Obligation 6: degenerate input must not panic.
fn tolerates_empty_and_degenerate_problems<B: LpBackend>(backend: &B) {
    // No variables, no constraints.
    let empty = LpProblem::new();
    let sol = backend.solve(&empty);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.objective.abs() < TOL);

    // A variable that appears in no constraint, minimized: bounded at 0 for a
    // non-negative variable.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.set_objective(vec![(x, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.value(x).abs() < TOL);
}

#[test]
fn simplex_backend_conforms() {
    conformance(&SimplexBackend);
}

#[test]
fn borrowed_and_dyn_backends_conform() {
    // The blanket impl for references must preserve conformance.
    let backend = SimplexBackend;
    conformance(&&backend);
    let dynamic: &dyn LpBackend = &backend;
    conformance(&dynamic);
}
