//! The [`LpBackend`] conformance suite.
//!
//! Every obligation of the backend contract (see `crates/lp/src/backend.rs`
//! and `DESIGN.md`) is exercised by `conformance::<B>()`, instantiated here
//! for the built-in [`SimplexBackend`] and [`SparseBackend`].  A new backend
//! earns its place by adding one `#[test]` that calls the same function.
//! The suite covers both the one-shot `solve` path and the session
//! obligations (re-minimize determinism, incremental rows and columns).

use cma_lp::{
    Cmp, FactorKind, LpBackend, LpProblem, LpStatus, PricingRule, SimplexBackend, SolverTuning,
    SparseBackend, TunedBackend, WarmStrategy,
};

const TOL: f64 = 1e-6;

/// Runs the whole conformance suite against `backend`.
fn conformance<B: LpBackend>(backend: &B) {
    assert!(!backend.name().is_empty(), "backends must be nameable");
    solves_bounded_problems_to_optimality(backend);
    respects_equality_constraints(backend);
    handles_free_variables(backend);
    reports_infeasibility(backend);
    reports_unboundedness(backend);
    keeps_nonnegative_domains(backend);
    is_deterministic(backend);
    tolerates_empty_and_degenerate_problems(backend);
    session_matches_one_shot_solve(backend);
    session_reminimize_is_deterministic(backend);
    session_incremental_rows_match_scratch(backend);
    session_incremental_vars_match_scratch(backend);
    session_reports_infeasibility_of_added_rows(backend);
    batch_matches_sequential(backend);
}

/// Obligation 1: feasible bounded problems come back `Optimal` with the
/// minimum attained.
fn solves_bounded_problems_to_optimality<B: LpBackend>(backend: &B) {
    // minimize -x - 2y  s.t.  x + y <= 4, y <= 3; optimum -7 at (1, 3).
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
    lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(
        (sol.objective - (-7.0)).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(x) - 1.0).abs() < TOL);
    assert!((sol.value(y) - 3.0).abs() < TOL);
}

/// Obligation 1 (equalities): `=` rows hold exactly at the solution.
fn respects_equality_constraints<B: LpBackend>(backend: &B) {
    // minimize x + y  s.t.  x + y = 5, x >= 2  → optimum 5 with x in [2, 5].
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
    lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 5.0).abs() < TOL);
    assert!((sol.value(x) + sol.value(y) - 5.0).abs() < TOL);
    assert!(sol.value(x) >= 2.0 - TOL);
}

/// Obligation 4 (free variables): sign-unrestricted variables may go negative.
fn handles_free_variables<B: LpBackend>(backend: &B) {
    // minimize z  s.t.  z >= -10  → optimum -10 (z free).
    let mut lp = LpProblem::new();
    let z = lp.add_var("z", true);
    lp.add_constraint(vec![(z, 1.0)], Cmp::Ge, -10.0);
    lp.set_objective(vec![(z, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(
        (sol.value(z) - (-10.0)).abs() < TOL,
        "free var hit {}",
        sol.value(z)
    );
}

/// Obligation 2: contradictory constraints are `Infeasible`.
fn reports_infeasibility<B: LpBackend>(backend: &B) {
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
    lp.set_objective(vec![(x, 1.0)]);
    assert_eq!(backend.solve(&lp).status, LpStatus::Infeasible);
}

/// Obligation 3: an objective unbounded below is `Unbounded`.
fn reports_unboundedness<B: LpBackend>(backend: &B) {
    // minimize -x  s.t.  x >= 0 (no upper bound).
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.0);
    lp.set_objective(vec![(x, -1.0)]);
    assert_eq!(backend.solve(&lp).status, LpStatus::Unbounded);
}

/// Obligation 4: non-negative variables stay ≥ 0 even when the objective
/// pushes them down.
fn keeps_nonnegative_domains<B: LpBackend>(backend: &B) {
    // minimize x + y  s.t.  x + y >= -5  → optimum 0 at the origin.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, -5.0);
    lp.set_objective(vec![(x, 1.0), (y, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.value(x) >= -TOL && sol.value(y) >= -TOL);
    assert!(sol.objective.abs() < TOL);
}

/// Obligation 5: re-solving yields the identical outcome.
fn is_deterministic<B: LpBackend>(backend: &B) {
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..6)
        .map(|i| lp.add_var(format!("v{i}"), i % 2 == 0))
        .collect();
    for (i, pair) in vars.windows(2).enumerate() {
        lp.add_constraint(
            vec![(pair[0], 1.0), (pair[1], 0.5)],
            if i % 2 == 0 { Cmp::Le } else { Cmp::Ge },
            i as f64,
        );
    }
    lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
    let a = backend.solve(&lp);
    let b = backend.solve(&lp);
    assert_eq!(a.status, b.status);
    if a.status == LpStatus::Optimal {
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.values(), b.values());
    }
}

/// Obligation 6: degenerate input must not panic.
fn tolerates_empty_and_degenerate_problems<B: LpBackend>(backend: &B) {
    // No variables, no constraints.
    let empty = LpProblem::new();
    let sol = backend.solve(&empty);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.objective.abs() < TOL);

    // A variable that appears in no constraint, minimized: bounded at 0 for a
    // non-negative variable.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.set_objective(vec![(x, 1.0)]);
    let sol = backend.solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.value(x).abs() < TOL);
}

/// A reference polytope with a non-trivial optimum, reused by the session
/// obligations:  minimize -x - 2y  s.t.  x + y <= 4, y <= 3.
fn session_problem() -> (LpProblem, cma_lp::LpVarId, cma_lp::LpVarId) {
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
    (lp, x, y)
}

/// Obligation 1 via sessions: `open` + `minimize` agrees with `solve`.
fn session_matches_one_shot_solve<B: LpBackend>(backend: &B) {
    let (mut lp, x, y) = session_problem();
    lp.set_objective(vec![(x, -1.0), (y, -2.0)]);
    let one_shot = backend.solve(&lp);
    let via_session = backend.open(&lp).minimize(lp.objective());
    assert_eq!(one_shot.status, via_session.status);
    assert!((one_shot.objective - via_session.objective).abs() < TOL);
}

/// Obligation 5 (sessions): re-minimizing the same objective — including
/// after solving a different objective in between — yields identical results.
fn session_reminimize_is_deterministic<B: LpBackend>(backend: &B) {
    let (lp, x, y) = session_problem();
    let mut session = backend.open(&lp);
    let obj_a = [(x, -1.0), (y, -2.0)];
    let obj_b = [(x, 1.0), (y, 1.0)];
    let first = session.minimize(&obj_a);
    let between = session.minimize(&obj_b);
    let second = session.minimize(&obj_a);
    assert_eq!(first.status, LpStatus::Optimal);
    assert_eq!(first.status, second.status);
    assert_eq!(first.objective, second.objective, "re-minimize drifted");
    assert_eq!(first.values(), second.values());
    // The in-between objective is a genuinely different solve.
    assert!((between.objective - 0.0).abs() < TOL);
    assert!((first.objective - (-7.0)).abs() < TOL);
}

/// Soundness of incremental rows: a session extended row by row must agree
/// with solving the fully assembled problem from scratch.
fn session_incremental_rows_match_scratch<B: LpBackend>(backend: &B) {
    let (lp, x, y) = session_problem();
    let objective = [(x, -1.0), (y, -2.0)];
    let mut session = backend.open(&lp);
    assert!(session.minimize(&objective).is_optimal());

    // Layer three rows on top, one at a time, mixing satisfied rows, cutting
    // rows, and an equality; compare against a from-scratch solve each time.
    type Row<'a> = (&'a [(cma_lp::LpVarId, f64)], Cmp, f64);
    let additions: [Row; 3] = [
        (&[(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0), // already satisfied
        (&[(y, 1.0)], Cmp::Le, 1.0),           // cuts the current optimum
        (&[(x, 1.0)], Cmp::Eq, 2.0),           // equality pin
    ];
    let mut scratch = lp.clone();
    for (terms, cmp, rhs) in additions {
        session.add_constraint(terms, cmp, rhs);
        scratch.add_constraint(terms.to_vec(), cmp, rhs);
        scratch.set_objective(objective.to_vec());
        let incremental = session.minimize(&objective);
        let reference = backend.solve(&scratch);
        assert_eq!(incremental.status, reference.status);
        assert!(
            (incremental.objective - reference.objective).abs() < TOL,
            "incremental {} vs scratch {}",
            incremental.objective,
            reference.objective
        );
    }
    assert_eq!(session.num_constraints(), 5);
}

/// Soundness of incremental columns: a variable added mid-session behaves
/// exactly like one declared up front.
fn session_incremental_vars_match_scratch<B: LpBackend>(backend: &B) {
    let (lp, x, y) = session_problem();
    let mut session = backend.open(&lp);
    assert!(session.minimize(&[(x, -1.0), (y, -2.0)]).is_optimal());
    let z = session.add_var("z", true);
    session.add_constraint(&[(z, 1.0)], Cmp::Ge, -2.5);
    let sol = session.minimize(&[(z, 1.0)]);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(
        (sol.value(z) - (-2.5)).abs() < TOL,
        "free var {}",
        sol.value(z)
    );
    assert_eq!(session.num_vars(), 3);
}

/// Obligation 2 via sessions: rows that contradict the existing system flip
/// the session to `Infeasible`, deterministically.
fn session_reports_infeasibility_of_added_rows<B: LpBackend>(backend: &B) {
    let (lp, x, _y) = session_problem();
    let mut session = backend.open(&lp);
    assert!(session.minimize(&[(x, 1.0)]).is_optimal());
    session.add_constraint(&[(x, 1.0)], Cmp::Ge, 100.0); // x + y <= 4 forbids this
    assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
    assert_eq!(session.minimize(&[(x, 1.0)]).status, LpStatus::Infeasible);
}

/// `solve_batch` must agree with one-by-one solves regardless of thread count.
fn batch_matches_sequential<B: LpBackend>(backend: &B) {
    let problems: Vec<LpProblem> = (0..5)
        .map(|i| {
            let mut lp = LpProblem::new();
            let x = lp.add_var("x", false);
            let y = lp.add_var("y", i % 2 == 0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, i as f64 + 1.0);
            lp.add_constraint(vec![(y, 1.0)], Cmp::Ge, -1.0);
            lp.set_objective(vec![(x, -1.0), (y, 1.0)]);
            lp
        })
        .collect();
    let sequential: Vec<_> = problems.iter().map(|p| backend.solve(p)).collect();
    for threads in [1, 3, 8] {
        let batch = backend.solve_batch(&problems, threads);
        assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.status, s.status);
            assert!((b.objective - s.objective).abs() < TOL);
        }
    }
}

#[test]
fn simplex_backend_conforms() {
    conformance(&SimplexBackend);
}

#[test]
fn sparse_backend_conforms() {
    conformance(&SparseBackend);
}

/// The tuning matrix: dense/sparse × dantzig/devex/partial × presolve
/// on/off × dense-inverse/LU factorization — must all satisfy every session
/// obligation.  Pricing and factorization change the pivot *path* and the
/// linear algebra, never the contract.
#[test]
fn pricing_presolve_factor_matrix_conforms() {
    for pricing in PricingRule::ALL {
        for presolve in [true, false] {
            for factor in FactorKind::ALL {
                let tuning = SolverTuning {
                    pricing,
                    presolve,
                    factor,
                    ..SolverTuning::default()
                };
                conformance(&TunedBackend::new(SimplexBackend, tuning));
                conformance(&TunedBackend::new(SparseBackend, tuning));
            }
        }
    }
}

/// The legacy phase-1 warm-resolve strategy keeps satisfying the session
/// obligations (the dual strategy is the default and covered by the matrix
/// above).
#[test]
fn phase1_warm_strategy_conforms() {
    for factor in FactorKind::ALL {
        let tuning = SolverTuning {
            warm: WarmStrategy::Phase1,
            factor,
            ..SolverTuning::default()
        };
        conformance(&TunedBackend::new(SparseBackend, tuning));
    }
}

#[test]
fn borrowed_and_dyn_backends_conform() {
    // The blanket impl for references must preserve conformance.
    let backend = SimplexBackend;
    conformance(&&backend);
    let dynamic: &dyn LpBackend = &backend;
    conformance(&dynamic);
    let sparse = SparseBackend;
    let dynamic_sparse: &dyn LpBackend = &sparse;
    conformance(&dynamic_sparse);
}
