//! Property test pinning [`SparseBackend`] to the dense reference solver on
//! randomly generated LPs: statuses always agree, and optimal objective
//! values agree within tolerance — both through one-shot solves and through
//! a session that receives the rows incrementally.

use cma_lp::{Cmp, LpBackend, LpProblem, LpStatus, LpVarId, SimplexBackend, SparseBackend};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

/// Deterministically decodes a generated seed vector into an LP: a mix of
/// free/non-negative variables, Le/Ge/Eq rows with small coefficients, and a
/// signed objective.  Bounded below by construction only sometimes — the
/// generator intentionally produces infeasible and unbounded instances too.
fn decode(seed: &[(f64, f64, f64)], vars: usize) -> (LpProblem, Vec<LpVarId>) {
    let mut lp = LpProblem::new();
    let ids: Vec<LpVarId> = (0..vars)
        .map(|i| lp.add_var(format!("v{i}"), i % 3 == 0))
        .collect();
    for (i, &(a, b, c)) in seed.iter().enumerate() {
        let terms: Vec<(LpVarId, f64)> = ids
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((a * (j as f64 + 1.0) + b).sin() * 4.0).round() / 2.0))
            .filter(|&(_, coeff)| coeff != 0.0)
            .collect();
        let cmp = match i % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(terms, cmp, (c * 10.0).round() / 2.0);
    }
    lp.set_objective(
        ids.iter()
            .enumerate()
            .map(|(j, &v)| (v, if j % 2 == 0 { 1.0 } else { 0.5 }))
            .collect(),
    );
    (lp, ids)
}

fn statuses_agree(dense: &cma_lp::LpSolution, sparse: &cma_lp::LpSolution) -> bool {
    // Optimal/Infeasible/Unbounded must match exactly; BudgetExhausted on
    // either side (numerical exhaustion) is excused.
    dense.status == sparse.status
        || dense.status == LpStatus::BudgetExhausted
        || sparse.status == LpStatus::BudgetExhausted
}

proptest! {
    #[test]
    fn sparse_agrees_with_dense_on_random_lps(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
    ) {
        let (lp, _ids) = decode(&seed, vars);
        let dense = SimplexBackend.solve(&lp);
        let sparse = SparseBackend.solve(&lp);
        prop_assert!(
            statuses_agree(&dense, &sparse),
            "status mismatch: dense {:?} vs sparse {:?}",
            dense.status,
            sparse.status
        );
        if dense.status == LpStatus::Optimal && sparse.status == LpStatus::Optimal {
            prop_assert!(
                (dense.objective - sparse.objective).abs()
                    <= TOL * (1.0 + dense.objective.abs()),
                "objective mismatch: dense {} vs sparse {}",
                dense.objective,
                sparse.objective
            );
        }
    }

    #[test]
    fn sparse_sessions_agree_with_dense_under_incremental_rows(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 2..8),
        vars in 1usize..5,
        split in 1usize..4,
    ) {
        // Open the sparse session on a prefix of the rows, feed the rest
        // incrementally, and compare against a dense from-scratch solve of
        // the full system.
        let (full, ids) = decode(&seed, vars);
        let split = split.min(full.num_constraints());
        // Rebuild the same variable space (same creation order → same ids),
        // but only the first `split` rows.
        let mut prefix = LpProblem::new();
        for &v in &ids {
            prefix.add_var(full.var_name(v), full.is_free(v));
        }
        for i in 0..split {
            let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
            prefix.add_constraint(terms, full.cmp(i), full.rhs(i));
        }
        let mut session = SparseBackend.open(&prefix);
        session.minimize(full.objective());
        for i in split..full.num_constraints() {
            let terms: Vec<(LpVarId, f64)> = full.constraint_terms(i).collect();
            session.add_constraint(&terms, full.cmp(i), full.rhs(i));
        }
        let incremental = session.minimize(full.objective());
        let reference = SimplexBackend.solve(&full);
        prop_assert!(
            statuses_agree(&reference, &incremental),
            "status mismatch after incremental rows: dense {:?} vs sparse {:?}",
            reference.status,
            incremental.status
        );
        if reference.status == LpStatus::Optimal && incremental.status == LpStatus::Optimal {
            prop_assert!(
                (reference.objective - incremental.objective).abs()
                    <= TOL * (1.0 + reference.objective.abs()),
                "objective mismatch after incremental rows: dense {} vs sparse {}",
                reference.objective,
                incremental.objective
            );
        }
    }
}
