use cma_lp::{Cmp, LpBackend, LpProblem, SparseBackend};

#[test]
fn eq_row_added_at_satisfied_point_stays_enforced() {
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    let mut s = SparseBackend.open(&lp);
    let a = s.minimize(&[(x, -1.0), (y, -2.0)]);
    assert!(a.is_optimal());
    assert!((a.value(y) - 4.0).abs() < 1e-6, "y = {}", a.value(y));
    // Add y = 4, exactly satisfied by the current optimal point.
    s.add_constraint(&[(y, 1.0)], Cmp::Eq, 4.0);
    // Now minimize +y: the equality pins y = 4.
    let b = s.minimize(&[(y, 1.0)]);
    assert!(b.is_optimal(), "status {:?}", b.status);
    assert!(
        (b.value(y) - 4.0).abs() < 1e-6,
        "equality row violated: y = {} (expected 4)",
        b.value(y)
    );
}

#[test]
fn ge_row_added_at_satisfied_point_stays_enforced() {
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
    let mut s = SparseBackend.open(&lp);
    let a = s.minimize(&[(x, -1.0)]);
    assert!((a.value(x) - 5.0).abs() < 1e-6);
    // x >= 5, satisfied with equality at the current point.
    s.add_constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
    let b = s.minimize(&[(x, 1.0)]);
    assert!(b.is_optimal(), "status {:?}", b.status);
    assert!(
        (b.value(x) - 5.0).abs() < 1e-6,
        "ge row violated: x = {} (expected 5)",
        b.value(x)
    );
}
