//! Pins the zero-allocation contract of the kernel hot loop.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! session has warmed up (first minimize sizes the kernel workspace, a
//! cutting-row re-solve may grow it once for the new row), a steady-state
//! re-minimize must report `kernel_allocs == 0` — no ftran/btran/pricing
//! buffer was grown — and stay under a pinned total-allocation budget that
//! covers only the known non-kernel allocators (the refactorization
//! rebuild, `LuFactor::update`'s per-pivot spike, solution extraction).
//!
//! This file holds exactly one `#[test]`: the allocation counter is
//! process-global and a sibling test running concurrently would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cma_lp::{Cmp, FactorKind, LpBackend, LpProblem, SolverTuning, SparseBackend, TunedBackend};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Total allocator calls a steady-state warm re-minimize may spend.  The
/// kernel layer itself contributes zero (asserted separately through
/// `kernel_allocs`); what remains is the bounded non-kernel work of one
/// minimize: the confirmation refactorization's rebuild buffers, solution
/// extraction, and stats plumbing.  Observed: 19 calls on this fixture;
/// pinned at ~6× so a real per-iteration regression (which scales with
/// pivots × rows) blows through it while incidental churn does not.
const STEADY_STATE_ALLOC_BUDGET: u64 = 128;

#[test]
fn steady_state_minimize_keeps_kernels_allocation_free() {
    // The warmsmoke chain stand-in, sized below the parallel-seeding
    // threshold so the solve stays on one thread (worker-pool job boxes
    // would otherwise count against the budget).
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..40)
        .map(|i| lp.add_var(format!("x{i}"), false))
        .collect();
    for w in vars.windows(2) {
        lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Cmp::Ge, 1.0);
    }
    lp.add_constraint(vec![(vars[0], 1.0)], Cmp::Le, 400.0);
    let objective: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();

    let backend = TunedBackend::new(SparseBackend, SolverTuning::with_factor(FactorKind::Lu));
    let mut session = backend.open(&lp);

    // Warm-up: the first minimize sizes the kernel workspace (growth is
    // expected and counted by `kernel_allocs` only before first sizing).
    let first = session.minimize(&objective);
    assert!(
        first.is_optimal(),
        "warm-up solve must be optimal: {first:?}"
    );

    // A cutting row grows the basis by one; the workspace may grow once.
    session.add_constraint(&[(vars[0], 1.0)], Cmp::Ge, first.value(vars[0]) + 5.0);
    let recut = session.minimize(&objective);
    assert!(
        recut.is_optimal(),
        "cut re-solve must be optimal: {recut:?}"
    );
    assert!(
        recut.stats.kernel_allocs <= 1,
        "cut re-solve grew the kernel workspace {} times (expected ≤ 1)",
        recut.stats.kernel_allocs
    );

    // Steady state: same shapes, warm basis — the kernel workspace must
    // not grow at all, and total allocator traffic stays pinned.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let third = session.minimize(&objective);
    let spent = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert!(third.is_optimal(), "steady-state solve must be optimal");
    assert_eq!(
        third.stats.kernel_allocs, 0,
        "steady-state solve grew a kernel workspace buffer"
    );
    assert!(
        spent <= STEADY_STATE_ALLOC_BUDGET,
        "steady-state minimize made {spent} allocator calls \
         (budget {STEADY_STATE_ALLOC_BUDGET})"
    );
}
