//! Property and unit tests for the [`SolveBudget`] contract.
//!
//! * **verdict invariance** — a budgeted solve may return `BudgetExhausted`,
//!   but whenever it *does* reach a verdict that verdict matches the
//!   unbudgeted solve: running out of budget truncates the search, it never
//!   flips feasible to infeasible (or vice versa).
//! * **deadline slack** — a solve with a wall-clock deadline returns within
//!   the deadline plus a bounded slack (one pivot batch of cooperative
//!   cancellation latency), no matter the instance.
//! * **carry-over** — the budget spans a session's whole lifetime: repeated
//!   minimizes draw down the same iteration pool on both the stateful
//!   sparse session and the re-solving dense session.

use std::time::{Duration, Instant};

use cma_lp::{
    Cmp, LpBackend, LpProblem, LpStatus, LpVarId, SimplexBackend, SolveBudget, SolverTuning,
    SparseBackend,
};
use proptest::prelude::*;

/// Deterministically decodes a generated seed vector into an LP (same shape
/// as the agreement suites): free/non-negative variables, Le/Ge/Eq rows,
/// infeasible and unbounded instances generated on purpose.
fn decode(seed: &[(f64, f64, f64)], vars: usize) -> LpProblem {
    let mut lp = LpProblem::new();
    let ids: Vec<LpVarId> = (0..vars)
        .map(|i| lp.add_var(format!("v{i}"), i % 3 == 0))
        .collect();
    for (i, &(a, b, c)) in seed.iter().enumerate() {
        let terms: Vec<(LpVarId, f64)> = ids
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((a * (j as f64 + 1.0) + b).sin() * 4.0).round() / 2.0))
            .filter(|&(_, coeff)| coeff != 0.0)
            .collect();
        let cmp = match i % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(terms, cmp, (c * 10.0).round() / 2.0);
    }
    lp.set_objective(
        ids.iter()
            .enumerate()
            .map(|(j, &v)| (v, if j % 2 == 0 { 1.0 } else { 0.5 }))
            .collect(),
    );
    lp
}

/// Wall-clock slack allowed past the deadline: the cooperative check runs
/// once per pivot batch, so overshoot is a handful of pivots on these
/// instance sizes.  Generous for CI jitter, still far below a hang.
const DEADLINE_SLACK: Duration = Duration::from_millis(500);

proptest! {
    /// A budget never flips a verdict: for every iteration cap, the budgeted
    /// status is either `BudgetExhausted` or exactly the unbudgeted status.
    #[test]
    fn budget_exhaustion_never_flips_a_verdict(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
        cap in 1usize..40,
    ) {
        let lp = decode(&seed, vars);
        let unbudgeted = SparseBackend.solve(&lp);
        let tuning = SolverTuning::with_budget(SolveBudget::with_max_iters(cap));
        for backend in [&SparseBackend as &dyn LpBackend, &SimplexBackend] {
            let budgeted = backend.solve_with(&lp, &tuning);
            prop_assert!(
                budgeted.status == LpStatus::BudgetExhausted
                    || budgeted.status == unbudgeted.status,
                "cap {cap}: budgeted {:?} vs unbudgeted {:?}",
                budgeted.status,
                unbudgeted.status,
            );
            if budgeted.status == LpStatus::Optimal {
                prop_assert!(
                    (budgeted.objective - unbudgeted.objective).abs() < 1e-6,
                    "optimal under budget but objective drifted: {} vs {}",
                    budgeted.objective,
                    unbudgeted.objective,
                );
            }
        }
    }

    /// A wall-clock deadline is respected within the cooperative-check
    /// slack, and an already-expired deadline returns promptly.  The check
    /// period is tightened to 1 — every pivot polls the clock — so overshoot
    /// is bounded by a single pivot plus CI jitter, not a full period of
    /// heavy pivots.
    #[test]
    fn deadline_is_respected_within_slack(
        seed in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..9),
        vars in 1usize..6,
        timeout_ms in 0u64..20,
    ) {
        let lp = decode(&seed, vars);
        let budget = SolveBudget::with_timeout(Duration::from_millis(timeout_ms));
        let deadline = budget.deadline.expect("with_timeout sets a deadline");
        let tuning = SolverTuning {
            deadline_check_period: 1,
            ..SolverTuning::with_budget(budget)
        };
        let solution = SparseBackend.solve_with(&lp, &tuning);
        let finished = Instant::now();
        prop_assert!(
            finished <= deadline + DEADLINE_SLACK,
            "solve overshot its deadline by {:?}",
            finished.duration_since(deadline),
        );
        // Whatever the outcome, it is a real status — and if the deadline
        // cut the solve short, that is exactly what the status says.
        if solution.status != LpStatus::BudgetExhausted {
            let unbudgeted = SparseBackend.solve(&lp);
            prop_assert_eq!(solution.status, unbudgeted.status);
        }
    }
}

#[test]
fn expired_deadline_reports_exhaustion_not_infeasibility() {
    // A perfectly feasible system under an already-expired deadline must
    // report BudgetExhausted — never Infeasible.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
    lp.set_objective(vec![(x, 1.0)]);
    let expired = SolveBudget {
        deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..SolveBudget::UNLIMITED
    };
    for backend in [&SparseBackend as &dyn LpBackend, &SimplexBackend] {
        let sol = backend.solve_with(&lp, &SolverTuning::with_budget(expired));
        assert_eq!(sol.status, LpStatus::BudgetExhausted);
    }
}

#[test]
fn session_budget_carries_over_across_minimizes() {
    // One pool for the whole session: an iteration budget generous enough
    // for one solve runs dry after enough re-minimizes.
    let mut lp = LpProblem::new();
    let x = lp.add_var("x", false);
    let y = lp.add_var("y", false);
    lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
    lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
    let first_cost = SparseBackend
        .solve_with(
            &{
                let mut p = lp.clone();
                p.set_objective(vec![(x, 1.0), (y, 1.0)]);
                p
            },
            &SolverTuning::default(),
        )
        .stats
        .iterations;
    assert!(first_cost > 0);
    for backend in [&SparseBackend as &dyn LpBackend, &SimplexBackend] {
        // Enough for the first solve and a bit of warm re-minimizing, but
        // not for an unbounded number of them.
        let budget = SolveBudget::with_max_iters(first_cost + 4);
        let mut session = backend.open_with(&lp, &SolverTuning::with_budget(budget));
        let mut statuses = Vec::new();
        for round in 0..50 {
            let objective = if round % 2 == 0 {
                vec![(x, 1.0), (y, 1.0)]
            } else {
                vec![(x, 5.0), (y, 1.0)]
            };
            statuses.push(session.minimize(&objective).status);
        }
        assert_eq!(statuses[0], LpStatus::Optimal, "{}", backend.name());
        assert_eq!(
            *statuses.last().unwrap(),
            LpStatus::BudgetExhausted,
            "session budget never ran dry on {}",
            backend.name()
        );
        // Once exhausted, the session stays exhausted (no verdict can be
        // manufactured out of an empty budget).
        let from_first_exhaustion = statuses
            .iter()
            .skip_while(|&&s| s != LpStatus::BudgetExhausted);
        assert!(from_first_exhaustion
            .clone()
            .all(|&s| s == LpStatus::BudgetExhausted));
    }
}

#[test]
fn refactorization_cap_is_enforced() {
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..8).map(|i| lp.add_var(format!("v{i}"), false)).collect();
    for (i, pair) in vars.windows(2).enumerate() {
        lp.add_constraint(
            vec![(pair[0], 1.0), (pair[1], 2.0)],
            if i % 2 == 0 { Cmp::Ge } else { Cmp::Le },
            1.0 + i as f64,
        );
    }
    lp.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
    let unbudgeted = SparseBackend.solve(&lp);
    assert!(unbudgeted.is_optimal());
    // Zero refactorizations allowed: the solver cannot even complete its
    // verdict-confirming rebuilds, so it must bail out as exhausted the
    // moment it tries — and still must not claim infeasibility.
    let strangled = SparseBackend.solve_with(
        &lp,
        &SolverTuning::with_budget(SolveBudget {
            max_refactorizations: Some(0),
            ..SolveBudget::UNLIMITED
        }),
    );
    assert_ne!(strangled.status, LpStatus::Infeasible);
    assert_ne!(strangled.status, LpStatus::Unbounded);
}
